use crate::{CsrMatrix, SolverError};

/// A preconditioner approximating `A⁻¹`, applied once per CG iteration.
///
/// Implementations must be symmetric positive definite for use with
/// [`ConjugateGradient`](crate::ConjugateGradient).
pub trait Preconditioner {
    /// Applies the preconditioner: writes `z = M⁻¹ r` into `z`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] if `r` and `z` do not
    /// match the preconditioner's dimension.
    fn apply(&self, r: &[f64], z: &mut [f64]) -> crate::Result<()>;

    /// Dimension of the vectors this preconditioner operates on.
    fn dim(&self) -> usize;
}

/// Which preconditioner a CG solve should build, selected at runtime
/// through [`CgOptions`](crate::CgOptions) instead of by generic
/// parameter — config files, CLI flags, and sweep axes can all carry a
/// `PrecondKind` without monomorphizing a solve path per choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrecondKind {
    /// No preconditioning (`M = I`): plain CG.
    Identity,
    /// Diagonal scaling (`M = diag(A)`) — cheap, the default.
    #[default]
    Jacobi,
    /// Block-diagonal with per-block dense Cholesky; block size comes
    /// from [`CgOptions::precond_block`](crate::CgOptions::precond_block).
    BlockJacobi,
    /// Zero-fill incomplete Cholesky, IC(0) — strongest on large grids.
    Ic0,
}

impl PrecondKind {
    /// Every kind, in the order used by sweeps and `--help` listings.
    pub const ALL: [Self; 4] = [Self::Identity, Self::Jacobi, Self::BlockJacobi, Self::Ic0];

    /// Canonical lower-case name, accepted back by [`parse`](Self::parse).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Identity => "identity",
            Self::Jacobi => "jacobi",
            Self::BlockJacobi => "block-jacobi",
            Self::Ic0 => "ic0",
        }
    }

    /// Parses a kind from its CLI spelling (case-insensitive; accepts
    /// `none` for identity and `block_jacobi`/`blockjacobi` variants).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "identity" | "none" => Some(Self::Identity),
            "jacobi" => Some(Self::Jacobi),
            "block-jacobi" | "block_jacobi" | "blockjacobi" => Some(Self::BlockJacobi),
            "ic0" | "ic" => Some(Self::Ic0),
            _ => None,
        }
    }

    /// Builds the selected preconditioner for `a`. `block_size` is used
    /// only by [`PrecondKind::BlockJacobi`].
    ///
    /// # Errors
    ///
    /// Propagates the construction errors of the underlying
    /// preconditioner (non-square matrix, non-SPD diagonal, …).
    pub fn build(self, a: &CsrMatrix, block_size: usize) -> crate::Result<BuiltPreconditioner> {
        Ok(match self {
            Self::Identity => BuiltPreconditioner::Identity(IdentityPreconditioner::new(a.nrows())),
            Self::Jacobi => BuiltPreconditioner::Jacobi(JacobiPreconditioner::from_matrix(a)?),
            Self::BlockJacobi => BuiltPreconditioner::BlockJacobi(
                BlockJacobiPreconditioner::from_matrix(a, block_size)?,
            ),
            Self::Ic0 => BuiltPreconditioner::Ic0(IncompleteCholesky::from_matrix(a)?),
        })
    }
}

impl std::fmt::Display for PrecondKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PrecondKind {
    type Err = SolverError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s).ok_or_else(|| SolverError::InvalidOptions {
            detail: format!("unknown preconditioner kind {s:?} (expected identity, jacobi, block-jacobi, or ic0)"),
        })
    }
}

/// A preconditioner built from a [`PrecondKind`] — the runtime-dispatch
/// counterpart of the `P: Preconditioner` generic parameter the solver
/// API used to take.
#[derive(Debug, Clone)]
pub enum BuiltPreconditioner {
    /// Built from [`PrecondKind::Identity`].
    Identity(IdentityPreconditioner),
    /// Built from [`PrecondKind::Jacobi`].
    Jacobi(JacobiPreconditioner),
    /// Built from [`PrecondKind::BlockJacobi`].
    BlockJacobi(BlockJacobiPreconditioner),
    /// Built from [`PrecondKind::Ic0`].
    Ic0(IncompleteCholesky),
}

impl Preconditioner for BuiltPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) -> crate::Result<()> {
        match self {
            Self::Identity(p) => p.apply(r, z),
            Self::Jacobi(p) => p.apply(r, z),
            Self::BlockJacobi(p) => p.apply(r, z),
            Self::Ic0(p) => p.apply(r, z),
        }
    }

    fn dim(&self) -> usize {
        match self {
            Self::Identity(p) => p.dim(),
            Self::Jacobi(p) => p.dim(),
            Self::BlockJacobi(p) => p.dim(),
            Self::Ic0(p) => p.dim(),
        }
    }
}

/// The trivial preconditioner `M = I` (plain CG).
#[derive(Debug, Clone)]
pub struct IdentityPreconditioner {
    n: usize,
}

impl IdentityPreconditioner {
    /// Creates an identity preconditioner for dimension `n`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { n }
    }
}

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) -> crate::Result<()> {
        check_dims(self.n, r, z)?;
        z.copy_from_slice(r);
        Ok(())
    }

    fn dim(&self) -> usize {
        self.n
    }
}

/// Jacobi (diagonal) preconditioner `M = diag(A)`.
///
/// Cheap and effective for the diagonally dominant conductance matrices
/// that power grids produce.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Extracts the diagonal of `a` and inverts it.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::NotPositiveDefinite`] if any diagonal entry
    /// is not strictly positive (an SPD matrix always has a positive
    /// diagonal), or [`SolverError::DimensionMismatch`] if `a` is not
    /// square.
    pub fn from_matrix(a: &CsrMatrix) -> crate::Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SolverError::DimensionMismatch {
                detail: format!("jacobi of non-square {}x{}", a.nrows(), a.ncols()),
            });
        }
        // The diagonal is cached on the matrix at construction — no
        // per-entry binary searches here.
        let mut inv_diag = Vec::with_capacity(a.nrows());
        for (i, &d) in a.diagonal_ref().iter().enumerate() {
            if d <= 0.0 || !d.is_finite() {
                return Err(SolverError::NotPositiveDefinite { pivot: i, value: d });
            }
            inv_diag.push(1.0 / d);
        }
        Ok(Self { inv_diag })
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) -> crate::Result<()> {
        check_dims(self.inv_diag.len(), r, z)?;
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
        Ok(())
    }

    fn dim(&self) -> usize {
        self.inv_diag.len()
    }
}

/// Block-Jacobi preconditioner: `M = blockdiag(A₁, A₂, …)` with each
/// diagonal block factored by a dense Cholesky.
///
/// Rows are partitioned into contiguous blocks of `block_size` (the
/// last block may be smaller). Grid nodes are numbered row-major by the
/// generator, so a contiguous block covers a horizontal strip of the
/// grid and captures the strong in-strip couplings that plain Jacobi
/// throws away — cutting CG iteration counts on large grids at a cost
/// of `O(n·block_size)` flops per application. Every principal
/// submatrix of an SPD matrix is SPD, so the block factorizations exist;
/// if floating-point noise still breaks one down, the block's diagonal
/// is boosted once (the same pivot-boost strategy
/// [`IncompleteCholesky`] uses) before giving up.
#[derive(Debug, Clone)]
pub struct BlockJacobiPreconditioner {
    n: usize,
    block_size: usize,
    blocks: Vec<crate::DenseCholesky>,
}

impl BlockJacobiPreconditioner {
    /// Extracts and factors the diagonal blocks of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] if `a` is not square
    /// or `block_size` is zero, and [`SolverError::NotPositiveDefinite`]
    /// if a diagonal block cannot be factored even after a pivot boost.
    pub fn from_matrix(a: &CsrMatrix, block_size: usize) -> crate::Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SolverError::DimensionMismatch {
                detail: format!("block-jacobi of non-square {}x{}", a.nrows(), a.ncols()),
            });
        }
        if block_size == 0 {
            return Err(SolverError::DimensionMismatch {
                detail: "block-jacobi block size must be positive".into(),
            });
        }
        let n = a.nrows();
        let mut blocks = Vec::with_capacity(n.div_ceil(block_size.max(1)));
        let mut lo = 0;
        while lo < n {
            let hi = (lo + block_size).min(n);
            let nb = hi - lo;
            let mut dense = crate::DenseMatrix::zeros(nb, nb);
            let mut max_diag = 0.0_f64;
            for r in lo..hi {
                for (c, v) in a.row(r) {
                    if (lo..hi).contains(&c) {
                        dense.set(r - lo, c - lo, v);
                    }
                    if c == r {
                        max_diag = max_diag.max(v.abs());
                    }
                }
            }
            let factored = match dense.cholesky() {
                Ok(f) => f,
                Err(_) => {
                    // Numerical breakdown: boost the whole block diagonal
                    // and retry once, mirroring the IC(0) pivot boost.
                    let boost = (max_diag * 1e-8).max(f64::EPSILON);
                    for i in 0..nb {
                        dense.add_to(i, i, boost);
                    }
                    dense.cholesky()?
                }
            };
            blocks.push(factored);
            lo = hi;
        }
        Ok(Self {
            n,
            block_size,
            blocks,
        })
    }

    /// The configured block size.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }
}

impl Preconditioner for BlockJacobiPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) -> crate::Result<()> {
        check_dims(self.n, r, z)?;
        let mut lo = 0;
        for block in &self.blocks {
            let hi = lo + block.dim();
            let solved = block.solve(&r[lo..hi])?;
            z[lo..hi].copy_from_slice(&solved);
            lo = hi;
        }
        Ok(())
    }

    fn dim(&self) -> usize {
        self.n
    }
}

/// Zero-fill incomplete Cholesky preconditioner, IC(0).
///
/// Computes a lower-triangular `L` with the sparsity pattern of the lower
/// triangle of `A` such that `L Lᵀ ≈ A`, then applies `M⁻¹ = L⁻ᵀ L⁻¹` by
/// two triangular solves. This is the standard preconditioner for
/// power-grid analysis and cuts CG iteration counts substantially on
/// large grids (see the `ablation_precond` bench).
#[derive(Debug, Clone)]
pub struct IncompleteCholesky {
    n: usize,
    // CSR storage of L (strictly lower part, row by row, columns ascending)
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
    diag: Vec<f64>,
}

impl IncompleteCholesky {
    /// Factors the lower triangle of `a` in place of its own pattern.
    ///
    /// If a pivot becomes non-positive (possible for IC(0) even on SPD
    /// matrices), it is boosted by a small shift, which keeps the
    /// preconditioner SPD at a modest cost in quality.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] if `a` is not square,
    /// or [`SolverError::NotPositiveDefinite`] if a diagonal entry of `a`
    /// is missing or non-positive.
    pub fn from_matrix(a: &CsrMatrix) -> crate::Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SolverError::DimensionMismatch {
                detail: format!("ic0 of non-square {}x{}", a.nrows(), a.ncols()),
            });
        }
        let n = a.nrows();
        // Collect strictly-lower pattern and the diagonal.
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        let mut diag = vec![0.0; n];
        indptr.push(0);
        for (i, di) in diag.iter_mut().enumerate() {
            let mut found_diag = false;
            for (j, v) in a.row(i) {
                if j < i {
                    indices.push(j);
                    data.push(v);
                } else if j == i {
                    *di = v;
                    found_diag = true;
                }
            }
            indptr.push(indices.len());
            if !found_diag || *di <= 0.0 {
                return Err(SolverError::NotPositiveDefinite {
                    pivot: i,
                    value: *di,
                });
            }
        }

        // Up-looking IC(0): for each row i, update entries against all
        // previous rows k that appear in row i's pattern.
        //
        // l_ik = (a_ik - sum_{j<k, j in both patterns} l_ij * l_kj) / d_k
        // d_i  = sqrt(a_ii - sum_{k<i} l_ik^2)
        for i in 0..n {
            let (lo_i, hi_i) = (indptr[i], indptr[i + 1]);
            for idx in lo_i..hi_i {
                let k = indices[idx];
                // Dot of row i and row k over shared columns < k.
                let mut s = data[idx];
                let (mut p, mut q) = (lo_i, indptr[k]);
                let (p_end, q_end) = (idx, indptr[k + 1]);
                while p < p_end && q < q_end {
                    match indices[p].cmp(&indices[q]) {
                        std::cmp::Ordering::Less => p += 1,
                        std::cmp::Ordering::Greater => q += 1,
                        std::cmp::Ordering::Equal => {
                            s -= data[p] * data[q];
                            p += 1;
                            q += 1;
                        }
                    }
                }
                data[idx] = s / diag[k];
            }
            let mut d = diag[i];
            for &l in &data[lo_i..hi_i] {
                d -= l * l;
            }
            if d <= 0.0 {
                // Breakdown: boost the pivot to keep the factor SPD.
                d = (diag[i] * 1e-3).max(f64::EPSILON);
            }
            diag[i] = d.sqrt();
        }
        Ok(Self {
            n,
            indptr,
            indices,
            data,
            diag,
        })
    }
}

impl Preconditioner for IncompleteCholesky {
    fn apply(&self, r: &[f64], z: &mut [f64]) -> crate::Result<()> {
        check_dims(self.n, r, z)?;
        // Forward solve L y = r.
        for i in 0..self.n {
            let mut s = r[i];
            for idx in self.indptr[i]..self.indptr[i + 1] {
                s -= self.data[idx] * z[self.indices[idx]];
            }
            z[i] = s / self.diag[i];
        }
        // Backward solve Lᵀ z = y (in place, traversing rows in reverse;
        // row i's entries scatter into earlier columns).
        for i in (0..self.n).rev() {
            z[i] /= self.diag[i];
            let zi = z[i];
            for idx in self.indptr[i]..self.indptr[i + 1] {
                z[self.indices[idx]] -= self.data[idx] * zi;
            }
        }
        Ok(())
    }

    fn dim(&self) -> usize {
        self.n
    }
}

fn check_dims(n: usize, r: &[f64], z: &[f64]) -> crate::Result<()> {
    if r.len() != n || z.len() != n {
        return Err(SolverError::DimensionMismatch {
            detail: format!(
                "preconditioner dim {n}, r has length {}, z has length {}",
                r.len(),
                z.len()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn spd_grid(n: usize) -> CsrMatrix {
        // 1-D resistor chain with grounded end: tridiagonal SPD.
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n - 1 {
            t.stamp_conductance(i, i + 1, 1.0);
        }
        t.stamp_grounded_conductance(0, 1.0);
        t.to_csr()
    }

    #[test]
    fn identity_copies() {
        let p = IdentityPreconditioner::new(3);
        let mut z = vec![0.0; 3];
        p.apply(&[1.0, 2.0, 3.0], &mut z).unwrap();
        assert_eq!(z, vec![1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
    }

    #[test]
    fn jacobi_divides_by_diagonal() {
        let a = spd_grid(3);
        let p = JacobiPreconditioner::from_matrix(&a).unwrap();
        let mut z = vec![0.0; 3];
        p.apply(&[a.get(0, 0), a.get(1, 1), a.get(2, 2)], &mut z)
            .unwrap();
        for zi in z {
            assert!((zi - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn jacobi_rejects_nonpositive_diagonal() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, -1.0);
        t.push(1, 1, 1.0);
        let err = JacobiPreconditioner::from_matrix(&t.to_csr()).unwrap_err();
        assert!(matches!(err, SolverError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn jacobi_rejects_missing_diagonal() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 1, 1.0);
        t.push(1, 1, 1.0);
        // Row 0 has no diagonal entry -> treated as 0 -> rejected.
        let err = JacobiPreconditioner::from_matrix(&t.to_csr()).unwrap_err();
        assert!(matches!(
            err,
            SolverError::NotPositiveDefinite { pivot: 0, .. }
        ));
    }

    #[test]
    fn block_jacobi_with_full_block_is_exact() {
        // One block spanning the whole matrix: M = A, so M⁻¹r = A⁻¹r.
        let a = spd_grid(6);
        let bj = BlockJacobiPreconditioner::from_matrix(&a, 6).unwrap();
        let r = vec![1.0, -2.0, 0.5, 3.0, -1.5, 0.25];
        let mut z = vec![0.0; 6];
        bj.apply(&r, &mut z).unwrap();
        let x = a.to_dense().cholesky().unwrap().solve(&r).unwrap();
        for (zi, xi) in z.iter().zip(&x) {
            assert!((zi - xi).abs() < 1e-10, "{zi} vs {xi}");
        }
    }

    #[test]
    fn block_jacobi_block_one_matches_jacobi() {
        // 1x1 blocks degrade to the diagonal preconditioner.
        let a = spd_grid(5);
        let bj = BlockJacobiPreconditioner::from_matrix(&a, 1).unwrap();
        let j = JacobiPreconditioner::from_matrix(&a).unwrap();
        let r = vec![0.3, -0.7, 1.1, 2.0, -0.4];
        let (mut zb, mut zj) = (vec![0.0; 5], vec![0.0; 5]);
        bj.apply(&r, &mut zb).unwrap();
        j.apply(&r, &mut zj).unwrap();
        for (b, jj) in zb.iter().zip(&zj) {
            assert!((b - jj).abs() < 1e-14);
        }
        assert_eq!(bj.block_size(), 1);
    }

    #[test]
    fn block_jacobi_handles_ragged_last_block() {
        let a = spd_grid(7);
        let bj = BlockJacobiPreconditioner::from_matrix(&a, 3).unwrap();
        assert_eq!(bj.dim(), 7);
        let r: Vec<f64> = (0..7).map(|i| i as f64 - 3.0).collect();
        let mut z = vec![0.0; 7];
        bj.apply(&r, &mut z).unwrap();
        // SPD form: r·z > 0 for r != 0.
        assert!(crate::vecops::dot(&r, &z) > 0.0);
    }

    #[test]
    fn block_jacobi_rejects_zero_block_size() {
        let a = spd_grid(4);
        let err = BlockJacobiPreconditioner::from_matrix(&a, 0).unwrap_err();
        assert!(matches!(err, SolverError::DimensionMismatch { .. }));
    }

    #[test]
    fn block_jacobi_rejects_indefinite_block() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, -4.0);
        t.push(1, 1, 1.0);
        let err = BlockJacobiPreconditioner::from_matrix(&t.to_csr(), 2).unwrap_err();
        assert!(matches!(err, SolverError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn ic0_exact_on_tridiagonal() {
        // For a tridiagonal SPD matrix IC(0) IS the exact Cholesky factor,
        // so M^{-1} r must equal A^{-1} r.
        let a = spd_grid(5);
        let ic = IncompleteCholesky::from_matrix(&a).unwrap();
        let r = vec![1.0, 2.0, -1.0, 0.5, 3.0];
        let mut z = vec![0.0; 5];
        ic.apply(&r, &mut z).unwrap();
        let x = a.to_dense().cholesky().unwrap().solve(&r).unwrap();
        for (zi, xi) in z.iter().zip(&x) {
            assert!((zi - xi).abs() < 1e-10, "{zi} vs {xi}");
        }
    }

    #[test]
    fn ic0_apply_is_spd_form() {
        // z = M^{-1} r must satisfy r·z > 0 for r != 0 (SPD preconditioner).
        let a = spd_grid(8);
        let ic = IncompleteCholesky::from_matrix(&a).unwrap();
        let r: Vec<f64> = (0..8).map(|i| (i as f64 - 3.5) * 0.7).collect();
        let mut z = vec![0.0; 8];
        ic.apply(&r, &mut z).unwrap();
        assert!(crate::vecops::dot(&r, &z) > 0.0);
    }

    #[test]
    fn ic0_rejects_missing_diag() {
        let mut t = TripletMatrix::new(2, 2);
        t.stamp_conductance(0, 1, 1.0);
        t.push(0, 0, -1.0); // cancels row-0 diagonal to zero
        let csr = t.to_csr();
        let err = IncompleteCholesky::from_matrix(&csr).unwrap_err();
        assert!(matches!(err, SolverError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn precond_kind_round_trips_through_names() {
        for kind in PrecondKind::ALL {
            assert_eq!(PrecondKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.name().parse::<PrecondKind>().unwrap(), kind);
        }
        assert_eq!(PrecondKind::parse("none"), Some(PrecondKind::Identity));
        assert_eq!(
            PrecondKind::parse("Block_Jacobi"),
            Some(PrecondKind::BlockJacobi)
        );
        assert_eq!(PrecondKind::parse("ilu"), None);
        assert!(matches!(
            "ilu".parse::<PrecondKind>(),
            Err(SolverError::InvalidOptions { .. })
        ));
    }

    #[test]
    fn precond_kind_builds_matching_variant() {
        let a = spd_grid(8);
        for kind in PrecondKind::ALL {
            let built = kind.build(&a, 4).unwrap();
            assert_eq!(built.dim(), 8, "{kind}");
            let matches_kind = matches!(
                (kind, &built),
                (PrecondKind::Identity, BuiltPreconditioner::Identity(_))
                    | (PrecondKind::Jacobi, BuiltPreconditioner::Jacobi(_))
                    | (
                        PrecondKind::BlockJacobi,
                        BuiltPreconditioner::BlockJacobi(_)
                    )
                    | (PrecondKind::Ic0, BuiltPreconditioner::Ic0(_))
            );
            assert!(matches_kind, "{kind} built the wrong variant");
            // Every built preconditioner is SPD: r·z > 0 for r != 0.
            let r: Vec<f64> = (0..8).map(|i| (i as f64 - 3.5) * 0.9).collect();
            let mut z = vec![0.0; 8];
            built.apply(&r, &mut z).unwrap();
            assert!(crate::vecops::dot(&r, &z) > 0.0, "{kind}");
        }
    }

    #[test]
    fn apply_dim_mismatch() {
        let a = spd_grid(3);
        let p = JacobiPreconditioner::from_matrix(&a).unwrap();
        let mut z = vec![0.0; 2];
        assert!(p.apply(&[1.0, 2.0, 3.0], &mut z).is_err());
    }
}

use crate::vecops::{all_finite, axpy, dot, norm2, xpby};
use crate::{CsrMatrix, Preconditioner, SolverError};

/// Iteration-count histogram edges: 1 to 16k iterations, doubling.
const ITER_BOUNDS: [f64; 15] = [
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0,
    16384.0,
];

/// Final relative-residual histogram edges: 1e-14 to 1, one decade per
/// bucket.
const RESID_BOUNDS: [f64; 15] = [
    1e-14, 1e-13, 1e-12, 1e-11, 1e-10, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0,
];

/// Telemetry for one converged solve (no-op unless collection is on).
fn record_converged_solve(iterations: usize, relative_residual: f64) {
    if !ppdl_obs::enabled() {
        return;
    }
    let reg = ppdl_obs::global();
    reg.counter("solver/cg/solves").inc();
    reg.counter("solver/cg/iterations_total")
        .add(iterations as u64);
    reg.histogram("solver/cg/iterations", &ITER_BOUNDS)
        .record(iterations as f64);
    reg.histogram("solver/cg/rel_residual", &RESID_BOUNDS)
        .record(relative_residual);
}

/// Options controlling a (preconditioned) conjugate-gradient solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgOptions {
    /// Relative residual tolerance: the solve stops when
    /// `||b - A x|| <= tolerance * ||b||`.
    pub tolerance: f64,
    /// Hard iteration cap. `0` means "dimension of the system".
    pub max_iterations: usize,
    /// If `true`, record the residual norm at every iteration in
    /// [`CgSolution::residual_history`] (off by default; it allocates).
    pub record_history: bool,
}

impl Default for CgOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-9,
            max_iterations: 0,
            record_history: false,
        }
    }
}

/// Result of a successful CG solve.
#[derive(Debug, Clone)]
pub struct CgSolution {
    /// The computed solution vector.
    pub x: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final relative residual `||b - A x|| / ||b||`.
    pub relative_residual: f64,
    /// Per-iteration residual norms, if requested via
    /// [`CgOptions::record_history`].
    pub residual_history: Vec<f64>,
}

/// Preconditioned conjugate-gradient solver for symmetric
/// positive-definite systems.
///
/// This is the solver used for static IR-drop analysis: the MNA
/// conductance matrix of a power grid (with the voltage-source nodes
/// eliminated) is SPD and diagonally dominant, the regime in which CG
/// with a Jacobi or IC(0) preconditioner converges quickly.
///
/// # Example
///
/// ```
/// use ppdl_solver::{TripletMatrix, ConjugateGradient, CgOptions, IdentityPreconditioner};
///
/// let mut t = TripletMatrix::new(3, 3);
/// t.stamp_conductance(0, 1, 1.0);
/// t.stamp_conductance(1, 2, 1.0);
/// t.stamp_grounded_conductance(0, 1.0);
/// let a = t.to_csr();
/// let b = vec![0.0, 0.0, 1.0]; // 1 A injected at the far node
///
/// let cg = ConjugateGradient::new(CgOptions::default());
/// let sol = cg.solve(&a, &b, &IdentityPreconditioner::new(3)).unwrap();
/// // Voltages accumulate along the chain: 1, 2, 3 volts.
/// assert!((sol.x[2] - 3.0).abs() < 1e-7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConjugateGradient {
    options: CgOptions,
}

impl ConjugateGradient {
    /// Creates a solver with the given options.
    #[must_use]
    pub fn new(options: CgOptions) -> Self {
        Self { options }
    }

    /// Returns the configured options.
    #[must_use]
    pub fn options(&self) -> &CgOptions {
        &self.options
    }

    /// Solves `A x = b` starting from `x = 0`.
    ///
    /// # Errors
    ///
    /// * [`SolverError::DimensionMismatch`] — shapes are inconsistent.
    /// * [`SolverError::DidNotConverge`] — the iteration cap was reached
    ///   before the residual dropped below tolerance.
    /// * [`SolverError::NonFiniteValue`] — the recurrence produced a NaN
    ///   or infinity (e.g. the matrix is not SPD).
    pub fn solve<P: Preconditioner>(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        precond: &P,
    ) -> crate::Result<CgSolution> {
        let x0 = vec![0.0; b.len()];
        self.solve_with_guess(a, b, precond, x0)
    }

    /// Solves `A x = b` starting from a caller-provided initial guess —
    /// the warm-start path the iterative design loop uses between sizing
    /// rounds, where consecutive solves differ only slightly.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve).
    pub fn solve_with_guess<P: Preconditioner>(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        precond: &P,
        mut x: Vec<f64>,
    ) -> crate::Result<CgSolution> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(SolverError::DimensionMismatch {
                detail: format!("cg requires a square matrix, got {}x{}", n, a.ncols()),
            });
        }
        if b.len() != n || x.len() != n || precond.dim() != n {
            return Err(SolverError::DimensionMismatch {
                detail: format!(
                    "cg: matrix dim {n}, b {}, x0 {}, preconditioner {}",
                    b.len(),
                    x.len(),
                    precond.dim()
                ),
            });
        }
        if !all_finite(b) {
            return Err(SolverError::NonFiniteValue {
                context: "cg right-hand side".into(),
            });
        }

        let bnorm = norm2(b);
        if bnorm == 0.0 {
            // Homogeneous system with SPD matrix: the solution is zero.
            record_converged_solve(0, 0.0);
            return Ok(CgSolution {
                x: vec![0.0; n],
                iterations: 0,
                relative_residual: 0.0,
                residual_history: Vec::new(),
            });
        }

        let max_iter = if self.options.max_iterations == 0 {
            // CG converges in at most n steps in exact arithmetic; give
            // some slack for floating point.
            2 * n + 50
        } else {
            self.options.max_iterations
        };

        // r = b - A x
        let mut r = a.residual(&x, b)?;
        let mut z = vec![0.0; n];
        precond.apply(&r, &mut z)?;
        let mut p = z.clone();
        let mut rz = dot(&r, &z);
        let mut ap = vec![0.0; n];
        let mut history = Vec::new();

        let mut resid = norm2(&r) / bnorm;
        if self.options.record_history {
            history.push(resid);
        }
        if resid <= self.options.tolerance {
            record_converged_solve(0, resid);
            return Ok(CgSolution {
                x,
                iterations: 0,
                relative_residual: resid,
                residual_history: history,
            });
        }

        for iter in 1..=max_iter {
            a.mul_vec_into(&p, &mut ap)?;
            let pap = dot(&p, &ap);
            if pap <= 0.0 || !pap.is_finite() {
                return Err(SolverError::NonFiniteValue {
                    context: format!("cg iteration {iter}: p·Ap = {pap:e} (matrix not SPD?)"),
                });
            }
            let alpha = rz / pap;
            axpy(alpha, &p, &mut x);
            axpy(-alpha, &ap, &mut r);

            resid = norm2(&r) / bnorm;
            if self.options.record_history {
                history.push(resid);
            }
            if resid <= self.options.tolerance {
                record_converged_solve(iter, resid);
                return Ok(CgSolution {
                    x,
                    iterations: iter,
                    relative_residual: resid,
                    residual_history: history,
                });
            }

            precond.apply(&r, &mut z)?;
            let rz_new = dot(&r, &z);
            if !rz_new.is_finite() {
                return Err(SolverError::NonFiniteValue {
                    context: format!("cg iteration {iter}: r·z"),
                });
            }
            let beta = rz_new / rz;
            rz = rz_new;
            xpby(&z, beta, &mut p);
        }

        ppdl_obs::counter_add("solver/cg/no_converge", 1);
        Err(SolverError::DidNotConverge {
            iterations: max_iter,
            residual: resid,
            tolerance: self.options.tolerance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IdentityPreconditioner, IncompleteCholesky, JacobiPreconditioner, TripletMatrix};

    fn chain(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n - 1 {
            t.stamp_conductance(i, i + 1, 1.0);
        }
        t.stamp_grounded_conductance(0, 1.0);
        t.to_csr()
    }

    /// 2-D grid Laplacian with one grounded corner — the structure of a
    /// single-layer power grid.
    fn grid2d(side: usize) -> CsrMatrix {
        let n = side * side;
        let mut t = TripletMatrix::new(n, n);
        for r in 0..side {
            for c in 0..side {
                let i = r * side + c;
                if c + 1 < side {
                    t.stamp_conductance(i, i + 1, 1.0);
                }
                if r + 1 < side {
                    t.stamp_conductance(i, i + side, 1.0);
                }
            }
        }
        t.stamp_grounded_conductance(0, 2.0);
        t.to_csr()
    }

    #[test]
    fn solves_chain_exactly() {
        let a = chain(4);
        let b = vec![0.0, 0.0, 0.0, 1.0];
        let cg = ConjugateGradient::new(CgOptions::default());
        let sol = cg.solve(&a, &b, &IdentityPreconditioner::new(4)).unwrap();
        for (i, &v) in sol.x.iter().enumerate() {
            assert!((v - (i as f64 + 1.0)).abs() < 1e-7, "node {i}: {v}");
        }
        assert!(sol.relative_residual <= 1e-9);
    }

    #[test]
    fn zero_rhs_returns_zero_instantly() {
        let a = chain(5);
        let cg = ConjugateGradient::default();
        let sol = cg
            .solve(&a, &[0.0; 5], &IdentityPreconditioner::new(5))
            .unwrap();
        assert_eq!(sol.iterations, 0);
        assert_eq!(sol.x, vec![0.0; 5]);
    }

    #[test]
    fn matches_dense_cholesky_on_grid() {
        let a = grid2d(6);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 * 0.1).collect();
        let cg = ConjugateGradient::new(CgOptions {
            tolerance: 1e-12,
            ..CgOptions::default()
        });
        let pc = JacobiPreconditioner::from_matrix(&a).unwrap();
        let sol = cg.solve(&a, &b, &pc).unwrap();
        let dense = a.to_dense().cholesky().unwrap().solve(&b).unwrap();
        for (u, v) in sol.x.iter().zip(&dense) {
            assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
    }

    #[test]
    fn ic0_converges_faster_than_plain() {
        let a = grid2d(12);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i % 5) as f64 * 0.2 + 0.1).collect();
        let cg = ConjugateGradient::new(CgOptions {
            tolerance: 1e-10,
            ..CgOptions::default()
        });
        let plain = cg.solve(&a, &b, &IdentityPreconditioner::new(n)).unwrap();
        let ic = IncompleteCholesky::from_matrix(&a).unwrap();
        let pre = cg.solve(&a, &b, &ic).unwrap();
        assert!(
            pre.iterations < plain.iterations,
            "IC(0) {} iters vs plain {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn warm_start_takes_fewer_iterations() {
        let a = grid2d(10);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.3).collect();
        let cg = ConjugateGradient::new(CgOptions {
            tolerance: 1e-10,
            ..CgOptions::default()
        });
        let pc = JacobiPreconditioner::from_matrix(&a).unwrap();
        let cold = cg.solve(&a, &b, &pc).unwrap();
        // Perturb b slightly and warm-start from the previous solution.
        let b2: Vec<f64> = b.iter().map(|v| v * 1.01).collect();
        let warm = cg.solve_with_guess(&a, &b2, &pc, cold.x.clone()).unwrap();
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn iteration_cap_reports_nonconvergence() {
        let a = grid2d(8);
        let n = a.nrows();
        let b = vec![1.0; n];
        let cg = ConjugateGradient::new(CgOptions {
            tolerance: 1e-14,
            max_iterations: 2,
            record_history: false,
        });
        let err = cg
            .solve(&a, &b, &IdentityPreconditioner::new(n))
            .unwrap_err();
        assert!(matches!(
            err,
            SolverError::DidNotConverge { iterations: 2, .. }
        ));
    }

    #[test]
    fn residual_history_is_recorded_and_decreases_overall() {
        let a = grid2d(5);
        let n = a.nrows();
        let b = vec![1.0; n];
        let cg = ConjugateGradient::new(CgOptions {
            record_history: true,
            ..CgOptions::default()
        });
        let pc = JacobiPreconditioner::from_matrix(&a).unwrap();
        let sol = cg.solve(&a, &b, &pc).unwrap();
        assert_eq!(sol.residual_history.len(), sol.iterations + 1);
        assert!(sol.residual_history.last().unwrap() < sol.residual_history.first().unwrap());
    }

    #[test]
    fn rejects_non_spd_direction() {
        // Symmetric but indefinite matrix: CG must detect p·Ap <= 0.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, -1.0);
        let a = t.to_csr();
        let cg = ConjugateGradient::default();
        let err = cg
            .solve(&a, &[0.0, 1.0], &IdentityPreconditioner::new(2))
            .unwrap_err();
        assert!(matches!(err, SolverError::NonFiniteValue { .. }));
    }

    #[test]
    fn rejects_nan_rhs() {
        let a = chain(3);
        let cg = ConjugateGradient::default();
        let err = cg
            .solve(&a, &[1.0, f64::NAN, 0.0], &IdentityPreconditioner::new(3))
            .unwrap_err();
        assert!(matches!(err, SolverError::NonFiniteValue { .. }));
    }

    #[test]
    fn dim_mismatch_rejected() {
        let a = chain(3);
        let cg = ConjugateGradient::default();
        assert!(cg
            .solve(&a, &[1.0, 2.0], &IdentityPreconditioner::new(3))
            .is_err());
        assert!(cg
            .solve(&a, &[1.0, 2.0, 3.0], &IdentityPreconditioner::new(2))
            .is_err());
    }
}

use crate::vecops::{all_finite, axpy, dot, norm2, xpby};
use crate::{CsrMatrix, PrecondKind, Preconditioner, SolverError};

/// Iteration-count histogram edges: 1 to 16k iterations, doubling.
const ITER_BOUNDS: [f64; 15] = [
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0,
    16384.0,
];

/// Final relative-residual histogram edges: 1e-14 to 1, one decade per
/// bucket.
const RESID_BOUNDS: [f64; 15] = [
    1e-14, 1e-13, 1e-12, 1e-11, 1e-10, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0,
];

/// Telemetry for one converged solve (no-op unless collection is on).
fn record_converged_solve(iterations: usize, relative_residual: f64) {
    if !ppdl_obs::enabled() {
        return;
    }
    let reg = ppdl_obs::global();
    reg.counter("solver/cg/solves").inc();
    reg.counter("solver/cg/iterations_total")
        .add(iterations as u64);
    reg.histogram("solver/cg/iterations", &ITER_BOUNDS)
        .record(iterations as f64);
    reg.histogram("solver/cg/rel_residual", &RESID_BOUNDS)
        .record(relative_residual);
}

/// Options controlling a (preconditioned) conjugate-gradient solve.
///
/// The preconditioner is part of the options ([`CgOptions::precond`]),
/// selected at runtime by [`PrecondKind`] rather than threaded through a
/// generic parameter — see [`ConjugateGradient::solve`]. Construct with
/// [`CgOptions::builder`] for range checking, or a struct literal with
/// `..CgOptions::default()` when the values are statically known-good.
#[derive(Debug, Clone, PartialEq)]
pub struct CgOptions {
    /// Relative residual tolerance: the solve stops when
    /// `||b - A x|| <= tolerance * ||b||`.
    pub tolerance: f64,
    /// Hard iteration cap. `0` means "dimension of the system".
    pub max_iterations: usize,
    /// If `true`, record the residual norm at every iteration in
    /// [`CgSolution::residual_history`] (off by default; it allocates).
    pub record_history: bool,
    /// Which preconditioner [`ConjugateGradient::solve`] builds.
    pub precond: PrecondKind,
    /// Block size for [`PrecondKind::BlockJacobi`]; ignored by the other
    /// kinds.
    pub precond_block: usize,
}

/// Default block size for [`PrecondKind::BlockJacobi`]: large enough to
/// capture a strip of a row-major grid, small enough that the dense
/// per-block Cholesky stays cheap.
pub const DEFAULT_PRECOND_BLOCK: usize = 64;

impl Default for CgOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-9,
            max_iterations: 0,
            record_history: false,
            precond: PrecondKind::default(),
            precond_block: DEFAULT_PRECOND_BLOCK,
        }
    }
}

impl CgOptions {
    /// Starts a builder pre-loaded with the defaults.
    #[must_use]
    pub fn builder() -> CgOptionsBuilder {
        CgOptionsBuilder {
            options: Self::default(),
        }
    }
}

/// Builder for [`CgOptions`], mirroring `DlFlowConfig::builder()` in
/// `ppdl-core`: chainable `#[must_use]` setters, an infallible
/// [`build`](CgOptionsBuilder::build) for known-good values, and a
/// range-checked [`try_build`](CgOptionsBuilder::try_build) for values
/// arriving from config files or CLI flags.
#[derive(Debug, Clone)]
pub struct CgOptionsBuilder {
    options: CgOptions,
}

impl CgOptionsBuilder {
    /// Sets the relative residual tolerance.
    #[must_use]
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.options.tolerance = tolerance;
        self
    }

    /// Sets the hard iteration cap (`0` = dimension-derived default).
    #[must_use]
    pub fn max_iterations(mut self, max_iterations: usize) -> Self {
        self.options.max_iterations = max_iterations;
        self
    }

    /// Enables or disables per-iteration residual recording.
    #[must_use]
    pub fn record_history(mut self, record_history: bool) -> Self {
        self.options.record_history = record_history;
        self
    }

    /// Selects the preconditioner kind.
    #[must_use]
    pub fn precond(mut self, precond: PrecondKind) -> Self {
        self.options.precond = precond;
        self
    }

    /// Sets the block size used by [`PrecondKind::BlockJacobi`].
    #[must_use]
    pub fn precond_block(mut self, precond_block: usize) -> Self {
        self.options.precond_block = precond_block;
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> CgOptions {
        self.options
    }

    /// Finishes the builder, rejecting out-of-range knobs (non-positive
    /// or non-finite tolerance, zero or absurd block size) instead of
    /// failing later inside a solve.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidOptions`].
    pub fn try_build(self) -> crate::Result<CgOptions> {
        let o = self.options;
        if !(o.tolerance.is_finite() && o.tolerance > 0.0 && o.tolerance < 1.0) {
            return Err(SolverError::InvalidOptions {
                detail: format!("cg tolerance {:e} outside (0, 1)", o.tolerance),
            });
        }
        if o.precond_block == 0 || o.precond_block > 4096 {
            return Err(SolverError::InvalidOptions {
                detail: format!(
                    "preconditioner block size {} outside 1..=4096",
                    o.precond_block
                ),
            });
        }
        Ok(o)
    }
}

/// Result of a successful CG solve.
#[derive(Debug, Clone)]
pub struct CgSolution {
    /// The computed solution vector.
    pub x: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final relative residual `||b - A x|| / ||b||`.
    pub relative_residual: f64,
    /// Per-iteration residual norms, if requested via
    /// [`CgOptions::record_history`].
    pub residual_history: Vec<f64>,
}

/// Preconditioned conjugate-gradient solver for symmetric
/// positive-definite systems.
///
/// This is the solver used for static IR-drop analysis: the MNA
/// conductance matrix of a power grid (with the voltage-source nodes
/// eliminated) is SPD and diagonally dominant, the regime in which CG
/// with a Jacobi or IC(0) preconditioner converges quickly.
///
/// # Example
///
/// ```
/// use ppdl_solver::{TripletMatrix, ConjugateGradient, CgOptions, PrecondKind};
///
/// let mut t = TripletMatrix::new(3, 3);
/// t.stamp_conductance(0, 1, 1.0);
/// t.stamp_conductance(1, 2, 1.0);
/// t.stamp_grounded_conductance(0, 1.0);
/// let a = t.to_csr();
/// let b = vec![0.0, 0.0, 1.0]; // 1 A injected at the far node
///
/// let options = CgOptions::builder()
///     .precond(PrecondKind::Ic0)
///     .try_build()
///     .unwrap();
/// let cg = ConjugateGradient::new(options);
/// let sol = cg.solve(&a, &b).unwrap();
/// // Voltages accumulate along the chain: 1, 2, 3 volts.
/// assert!((sol.x[2] - 3.0).abs() < 1e-7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConjugateGradient {
    options: CgOptions,
}

impl ConjugateGradient {
    /// Creates a solver with the given options.
    #[must_use]
    pub fn new(options: CgOptions) -> Self {
        Self { options }
    }

    /// Returns the configured options.
    #[must_use]
    pub fn options(&self) -> &CgOptions {
        &self.options
    }

    /// Solves `A x = b` starting from `x = 0`, building the
    /// preconditioner selected by [`CgOptions::precond`].
    ///
    /// # Errors
    ///
    /// * [`SolverError::DimensionMismatch`] — shapes are inconsistent.
    /// * [`SolverError::DidNotConverge`] — the iteration cap was reached
    ///   before the residual dropped below tolerance.
    /// * [`SolverError::NonFiniteValue`] — the recurrence produced a NaN
    ///   or infinity (e.g. the matrix is not SPD).
    /// * [`SolverError::NotPositiveDefinite`] — the preconditioner could
    ///   not be built from `a`.
    pub fn solve(&self, a: &CsrMatrix, b: &[f64]) -> crate::Result<CgSolution> {
        let x0 = vec![0.0; b.len()];
        self.solve_with_guess(a, b, x0)
    }

    /// Solves `A x = b` starting from a caller-provided initial guess —
    /// the warm-start path the iterative design loop uses between sizing
    /// rounds, where consecutive solves differ only slightly. The
    /// preconditioner is built per call from [`CgOptions::precond`];
    /// callers that reuse one factorization across many solves should
    /// build it once and use
    /// [`solve_with_guess_using`](Self::solve_with_guess_using).
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve).
    pub fn solve_with_guess(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        x: Vec<f64>,
    ) -> crate::Result<CgSolution> {
        let precond = self.options.precond.build(a, self.options.precond_block)?;
        self.solve_core(a, b, &precond, x)
    }

    /// Solves `A x = b` from `x = 0` with an explicit, caller-built
    /// preconditioner. This is the escape hatch for custom
    /// [`Preconditioner`] implementations and for amortizing one
    /// factorization over many right-hand sides; everything else should
    /// let [`solve`](Self::solve) build from [`CgOptions::precond`].
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve), minus the build errors.
    pub fn solve_using(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        precond: &dyn Preconditioner,
    ) -> crate::Result<CgSolution> {
        let x0 = vec![0.0; b.len()];
        self.solve_core(a, b, precond, x0)
    }

    /// Warm-start variant of [`solve_using`](Self::solve_using).
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve), minus the build errors.
    pub fn solve_with_guess_using(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        precond: &dyn Preconditioner,
        x: Vec<f64>,
    ) -> crate::Result<CgSolution> {
        self.solve_core(a, b, precond, x)
    }

    /// Deprecated shim for the retired generic surface: forwards to
    /// [`solve_using`](Self::solve_using) unchanged. New code should
    /// select a [`PrecondKind`](crate::PrecondKind) via
    /// [`CgOptions::precond`] and call [`solve`](Self::solve); keep a
    /// caller-built preconditioner only to amortize one factorization,
    /// via `solve_using`.
    ///
    /// # Errors
    ///
    /// Same as [`solve_using`](Self::solve_using).
    #[deprecated(
        since = "0.9.0",
        note = "select a PrecondKind via CgOptions and call solve(a, b); \
                for custom preconditioners use solve_using"
    )]
    pub fn solve_with<P: Preconditioner>(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        precond: &P,
    ) -> crate::Result<CgSolution> {
        self.solve_using(a, b, precond)
    }

    /// Deprecated shim for the retired generic warm-start surface:
    /// forwards to
    /// [`solve_with_guess_using`](Self::solve_with_guess_using)
    /// unchanged (it used to reach into the iteration core directly —
    /// same behaviour, but the forwarding keeps the shims uniform).
    /// New code should select a [`PrecondKind`](crate::PrecondKind) via
    /// [`CgOptions::precond`] and call
    /// [`solve_with_guess`](Self::solve_with_guess).
    ///
    /// # Errors
    ///
    /// Same as [`solve_with_guess_using`](Self::solve_with_guess_using).
    #[deprecated(
        since = "0.9.0",
        note = "select a PrecondKind via CgOptions and call solve_with_guess(a, b, x0); \
                for custom preconditioners use solve_with_guess_using"
    )]
    pub fn solve_with_guess_with<P: Preconditioner>(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        precond: &P,
        x: Vec<f64>,
    ) -> crate::Result<CgSolution> {
        self.solve_with_guess_using(a, b, precond, x)
    }

    /// The PCG iteration shared by every public entry point.
    fn solve_core(
        &self,
        a: &CsrMatrix,
        b: &[f64],
        precond: &dyn Preconditioner,
        mut x: Vec<f64>,
    ) -> crate::Result<CgSolution> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(SolverError::DimensionMismatch {
                detail: format!("cg requires a square matrix, got {}x{}", n, a.ncols()),
            });
        }
        if b.len() != n || x.len() != n || precond.dim() != n {
            return Err(SolverError::DimensionMismatch {
                detail: format!(
                    "cg: matrix dim {n}, b {}, x0 {}, preconditioner {}",
                    b.len(),
                    x.len(),
                    precond.dim()
                ),
            });
        }
        if !all_finite(b) {
            return Err(SolverError::NonFiniteValue {
                context: "cg right-hand side".into(),
            });
        }

        let bnorm = norm2(b);
        if bnorm == 0.0 {
            // Homogeneous system with SPD matrix: the solution is zero.
            record_converged_solve(0, 0.0);
            return Ok(CgSolution {
                x: vec![0.0; n],
                iterations: 0,
                relative_residual: 0.0,
                residual_history: Vec::new(),
            });
        }

        let max_iter = if self.options.max_iterations == 0 {
            // CG converges in at most n steps in exact arithmetic; give
            // some slack for floating point.
            2 * n + 50
        } else {
            self.options.max_iterations
        };

        // r = b - A x
        let mut r = a.residual(&x, b)?;
        let mut z = vec![0.0; n];
        precond.apply(&r, &mut z)?;
        let mut p = z.clone();
        let mut rz = dot(&r, &z);
        let mut ap = vec![0.0; n];
        let mut history = Vec::new();

        let mut resid = norm2(&r) / bnorm;
        if self.options.record_history {
            history.push(resid);
        }
        if resid <= self.options.tolerance {
            record_converged_solve(0, resid);
            return Ok(CgSolution {
                x,
                iterations: 0,
                relative_residual: resid,
                residual_history: history,
            });
        }

        for iter in 1..=max_iter {
            a.mul_vec_into(&p, &mut ap)?;
            let pap = dot(&p, &ap);
            if pap <= 0.0 || !pap.is_finite() {
                return Err(SolverError::NonFiniteValue {
                    context: format!("cg iteration {iter}: p·Ap = {pap:e} (matrix not SPD?)"),
                });
            }
            let alpha = rz / pap;
            axpy(alpha, &p, &mut x);
            axpy(-alpha, &ap, &mut r);

            resid = norm2(&r) / bnorm;
            if self.options.record_history {
                history.push(resid);
            }
            if resid <= self.options.tolerance {
                record_converged_solve(iter, resid);
                return Ok(CgSolution {
                    x,
                    iterations: iter,
                    relative_residual: resid,
                    residual_history: history,
                });
            }

            precond.apply(&r, &mut z)?;
            let rz_new = dot(&r, &z);
            if !rz_new.is_finite() {
                return Err(SolverError::NonFiniteValue {
                    context: format!("cg iteration {iter}: r·z"),
                });
            }
            let beta = rz_new / rz;
            rz = rz_new;
            xpby(&z, beta, &mut p);
        }

        ppdl_obs::counter_add("solver/cg/no_converge", 1);
        Err(SolverError::DidNotConverge {
            iterations: max_iter,
            residual: resid,
            tolerance: self.options.tolerance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IdentityPreconditioner, IncompleteCholesky, JacobiPreconditioner, TripletMatrix};

    fn chain(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n - 1 {
            t.stamp_conductance(i, i + 1, 1.0);
        }
        t.stamp_grounded_conductance(0, 1.0);
        t.to_csr()
    }

    /// 2-D grid Laplacian with one grounded corner — the structure of a
    /// single-layer power grid.
    fn grid2d(side: usize) -> CsrMatrix {
        let n = side * side;
        let mut t = TripletMatrix::new(n, n);
        for r in 0..side {
            for c in 0..side {
                let i = r * side + c;
                if c + 1 < side {
                    t.stamp_conductance(i, i + 1, 1.0);
                }
                if r + 1 < side {
                    t.stamp_conductance(i, i + side, 1.0);
                }
            }
        }
        t.stamp_grounded_conductance(0, 2.0);
        t.to_csr()
    }

    fn with_precond(kind: PrecondKind) -> ConjugateGradient {
        ConjugateGradient::new(CgOptions {
            precond: kind,
            ..CgOptions::default()
        })
    }

    #[test]
    fn solves_chain_exactly() {
        let a = chain(4);
        let b = vec![0.0, 0.0, 0.0, 1.0];
        let cg = with_precond(PrecondKind::Identity);
        let sol = cg.solve(&a, &b).unwrap();
        for (i, &v) in sol.x.iter().enumerate() {
            assert!((v - (i as f64 + 1.0)).abs() < 1e-7, "node {i}: {v}");
        }
        assert!(sol.relative_residual <= 1e-9);
    }

    #[test]
    fn zero_rhs_returns_zero_instantly() {
        let a = chain(5);
        let cg = ConjugateGradient::default();
        let sol = cg.solve(&a, &[0.0; 5]).unwrap();
        assert_eq!(sol.iterations, 0);
        assert_eq!(sol.x, vec![0.0; 5]);
    }

    #[test]
    fn matches_dense_cholesky_on_grid() {
        let a = grid2d(6);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 * 0.1).collect();
        let cg = ConjugateGradient::new(CgOptions {
            tolerance: 1e-12,
            ..CgOptions::default()
        });
        let sol = cg.solve(&a, &b).unwrap();
        let dense = a.to_dense().cholesky().unwrap().solve(&b).unwrap();
        for (u, v) in sol.x.iter().zip(&dense) {
            assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
    }

    #[test]
    fn every_precond_kind_solves_the_same_system() {
        let a = grid2d(8);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 3 + 1) % 9) as f64 * 0.25).collect();
        let reference = a.to_dense().cholesky().unwrap().solve(&b).unwrap();
        for kind in PrecondKind::ALL {
            let cg = ConjugateGradient::new(
                CgOptions::builder()
                    .tolerance(1e-11)
                    .precond(kind)
                    .precond_block(16)
                    .try_build()
                    .unwrap(),
            );
            let sol = cg.solve(&a, &b).unwrap();
            for (u, v) in sol.x.iter().zip(&reference) {
                assert!((u - v).abs() < 1e-7, "{kind}: {u} vs {v}");
            }
        }
    }

    #[test]
    fn stronger_preconditioners_cut_iterations() {
        let a = grid2d(12);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i % 5) as f64 * 0.2 + 0.1).collect();
        let iters = |kind| {
            let cg = ConjugateGradient::new(CgOptions {
                tolerance: 1e-10,
                precond: kind,
                ..CgOptions::default()
            });
            cg.solve(&a, &b).unwrap().iterations
        };
        let plain = iters(PrecondKind::Identity);
        let block = iters(PrecondKind::BlockJacobi);
        let ic = iters(PrecondKind::Ic0);
        assert!(ic < plain, "IC(0) {ic} iters vs plain {plain}");
        assert!(block < plain, "block-Jacobi {block} iters vs plain {plain}");
    }

    #[test]
    fn warm_start_takes_fewer_iterations() {
        let a = grid2d(10);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.3).collect();
        let cg = ConjugateGradient::new(CgOptions {
            tolerance: 1e-10,
            ..CgOptions::default()
        });
        let cold = cg.solve(&a, &b).unwrap();
        // Perturb b slightly and warm-start from the previous solution.
        let b2: Vec<f64> = b.iter().map(|v| v * 1.01).collect();
        let warm = cg.solve_with_guess(&a, &b2, cold.x.clone()).unwrap();
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn solve_using_amortizes_one_factorization() {
        // Explicit-preconditioner path must agree bitwise with the
        // options-built path for the same kind.
        let a = grid2d(7);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i % 4) as f64 + 0.5).collect();
        let cg = with_precond(PrecondKind::Ic0);
        let built = cg.solve(&a, &b).unwrap();
        let ic = IncompleteCholesky::from_matrix(&a).unwrap();
        let explicit = cg.solve_using(&a, &b, &ic).unwrap();
        assert_eq!(built.x, explicit.x);
        assert_eq!(built.iterations, explicit.iterations);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_new_surface() {
        let a = grid2d(6);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i % 3) as f64 * 0.4 + 0.1).collect();
        let cg = ConjugateGradient::default();
        let pc = JacobiPreconditioner::from_matrix(&a).unwrap();
        let new = cg.solve(&a, &b).unwrap();
        let shim = cg.solve_with(&a, &b, &pc).unwrap();
        assert_eq!(new.x, shim.x);
        let guess = vec![0.0; n];
        let shim2 = cg.solve_with_guess_with(&a, &b, &pc, guess).unwrap();
        assert_eq!(new.x, shim2.x);
    }

    #[test]
    fn builder_sets_every_knob() {
        let o = CgOptions::builder()
            .tolerance(1e-6)
            .max_iterations(77)
            .record_history(true)
            .precond(PrecondKind::BlockJacobi)
            .precond_block(32)
            .build();
        assert_eq!(
            o,
            CgOptions {
                tolerance: 1e-6,
                max_iterations: 77,
                record_history: true,
                precond: PrecondKind::BlockJacobi,
                precond_block: 32,
            }
        );
    }

    #[test]
    fn try_build_rejects_out_of_range_knobs() {
        for bad in [0.0, -1e-9, f64::NAN, f64::INFINITY, 1.0] {
            let err = CgOptions::builder().tolerance(bad).try_build().unwrap_err();
            assert!(matches!(err, SolverError::InvalidOptions { .. }), "{bad}");
        }
        for bad in [0usize, 4097] {
            let err = CgOptions::builder()
                .precond_block(bad)
                .try_build()
                .unwrap_err();
            assert!(matches!(err, SolverError::InvalidOptions { .. }), "{bad}");
        }
        assert!(CgOptions::builder().try_build().is_ok());
    }

    #[test]
    fn default_options_use_jacobi() {
        let o = CgOptions::default();
        assert_eq!(o.precond, PrecondKind::Jacobi);
        assert_eq!(o.precond_block, DEFAULT_PRECOND_BLOCK);
    }

    #[test]
    fn iteration_cap_reports_nonconvergence() {
        let a = grid2d(8);
        let n = a.nrows();
        let b = vec![1.0; n];
        let cg = ConjugateGradient::new(CgOptions {
            tolerance: 1e-14,
            max_iterations: 2,
            precond: PrecondKind::Identity,
            ..CgOptions::default()
        });
        let err = cg.solve(&a, &b).unwrap_err();
        assert!(matches!(
            err,
            SolverError::DidNotConverge { iterations: 2, .. }
        ));
    }

    #[test]
    fn residual_history_is_recorded_and_decreases_overall() {
        let a = grid2d(5);
        let n = a.nrows();
        let b = vec![1.0; n];
        let cg = ConjugateGradient::new(CgOptions {
            record_history: true,
            ..CgOptions::default()
        });
        let sol = cg.solve(&a, &b).unwrap();
        assert_eq!(sol.residual_history.len(), sol.iterations + 1);
        assert!(sol.residual_history.last().unwrap() < sol.residual_history.first().unwrap());
    }

    #[test]
    fn rejects_non_spd_direction() {
        // Symmetric but indefinite matrix: CG must detect p·Ap <= 0.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, -1.0);
        let a = t.to_csr();
        let cg = with_precond(PrecondKind::Identity);
        let err = cg.solve(&a, &[0.0, 1.0]).unwrap_err();
        assert!(matches!(err, SolverError::NonFiniteValue { .. }));
    }

    #[test]
    fn rejects_nan_rhs() {
        let a = chain(3);
        let cg = ConjugateGradient::default();
        let err = cg.solve(&a, &[1.0, f64::NAN, 0.0]).unwrap_err();
        assert!(matches!(err, SolverError::NonFiniteValue { .. }));
    }

    #[test]
    fn dim_mismatch_rejected() {
        let a = chain(3);
        let cg = ConjugateGradient::default();
        assert!(cg.solve(&a, &[1.0, 2.0]).is_err());
        // Explicit-preconditioner path checks the preconditioner dim too.
        assert!(cg
            .solve_using(&a, &[1.0, 2.0, 3.0], &IdentityPreconditioner::new(2))
            .is_err());
    }
}

use crate::{SolverError, TripletMatrix};

/// Cached SpMV telemetry handles (`calls`, `elements`): the kernel runs
/// once per CG iteration, so the registry lookup happens once per
/// process, not per call.
fn spmv_counters() -> &'static (ppdl_obs::Counter, ppdl_obs::Counter) {
    static COUNTERS: std::sync::OnceLock<(ppdl_obs::Counter, ppdl_obs::Counter)> =
        std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| {
        let reg = ppdl_obs::global();
        (
            reg.counter("solver/spmv/calls"),
            reg.counter("solver/spmv/elements"),
        )
    })
}

/// Compressed-sparse-row matrix.
///
/// The workhorse storage format for the assembled MNA conductance matrix.
/// Rows are stored contiguously; within each row, column indices are
/// strictly increasing. Construct one either from a [`TripletMatrix`]
/// (the usual path when stamping a circuit) or from validated raw parts.
///
/// # Example
///
/// ```
/// use ppdl_solver::TripletMatrix;
///
/// let mut t = TripletMatrix::new(2, 2);
/// t.stamp_conductance(0, 1, 2.0);
/// let a = t.to_csr();
/// let y = a.mul_vec(&[1.0, 0.0]).unwrap();
/// assert_eq!(y, vec![2.0, -2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts, validating the structure.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] if `indptr` does not
    /// have `nrows + 1` monotonically non-decreasing entries ending at
    /// `indices.len()`, if `indices` and `data` differ in length, if any
    /// column index is out of range, or if columns within a row are not
    /// strictly increasing.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<f64>,
    ) -> crate::Result<Self> {
        if indptr.len() != nrows + 1 {
            return Err(SolverError::DimensionMismatch {
                detail: format!(
                    "indptr length {} != nrows + 1 = {}",
                    indptr.len(),
                    nrows + 1
                ),
            });
        }
        if indices.len() != data.len() {
            return Err(SolverError::DimensionMismatch {
                detail: format!(
                    "indices length {} != data length {}",
                    indices.len(),
                    data.len()
                ),
            });
        }
        if indptr.first() != Some(&0) || indptr.last() != Some(&indices.len()) {
            return Err(SolverError::DimensionMismatch {
                detail: "indptr must start at 0 and end at nnz".into(),
            });
        }
        for w in indptr.windows(2) {
            if w[1] < w[0] {
                return Err(SolverError::DimensionMismatch {
                    detail: "indptr must be non-decreasing".into(),
                });
            }
        }
        for r in 0..nrows {
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                if w[1] <= w[0] {
                    return Err(SolverError::DimensionMismatch {
                        detail: format!("columns in row {r} not strictly increasing"),
                    });
                }
            }
            if let Some(&last) = row.last() {
                if last >= ncols {
                    return Err(SolverError::IndexOutOfBounds {
                        row: r,
                        col: last,
                        nrows,
                        ncols,
                    });
                }
            }
        }
        Ok(Self {
            nrows,
            ncols,
            indptr,
            indices,
            data,
        })
    }

    /// Builds an `n x n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Self {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            data: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (structurally nonzero) entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Returns the stored value at `(row, col)`, or `0.0` if the entry is
    /// structurally zero.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.nrows && col < self.ncols, "get out of bounds");
        let lo = self.indptr[row];
        let hi = self.indptr[row + 1];
        match self.indices[lo..hi].binary_search(&col) {
            Ok(pos) => self.data[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates over `(col, value)` pairs of one row, in increasing column
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `row >= nrows`.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(row < self.nrows, "row out of bounds");
        let lo = self.indptr[row];
        let hi = self.indptr[row + 1];
        self.indices[lo..hi]
            .iter()
            .copied()
            .zip(self.data[lo..hi].iter().copied())
    }

    /// Number of stored entries in one row.
    #[must_use]
    pub fn row_nnz(&self, row: usize) -> usize {
        self.indptr[row + 1] - self.indptr[row]
    }

    /// Matrix–vector product `y = A x`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[f64]) -> crate::Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(SolverError::DimensionMismatch {
                detail: format!(
                    "spmv: matrix is {}x{}, vector has length {}",
                    self.nrows,
                    self.ncols,
                    x.len()
                ),
            });
        }
        let mut y = vec![0.0; self.nrows];
        self.mul_vec_into(x, &mut y)?;
        Ok(y)
    }

    /// Matrix–vector product writing into a preallocated output buffer.
    /// This is the allocation-free kernel the CG loop uses.
    ///
    /// Rows are computed in parallel when the matrix is at least
    /// [`crate::parallel::par_threshold`] rows tall; each output element
    /// is a single row's accumulation regardless of the split, so the
    /// result is bitwise identical at every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] on shape mismatch.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) -> crate::Result<()> {
        if x.len() != self.ncols || y.len() != self.nrows {
            return Err(SolverError::DimensionMismatch {
                detail: format!(
                    "spmv into: matrix is {}x{}, x has length {}, y has length {}",
                    self.nrows,
                    self.ncols,
                    x.len(),
                    y.len()
                ),
            });
        }
        if ppdl_obs::enabled() {
            let (calls, elements) = spmv_counters();
            calls.inc();
            elements.add(self.nnz() as u64);
        }
        crate::parallel::par_chunks_mut(y, |row0, out| {
            for (i, yi) in out.iter_mut().enumerate() {
                let r = row0 + i;
                let lo = self.indptr[r];
                let hi = self.indptr[r + 1];
                let mut acc = 0.0;
                for k in lo..hi {
                    acc += self.data[k] * x[self.indices[k]];
                }
                *yi = acc;
            }
        });
        Ok(())
    }

    /// Returns the transpose as a new CSR matrix.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut t = TripletMatrix::with_capacity(self.ncols, self.nrows, self.nnz());
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                t.push(c, r, v);
            }
        }
        t.to_csr()
    }

    /// Extracts the diagonal into a vector (missing diagonal entries are
    /// `0.0`). Defined for square matrices only.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn diagonal(&self) -> Vec<f64> {
        assert_eq!(self.nrows, self.ncols, "diagonal requires a square matrix");
        (0..self.nrows).map(|i| self.get(i, i)).collect()
    }

    /// Checks structural and numerical symmetry to within `tol` (relative
    /// to the larger of the two mirrored magnitudes).
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                let m = self.get(c, r);
                let scale = v.abs().max(m.abs()).max(1.0);
                if (v - m).abs() > tol * scale {
                    return false;
                }
            }
        }
        true
    }

    /// Checks weak row diagonal dominance: `|a_ii| >= sum_{j != i} |a_ij|`
    /// for every row. MNA conductance matrices with at least one path to a
    /// voltage source satisfy this, which guarantees CG convergence.
    #[must_use]
    pub fn is_diagonally_dominant(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for r in 0..self.nrows {
            let mut diag = 0.0;
            let mut off = 0.0;
            for (c, v) in self.row(r) {
                if c == r {
                    diag = v.abs();
                } else {
                    off += v.abs();
                }
            }
            // Tiny tolerance for floating point accumulation.
            if diag + 1e-12 * (diag + off) < off {
                return false;
            }
        }
        true
    }

    /// Computes the residual vector `r = b - A x`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] on shape mismatch.
    pub fn residual(&self, x: &[f64], b: &[f64]) -> crate::Result<Vec<f64>> {
        if b.len() != self.nrows {
            return Err(SolverError::DimensionMismatch {
                detail: format!(
                    "residual: matrix has {} rows, b has length {}",
                    self.nrows,
                    b.len()
                ),
            });
        }
        let ax = self.mul_vec(x)?;
        Ok(b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect())
    }

    /// Converts to a dense matrix. Intended for small systems and tests.
    #[must_use]
    pub fn to_dense(&self) -> crate::DenseMatrix {
        let mut d = crate::DenseMatrix::zeros(self.nrows, self.ncols);
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                d.set(r, c, v);
            }
        }
        d
    }

    /// Frobenius norm of the matrix.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        crate::vecops::norm2(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2],
        //  [0, 3, 0],
        //  [4, 0, 5]]
        CsrMatrix::from_raw_parts(
            3,
            3,
            vec![0, 2, 3, 5],
            vec![0, 2, 1, 0, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn raw_parts_roundtrip() {
        let a = sample();
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.row_nnz(1), 1);
    }

    #[test]
    fn invalid_indptr_rejected() {
        let err = CsrMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, SolverError::DimensionMismatch { .. }));
    }

    #[test]
    fn decreasing_indptr_rejected() {
        let err = CsrMatrix::from_raw_parts(2, 2, vec![0, 1, 0], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, SolverError::DimensionMismatch { .. }));
    }

    #[test]
    fn unsorted_columns_rejected() {
        let err =
            CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SolverError::DimensionMismatch { .. }));
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err =
            CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SolverError::DimensionMismatch { .. }));
    }

    #[test]
    fn column_out_of_range_rejected() {
        let err = CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).unwrap_err();
        assert!(matches!(err, SolverError::IndexOutOfBounds { col: 5, .. }));
    }

    #[test]
    fn spmv_matches_dense() {
        let a = sample();
        let y = a.mul_vec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![7.0, 6.0, 19.0]);
    }

    #[test]
    fn spmv_shape_mismatch() {
        let a = sample();
        assert!(a.mul_vec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn identity_acts_as_identity() {
        let i = CsrMatrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(i.mul_vec(&x).unwrap(), x);
        assert_eq!(i.nnz(), 4);
    }

    #[test]
    fn transpose_involution() {
        let a = sample();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
    }

    #[test]
    fn transpose_moves_entries() {
        let a = sample();
        let at = a.transpose();
        assert_eq!(at.get(2, 0), 2.0);
        assert_eq!(at.get(0, 2), 4.0);
    }

    #[test]
    fn diagonal_extraction() {
        let a = sample();
        assert_eq!(a.diagonal(), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn symmetry_check() {
        let mut t = TripletMatrix::new(2, 2);
        t.stamp_conductance(0, 1, 2.0);
        t.stamp_grounded_conductance(0, 1.0);
        let a = t.to_csr();
        assert!(a.is_symmetric(1e-12));
        assert!(!sample().is_symmetric(1e-12));
    }

    #[test]
    fn diagonal_dominance_of_stamped_grid() {
        let mut t = TripletMatrix::new(3, 3);
        t.stamp_conductance(0, 1, 1.0);
        t.stamp_conductance(1, 2, 1.0);
        t.stamp_grounded_conductance(0, 0.5);
        let a = t.to_csr();
        assert!(a.is_diagonally_dominant());
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let a = CsrMatrix::identity(3);
        let r = a.residual(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(r, vec![0.0; 3]);
    }

    #[test]
    fn to_dense_matches_get() {
        let a = sample();
        let d = a.to_dense();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(d.get(r, c), a.get(r, c));
            }
        }
    }

    #[test]
    fn frobenius_norm_value() {
        let a = sample();
        let expect = (1.0f64 + 4.0 + 9.0 + 16.0 + 25.0).sqrt();
        assert!((a.frobenius_norm() - expect).abs() < 1e-12);
    }
}

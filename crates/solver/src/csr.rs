use crate::{SolverError, TripletMatrix};

/// Cached SpMV telemetry handles (`calls`, `elements`): the kernel runs
/// once per CG iteration, so the registry lookup happens once per
/// process, not per call.
fn spmv_counters() -> &'static (ppdl_obs::Counter, ppdl_obs::Counter) {
    static COUNTERS: std::sync::OnceLock<(ppdl_obs::Counter, ppdl_obs::Counter)> =
        std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| {
        let reg = ppdl_obs::global();
        (
            reg.counter("solver/spmv/calls"),
            reg.counter("solver/spmv/elements"),
        )
    })
}

/// Compressed-sparse-row matrix.
///
/// The workhorse storage format for the assembled MNA conductance matrix.
/// Rows are stored contiguously; within each row, column indices are
/// strictly increasing. Construct one either from a [`TripletMatrix`]
/// (the usual path when stamping a circuit) or from validated raw parts.
///
/// # Example
///
/// ```
/// use ppdl_solver::TripletMatrix;
///
/// let mut t = TripletMatrix::new(2, 2);
/// t.stamp_conductance(0, 1, 2.0);
/// let a = t.to_csr();
/// let y = a.mul_vec(&[1.0, 0.0]).unwrap();
/// assert_eq!(y, vec![2.0, -2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
    /// Cached diagonal (empty for non-square matrices). Computed once at
    /// construction; the matrix is immutable, so no invalidation exists.
    diag: Vec<f64>,
    /// Cached row-nnz profile: the widest row, used to dispatch SpMV
    /// between the interleaved short-row kernel and the general one.
    max_row_nnz: usize,
}

/// Rows at or below this many stored entries take the 4-row interleaved
/// SpMV kernel; the serial per-row accumulation chain of such short rows
/// (a 2-D grid stencil has ≤ 5) is too short to hide load latency, so
/// four independent row accumulators run in lockstep instead. Each
/// row's own accumulation order is unchanged, keeping the result
/// bitwise identical to the general kernel.
const SPMV_INTERLEAVE_MAX_ROW_NNZ: usize = 16;

impl CsrMatrix {
    /// Finishes construction from validated parts: computes the cached
    /// diagonal and row-nnz profile. Every constructor funnels through
    /// here so the caches always exist.
    fn assemble(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<f64>,
    ) -> Self {
        let max_row_nnz = indptr.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
        let diag = if nrows == ncols {
            let mut d = vec![0.0; nrows];
            for (r, dr) in d.iter_mut().enumerate() {
                let row = &indices[indptr[r]..indptr[r + 1]];
                if let Ok(pos) = row.binary_search(&r) {
                    *dr = data[indptr[r] + pos];
                }
            }
            d
        } else {
            Vec::new()
        };
        Self {
            nrows,
            ncols,
            indptr,
            indices,
            data,
            diag,
            max_row_nnz,
        }
    }

    /// Builds a CSR matrix from raw parts, validating the structure.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] if `indptr` does not
    /// have `nrows + 1` monotonically non-decreasing entries ending at
    /// `indices.len()`, if `indices` and `data` differ in length, if any
    /// column index is out of range, or if columns within a row are not
    /// strictly increasing.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<f64>,
    ) -> crate::Result<Self> {
        if indptr.len() != nrows + 1 {
            return Err(SolverError::DimensionMismatch {
                detail: format!(
                    "indptr length {} != nrows + 1 = {}",
                    indptr.len(),
                    nrows + 1
                ),
            });
        }
        if indices.len() != data.len() {
            return Err(SolverError::DimensionMismatch {
                detail: format!(
                    "indices length {} != data length {}",
                    indices.len(),
                    data.len()
                ),
            });
        }
        if indptr.first() != Some(&0) || indptr.last() != Some(&indices.len()) {
            return Err(SolverError::DimensionMismatch {
                detail: "indptr must start at 0 and end at nnz".into(),
            });
        }
        for w in indptr.windows(2) {
            if w[1] < w[0] {
                return Err(SolverError::DimensionMismatch {
                    detail: "indptr must be non-decreasing".into(),
                });
            }
        }
        for r in 0..nrows {
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                if w[1] <= w[0] {
                    return Err(SolverError::DimensionMismatch {
                        detail: format!("columns in row {r} not strictly increasing"),
                    });
                }
            }
            if let Some(&last) = row.last() {
                if last >= ncols {
                    return Err(SolverError::IndexOutOfBounds {
                        row: r,
                        col: last,
                        nrows,
                        ncols,
                    });
                }
            }
        }
        Ok(Self::assemble(nrows, ncols, indptr, indices, data))
    }

    /// Builds an `n x n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Self::assemble(n, n, (0..=n).collect(), (0..n).collect(), vec![1.0; n])
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (structurally nonzero) entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Returns the stored value at `(row, col)`, or `0.0` if the entry is
    /// structurally zero.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.nrows && col < self.ncols, "get out of bounds");
        let lo = self.indptr[row];
        let hi = self.indptr[row + 1];
        match self.indices[lo..hi].binary_search(&col) {
            Ok(pos) => self.data[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates over `(col, value)` pairs of one row, in increasing column
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `row >= nrows`.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(row < self.nrows, "row out of bounds");
        let lo = self.indptr[row];
        let hi = self.indptr[row + 1];
        self.indices[lo..hi]
            .iter()
            .copied()
            .zip(self.data[lo..hi].iter().copied())
    }

    /// Number of stored entries in one row.
    #[must_use]
    pub fn row_nnz(&self, row: usize) -> usize {
        self.indptr[row + 1] - self.indptr[row]
    }

    /// Matrix–vector product `y = A x`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[f64]) -> crate::Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(SolverError::DimensionMismatch {
                detail: format!(
                    "spmv: matrix is {}x{}, vector has length {}",
                    self.nrows,
                    self.ncols,
                    x.len()
                ),
            });
        }
        let mut y = vec![0.0; self.nrows];
        self.mul_vec_into(x, &mut y)?;
        Ok(y)
    }

    /// Matrix–vector product writing into a preallocated output buffer.
    /// This is the allocation-free kernel the CG loop uses.
    ///
    /// Rows are computed in parallel when the matrix is at least
    /// [`crate::parallel::par_threshold`] rows tall; each output element
    /// is a single row's accumulation regardless of the split, so the
    /// result is bitwise identical at every thread count. Within a
    /// chunk the kernel dispatches on the cached row-nnz profile:
    /// matrices whose widest row holds at most
    /// [`SPMV_INTERLEAVE_MAX_ROW_NNZ`] entries (the grid-stencil
    /// regime) take a 4-row interleaved kernel that overlaps four
    /// independent accumulation chains; wider rows take the general
    /// per-row loop. Both produce identical bits — each row is always
    /// one serial ascending-column accumulation.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] on shape mismatch.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) -> crate::Result<()> {
        if x.len() != self.ncols || y.len() != self.nrows {
            return Err(SolverError::DimensionMismatch {
                detail: format!(
                    "spmv into: matrix is {}x{}, x has length {}, y has length {}",
                    self.nrows,
                    self.ncols,
                    x.len(),
                    y.len()
                ),
            });
        }
        if ppdl_obs::enabled() {
            let (calls, elements) = spmv_counters();
            calls.inc();
            elements.add(self.nnz() as u64);
        }
        if self.max_row_nnz <= SPMV_INTERLEAVE_MAX_ROW_NNZ {
            crate::parallel::par_chunks_mut(y, |row0, out| {
                self.spmv_rows_interleaved(x, row0, out);
            });
        } else {
            crate::parallel::par_chunks_mut(y, |row0, out| {
                self.spmv_rows_general(x, row0, out);
            });
        }
        Ok(())
    }

    /// General SpMV over rows `row0..row0 + out.len()`: one serial
    /// accumulation chain per row, in ascending column order.
    fn spmv_rows_general(&self, x: &[f64], row0: usize, out: &mut [f64]) {
        for (i, yi) in out.iter_mut().enumerate() {
            let r = row0 + i;
            let lo = self.indptr[r];
            let hi = self.indptr[r + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.data[k] * x[self.indices[k]];
            }
            *yi = acc;
        }
    }

    /// Short-row SpMV: walks four rows in lockstep so four independent
    /// accumulation chains are in flight, hiding the gather latency
    /// that dominates stencil-width rows. Each accumulator still adds
    /// its own row's entries in ascending column order, so every output
    /// element is bitwise identical to [`Self::spmv_rows_general`].
    fn spmv_rows_interleaved(&self, x: &[f64], row0: usize, out: &mut [f64]) {
        let n = out.len();
        let mut i = 0;
        while i + 4 <= n {
            let r = row0 + i;
            let (s0, e0) = (self.indptr[r], self.indptr[r + 1]);
            let (s1, e1) = (self.indptr[r + 1], self.indptr[r + 2]);
            let (s2, e2) = (self.indptr[r + 2], self.indptr[r + 3]);
            let (s3, e3) = (self.indptr[r + 3], self.indptr[r + 4]);
            let (l0, l1, l2, l3) = (e0 - s0, e1 - s1, e2 - s2, e3 - s3);
            let shared = l0.min(l1).min(l2).min(l3);
            let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
            for p in 0..shared {
                a0 += self.data[s0 + p] * x[self.indices[s0 + p]];
                a1 += self.data[s1 + p] * x[self.indices[s1 + p]];
                a2 += self.data[s2 + p] * x[self.indices[s2 + p]];
                a3 += self.data[s3 + p] * x[self.indices[s3 + p]];
            }
            for p in shared..l0 {
                a0 += self.data[s0 + p] * x[self.indices[s0 + p]];
            }
            for p in shared..l1 {
                a1 += self.data[s1 + p] * x[self.indices[s1 + p]];
            }
            for p in shared..l2 {
                a2 += self.data[s2 + p] * x[self.indices[s2 + p]];
            }
            for p in shared..l3 {
                a3 += self.data[s3 + p] * x[self.indices[s3 + p]];
            }
            out[i] = a0;
            out[i + 1] = a1;
            out[i + 2] = a2;
            out[i + 3] = a3;
            i += 4;
        }
        // Remainder rows (< 4 left) take the general path.
        let row0_tail = row0 + i;
        self.spmv_rows_general(x, row0_tail, &mut out[i..]);
    }

    /// Returns the transpose as a new CSR matrix.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut t = TripletMatrix::with_capacity(self.ncols, self.nrows, self.nnz());
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                t.push(c, r, v);
            }
        }
        t.to_csr()
    }

    /// Extracts the diagonal into a vector (missing diagonal entries are
    /// `0.0`). Defined for square matrices only.
    ///
    /// This is a copy of the cached diagonal; callers that only need to
    /// read it should prefer [`Self::diagonal_ref`].
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn diagonal(&self) -> Vec<f64> {
        self.diagonal_ref().to_vec()
    }

    /// Borrows the diagonal cached at construction (missing entries are
    /// `0.0`). The matrix is immutable, so the cache never goes stale;
    /// preconditioner setup and dominance checks read it for free
    /// instead of re-deriving it with per-entry binary searches.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn diagonal_ref(&self) -> &[f64] {
        assert_eq!(self.nrows, self.ncols, "diagonal requires a square matrix");
        &self.diag
    }

    /// The number of stored entries in the widest row — the profile the
    /// SpMV dispatch uses, cached at construction.
    #[must_use]
    pub fn max_row_nnz(&self) -> usize {
        self.max_row_nnz
    }

    /// Checks structural and numerical symmetry to within `tol` (relative
    /// to the larger of the two mirrored magnitudes).
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                let m = self.get(c, r);
                let scale = v.abs().max(m.abs()).max(1.0);
                if (v - m).abs() > tol * scale {
                    return false;
                }
            }
        }
        true
    }

    /// Checks weak row diagonal dominance: `|a_ii| >= sum_{j != i} |a_ij|`
    /// for every row. MNA conductance matrices with at least one path to a
    /// voltage source satisfy this, which guarantees CG convergence.
    #[must_use]
    pub fn is_diagonally_dominant(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for r in 0..self.nrows {
            // The diagonal comes from the construction-time cache; the
            // row walk only accumulates the off-diagonal magnitudes.
            let diag = self.diag[r].abs();
            let mut off = 0.0;
            for (c, v) in self.row(r) {
                if c != r {
                    off += v.abs();
                }
            }
            // Tiny tolerance for floating point accumulation.
            if diag + 1e-12 * (diag + off) < off {
                return false;
            }
        }
        true
    }

    /// Computes the residual vector `r = b - A x`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] on shape mismatch.
    pub fn residual(&self, x: &[f64], b: &[f64]) -> crate::Result<Vec<f64>> {
        if b.len() != self.nrows {
            return Err(SolverError::DimensionMismatch {
                detail: format!(
                    "residual: matrix has {} rows, b has length {}",
                    self.nrows,
                    b.len()
                ),
            });
        }
        let ax = self.mul_vec(x)?;
        Ok(b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect())
    }

    /// Converts to a dense matrix. Intended for small systems and tests.
    #[must_use]
    pub fn to_dense(&self) -> crate::DenseMatrix {
        let mut d = crate::DenseMatrix::zeros(self.nrows, self.ncols);
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                d.set(r, c, v);
            }
        }
        d
    }

    /// Frobenius norm of the matrix.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        crate::vecops::norm2(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2],
        //  [0, 3, 0],
        //  [4, 0, 5]]
        CsrMatrix::from_raw_parts(
            3,
            3,
            vec![0, 2, 3, 5],
            vec![0, 2, 1, 0, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn raw_parts_roundtrip() {
        let a = sample();
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.row_nnz(1), 1);
    }

    #[test]
    fn invalid_indptr_rejected() {
        let err = CsrMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, SolverError::DimensionMismatch { .. }));
    }

    #[test]
    fn decreasing_indptr_rejected() {
        let err = CsrMatrix::from_raw_parts(2, 2, vec![0, 1, 0], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, SolverError::DimensionMismatch { .. }));
    }

    #[test]
    fn unsorted_columns_rejected() {
        let err =
            CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SolverError::DimensionMismatch { .. }));
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err =
            CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SolverError::DimensionMismatch { .. }));
    }

    #[test]
    fn column_out_of_range_rejected() {
        let err = CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).unwrap_err();
        assert!(matches!(err, SolverError::IndexOutOfBounds { col: 5, .. }));
    }

    #[test]
    fn spmv_matches_dense() {
        let a = sample();
        let y = a.mul_vec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![7.0, 6.0, 19.0]);
    }

    #[test]
    fn spmv_shape_mismatch() {
        let a = sample();
        assert!(a.mul_vec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn identity_acts_as_identity() {
        let i = CsrMatrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(i.mul_vec(&x).unwrap(), x);
        assert_eq!(i.nnz(), 4);
    }

    #[test]
    fn transpose_involution() {
        let a = sample();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
    }

    #[test]
    fn transpose_moves_entries() {
        let a = sample();
        let at = a.transpose();
        assert_eq!(at.get(2, 0), 2.0);
        assert_eq!(at.get(0, 2), 4.0);
    }

    #[test]
    fn diagonal_extraction() {
        let a = sample();
        assert_eq!(a.diagonal(), vec![1.0, 3.0, 5.0]);
        assert_eq!(a.diagonal_ref(), &[1.0, 3.0, 5.0]);
    }

    #[test]
    fn row_nnz_profile_is_cached() {
        assert_eq!(sample().max_row_nnz(), 2);
        assert_eq!(CsrMatrix::identity(4).max_row_nnz(), 1);
        assert_eq!(CsrMatrix::identity(0).max_row_nnz(), 0);
    }

    #[test]
    fn interleaved_spmv_matches_general_bitwise() {
        // A short-row matrix (stencil regime) with ragged row lengths,
        // including empty rows, exercising the interleaved kernel's
        // shared-prefix and tail paths plus the < 4-row remainder.
        let mut t = TripletMatrix::new(103, 103);
        for i in 0..103usize {
            t.push(i, i, 2.0 + (i % 7) as f64 * 0.25);
            if i + 1 < 103 && i % 3 != 0 {
                t.push(i, i + 1, -0.5 - (i % 5) as f64 * 0.125);
            }
            if i >= 10 && i % 4 == 0 {
                t.push(i, i - 10, 0.75);
            }
        }
        let a = t.to_csr();
        assert!(a.max_row_nnz() <= SPMV_INTERLEAVE_MAX_ROW_NNZ);
        let x: Vec<f64> = (0..103)
            .map(|i| ((i * 13) % 17) as f64 * 0.3 - 1.1)
            .collect();
        let mut fast = vec![0.0; 103];
        a.spmv_rows_interleaved(&x, 0, &mut fast);
        let mut reference = vec![0.0; 103];
        a.spmv_rows_general(&x, 0, &mut reference);
        for (f, r) in fast.iter().zip(&reference) {
            assert_eq!(f.to_bits(), r.to_bits());
        }
        // And mul_vec (which dispatches to the interleaved path here)
        // agrees too.
        let y = a.mul_vec(&x).unwrap();
        for (f, r) in y.iter().zip(&reference) {
            assert_eq!(f.to_bits(), r.to_bits());
        }
    }

    #[test]
    fn blocked_spmv_is_bitwise_deterministic_across_thread_counts() {
        // Large enough (n > par threshold) that 4 threads actually
        // split the rows; per-row serial accumulation must make the
        // result bitwise identical to the single-thread run.
        let n = 5000usize;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0 + (i % 9) as f64 * 0.5);
            if i + 1 < n {
                t.push(i, i + 1, -1.0 - (i % 3) as f64 * 0.25);
            }
            if i >= 50 {
                t.push(i, i - 50, 0.375);
            }
        }
        let a = t.to_csr();
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 29) % 101) as f64 * 0.07 - 3.0)
            .collect();
        crate::set_threads(1);
        let y1 = a.mul_vec(&x).unwrap();
        crate::set_threads(4);
        let y4 = a.mul_vec(&x).unwrap();
        crate::set_threads(0);
        for (u, v) in y1.iter().zip(&y4) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn wide_row_matrix_dispatches_to_general_path() {
        // One dense row pushes the profile past the interleave bound.
        let mut t = TripletMatrix::new(40, 40);
        for i in 0..40usize {
            t.push(i, i, 3.0);
        }
        for c in 0..40usize {
            if c != 20 {
                t.push(20, c, 0.01 * (c as f64 + 1.0));
            }
        }
        let a = t.to_csr();
        assert!(a.max_row_nnz() > SPMV_INTERLEAVE_MAX_ROW_NNZ);
        let x: Vec<f64> = (0..40).map(|i| (i as f64).mul_add(0.1, -2.0)).collect();
        let y = a.mul_vec(&x).unwrap();
        let mut reference = vec![0.0; 40];
        a.spmv_rows_general(&x, 0, &mut reference);
        assert_eq!(y, reference);
    }

    #[test]
    fn symmetry_check() {
        let mut t = TripletMatrix::new(2, 2);
        t.stamp_conductance(0, 1, 2.0);
        t.stamp_grounded_conductance(0, 1.0);
        let a = t.to_csr();
        assert!(a.is_symmetric(1e-12));
        assert!(!sample().is_symmetric(1e-12));
    }

    #[test]
    fn diagonal_dominance_of_stamped_grid() {
        let mut t = TripletMatrix::new(3, 3);
        t.stamp_conductance(0, 1, 1.0);
        t.stamp_conductance(1, 2, 1.0);
        t.stamp_grounded_conductance(0, 0.5);
        let a = t.to_csr();
        assert!(a.is_diagonally_dominant());
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let a = CsrMatrix::identity(3);
        let r = a.residual(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(r, vec![0.0; 3]);
    }

    #[test]
    fn to_dense_matches_get() {
        let a = sample();
        let d = a.to_dense();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(d.get(r, c), a.get(r, c));
            }
        }
    }

    #[test]
    fn frobenius_norm_value() {
        let a = sample();
        let expect = (1.0f64 + 4.0 + 9.0 + 16.0 + 25.0).sqrt();
        assert!((a.frobenius_norm() - expect).abs() < 1e-12);
    }
}

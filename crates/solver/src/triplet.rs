use crate::csr::CsrMatrix;
use crate::SolverError;

/// Coordinate-format (COO) sparse matrix accumulator.
///
/// This is the stamping interface used while assembling an MNA conductance
/// matrix: each resistor stamp pushes up to four `(row, col, value)`
/// entries, and duplicates are *summed* on conversion to CSR — exactly the
/// accumulation semantics circuit stamping needs.
///
/// # Example
///
/// ```
/// use ppdl_solver::TripletMatrix;
///
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // duplicate, summed on conversion
/// t.push(1, 1, 5.0);
/// let a = t.to_csr();
/// assert_eq!(a.get(0, 0), 3.0);
/// assert_eq!(a.get(1, 1), 5.0);
/// assert_eq!(a.nnz(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TripletMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl TripletMatrix {
    /// Creates an empty accumulator with the given shape.
    #[must_use]
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty accumulator with capacity for `cap` entries.
    #[must_use]
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Self {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of raw (pre-deduplication) entries pushed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Returns `true` if no entries have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Pushes an entry. Duplicates are allowed and summed on conversion.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds. Stamping with an
    /// out-of-range node index is a programming error in the assembler.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.nrows && col < self.ncols,
            "triplet push ({row}, {col}) out of bounds for {}x{} matrix",
            self.nrows,
            self.ncols
        );
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(value);
    }

    /// Fallible variant of [`push`](Self::push), returning an error instead
    /// of panicking on out-of-bounds indices.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::IndexOutOfBounds`] if the indices do not fit
    /// the declared shape.
    pub fn try_push(&mut self, row: usize, col: usize, value: f64) -> crate::Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SolverError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(value);
        Ok(())
    }

    /// Stamps the symmetric 2x2 conductance pattern of a two-terminal
    /// conductance `g` between nodes `a` and `b`:
    /// `A[a][a] += g; A[b][b] += g; A[a][b] -= g; A[b][a] -= g`.
    ///
    /// This is the fundamental resistor stamp of nodal analysis.
    pub fn stamp_conductance(&mut self, a: usize, b: usize, g: f64) {
        self.push(a, a, g);
        self.push(b, b, g);
        self.push(a, b, -g);
        self.push(b, a, -g);
    }

    /// Stamps a conductance from node `a` to ground (only the diagonal
    /// term appears, because the ground node is eliminated).
    pub fn stamp_grounded_conductance(&mut self, a: usize, g: f64) {
        self.push(a, a, g);
    }

    /// Converts to CSR, summing duplicate entries and dropping explicit
    /// zeros that result from cancellation. Entries whose summed magnitude
    /// is exactly `0.0` are removed.
    #[must_use]
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row, then sort each row segment by column and
        // merge duplicates. O(nnz log nnz_row) overall.
        let nnz = self.vals.len();
        let mut row_counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            row_counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut order: Vec<usize> = vec![0; nnz];
        let mut next = row_counts.clone();
        for (k, &r) in self.rows.iter().enumerate() {
            order[next[r]] = k;
            next[r] += 1;
        }

        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut data = Vec::with_capacity(nnz);
        indptr.push(0usize);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.nrows {
            scratch.clear();
            for &k in &order[row_counts[r]..row_counts[r + 1]] {
                scratch.push((self.cols[k], self.vals[k]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let col = scratch[i].0;
                let mut sum = 0.0;
                while i < scratch.len() && scratch[i].0 == col {
                    sum += scratch[i].1;
                    i += 1;
                }
                if sum != 0.0 {
                    indices.push(col);
                    data.push(sum);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_raw_parts(self.nrows, self.ncols, indptr, indices, data)
            // ppdl-lint: allow(robustness/unwrap-in-lib, robustness/panic-reachable) -- indptr/indices/data are built sorted and in-bounds by the loop above; to_csr is infallible by construction and returning Result would ripple an impossible error through every assembly site
            .expect("triplet-to-CSR conversion produced invalid structure")
    }

    /// Clears all entries, keeping the allocated capacity and shape.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.cols.clear();
        self.vals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_converts() {
        let t = TripletMatrix::new(3, 3);
        let a = t.to_csr();
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.get(1, 2), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(1, 0, 1.5);
        t.push(1, 0, 2.5);
        t.push(0, 1, -1.0);
        let a = t.to_csr();
        assert_eq!(a.get(1, 0), 4.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn cancellation_drops_entry() {
        let mut t = TripletMatrix::new(1, 1);
        t.push(0, 0, 2.0);
        t.push(0, 0, -2.0);
        let a = t.to_csr();
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    fn columns_sorted_within_rows() {
        let mut t = TripletMatrix::new(1, 5);
        t.push(0, 4, 4.0);
        t.push(0, 0, 1.0);
        t.push(0, 2, 2.0);
        let a = t.to_csr();
        let row: Vec<_> = a.row(0).map(|(c, _)| c).collect();
        assert_eq!(row, vec![0, 2, 4]);
    }

    #[test]
    fn conductance_stamp_pattern() {
        let mut t = TripletMatrix::new(3, 3);
        t.stamp_conductance(0, 2, 0.5);
        let a = t.to_csr();
        assert_eq!(a.get(0, 0), 0.5);
        assert_eq!(a.get(2, 2), 0.5);
        assert_eq!(a.get(0, 2), -0.5);
        assert_eq!(a.get(2, 0), -0.5);
        assert_eq!(a.get(1, 1), 0.0);
    }

    #[test]
    fn grounded_stamp_only_diagonal() {
        let mut t = TripletMatrix::new(2, 2);
        t.stamp_grounded_conductance(1, 3.0);
        let a = t.to_csr();
        assert_eq!(a.get(1, 1), 3.0);
        assert_eq!(a.nnz(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(2, 0, 1.0);
    }

    #[test]
    fn try_push_reports_error() {
        let mut t = TripletMatrix::new(2, 2);
        let err = t.try_push(0, 5, 1.0).unwrap_err();
        assert!(matches!(err, SolverError::IndexOutOfBounds { col: 5, .. }));
        assert!(t.try_push(0, 1, 1.0).is_ok());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn clear_keeps_shape() {
        let mut t = TripletMatrix::new(2, 3);
        t.push(0, 0, 1.0);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.ncols(), 3);
    }

    #[test]
    fn rectangular_shape_respected() {
        let mut t = TripletMatrix::new(2, 4);
        t.push(1, 3, 9.0);
        let a = t.to_csr();
        assert_eq!(a.nrows(), 2);
        assert_eq!(a.ncols(), 4);
        assert_eq!(a.get(1, 3), 9.0);
    }
}

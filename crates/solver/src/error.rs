use std::fmt;

/// Errors produced by the linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolverError {
    /// Matrix/vector dimensions are incompatible for the requested
    /// operation. Holds a human-readable description of the mismatch.
    DimensionMismatch {
        /// Description of the operation and the offending shapes.
        detail: String,
    },
    /// An index was outside the matrix bounds.
    IndexOutOfBounds {
        /// The offending row index.
        row: usize,
        /// The offending column index.
        col: usize,
        /// Number of rows of the matrix.
        nrows: usize,
        /// Number of columns of the matrix.
        ncols: usize,
    },
    /// A factorization failed because the matrix is singular or not
    /// positive definite (for Cholesky-type factorizations).
    NotPositiveDefinite {
        /// Pivot index where the failure was detected.
        pivot: usize,
        /// The offending pivot value.
        value: f64,
    },
    /// LU factorization hit a zero (or numerically negligible) pivot.
    SingularMatrix {
        /// Pivot index where the failure was detected.
        pivot: usize,
    },
    /// An iterative solver failed to reach the requested tolerance within
    /// its iteration budget.
    DidNotConverge {
        /// Number of iterations performed.
        iterations: usize,
        /// Relative residual norm at the final iteration.
        residual: f64,
        /// The tolerance that was requested.
        tolerance: f64,
    },
    /// A non-finite value (NaN or infinity) was encountered.
    NonFiniteValue {
        /// Description of where the non-finite value appeared.
        context: String,
    },
    /// Solver options were outside their valid range (e.g. a
    /// non-positive tolerance or a zero preconditioner block size).
    InvalidOptions {
        /// Description of the offending knob and its value.
        detail: String,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::DimensionMismatch { detail } => {
                write!(f, "dimension mismatch: {detail}")
            }
            SolverError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "index ({row}, {col}) out of bounds for {nrows}x{ncols} matrix"
            ),
            SolverError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} has value {value:e}"
            ),
            SolverError::SingularMatrix { pivot } => {
                write!(f, "matrix is singular: zero pivot at index {pivot}")
            }
            SolverError::DidNotConverge {
                iterations,
                residual,
                tolerance,
            } => write!(
                f,
                "iterative solver did not converge: relative residual {residual:e} > \
                 tolerance {tolerance:e} after {iterations} iterations"
            ),
            SolverError::NonFiniteValue { context } => {
                write!(f, "non-finite value encountered in {context}")
            }
            SolverError::InvalidOptions { detail } => {
                write!(f, "invalid solver options: {detail}")
            }
        }
    }
}

impl std::error::Error for SolverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = SolverError::DimensionMismatch {
            detail: "spmv: 3x3 * len-2".into(),
        };
        assert!(e.to_string().contains("dimension mismatch"));
        assert!(e.to_string().contains("spmv"));
    }

    #[test]
    fn display_not_positive_definite() {
        let e = SolverError::NotPositiveDefinite {
            pivot: 4,
            value: -1.5,
        };
        let s = e.to_string();
        assert!(s.contains("positive definite"));
        assert!(s.contains('4'));
    }

    #[test]
    fn display_did_not_converge_mentions_numbers() {
        let e = SolverError::DidNotConverge {
            iterations: 100,
            residual: 1e-3,
            tolerance: 1e-9,
        };
        let s = e.to_string();
        assert!(s.contains("100"));
        assert!(s.contains("1e-3") || s.contains("1e-03") || s.contains("0.001"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<T: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SolverError>();
    }

    #[test]
    fn display_invalid_options() {
        let e = SolverError::InvalidOptions {
            detail: "tolerance 0e0 must be positive".into(),
        };
        let s = e.to_string();
        assert!(s.contains("invalid solver options"));
        assert!(s.contains("tolerance"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = SolverError::SingularMatrix { pivot: 1 };
        let b = SolverError::SingularMatrix { pivot: 1 };
        assert_eq!(a, b);
    }
}

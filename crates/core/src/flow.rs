//! The end-to-end PowerPlanningDL flow (Fig. 2 / Fig. 6).
//!
//! Training phase: run the conventional iterative design once to obtain
//! golden widths, extract `(X, Y, Id, wᵢ)` quadruples, train the MLP.
//! Validation phase: perturb the design (§IV-D), predict widths with
//! the model, predict IR drop with Kirchhoff accumulation, and compare
//! quality and wall-clock time against a conventional analysis of the
//! same perturbed design — the Table III/IV/V measurements.

use std::time::{Duration, Instant};

use ppdl_analysis::{IrDropReport, StaticAnalysis};
use ppdl_netlist::SyntheticBenchmark;


use crate::{
    ConventionalConfig, ConventionalFlow, IrPredictor, Perturbation, PerturbationKind,
    PredictedIr, PredictorConfig, WidthMetrics, WidthPredictor,
};

/// Configuration of the full flow.
#[derive(Debug, Clone)]
pub struct DlFlowConfig {
    /// The conventional baseline (golden-label generator and timing
    /// comparator).
    pub conventional: ConventionalConfig,
    /// The width-prediction model.
    pub predictor: PredictorConfig,
    /// Perturbation size γ for the test design (the paper's headline
    /// value is 10 %).
    pub perturbation_gamma: f64,
    /// What the perturbation touches.
    pub perturbation_kind: PerturbationKind,
    /// Seed for the perturbation randomness.
    pub seed: u64,
    /// Segment-sampling stride for the timed width-inference path (a
    /// strap has one width, so predicting every n-th of its segments
    /// and averaging is design-equivalent at 1/n the inference cost).
    pub inference_stride: usize,
}

impl Default for DlFlowConfig {
    fn default() -> Self {
        Self {
            conventional: ConventionalConfig::default(),
            predictor: PredictorConfig::default(),
            perturbation_gamma: 0.10,
            perturbation_kind: PerturbationKind::Both,
            seed: 1,
            inference_stride: 4,
        }
    }
}

impl DlFlowConfig {
    /// A reduced configuration for tests and doc examples.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            predictor: PredictorConfig::fast(),
            ..Self::default()
        }
    }
}

/// Wall-clock comparison between the two approaches (Table IV).
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Conventional convergence time: one full power-grid analysis of
    /// the test design (the paper's best-case, single-iteration cost).
    pub conventional: Duration,
    /// PowerPlanningDL time: width inference plus Kirchhoff IR-drop
    /// prediction.
    pub dl: Duration,
    /// `conventional / dl`.
    pub speedup: f64,
}

/// Everything the flow produces for one benchmark.
#[derive(Debug, Clone)]
pub struct DlOutcome {
    /// Golden per-strap widths from the conventional sizing.
    pub golden_widths: Vec<f64>,
    /// DL-predicted per-strap widths on the perturbed test design.
    pub predicted_widths: Vec<f64>,
    /// Width-prediction quality on the test design (Table V / Fig. 7).
    pub width_metrics: WidthMetrics,
    /// Worst-case IR drop of the test design under conventional
    /// analysis, in mV (Table III left column).
    pub conventional_worst_ir_mv: f64,
    /// Worst-case IR drop predicted by PowerPlanningDL, in mV
    /// (Table III right column).
    pub predicted_worst_ir_mv: f64,
    /// The timing comparison (Table IV).
    pub timing: Timing,
    /// The training run's loss history.
    pub train_report: crate::TrainSummary,
    /// The sized (trained-on) benchmark.
    pub sized_bench: SyntheticBenchmark,
    /// The perturbed test benchmark.
    pub test_bench: SyntheticBenchmark,
    /// The conventional analysis report on the test design (for maps).
    pub test_report: IrDropReport,
    /// The Kirchhoff IR estimate on the test design (for maps).
    pub predicted_ir: PredictedIr,
    /// Design-loop iterations the conventional sizing needed.
    pub conventional_iterations: usize,
}

/// The PowerPlanningDL framework facade.
///
/// # Example
///
/// ```
/// use ppdl_core::{experiment, PowerPlanningDl};
/// use ppdl_netlist::IbmPgPreset;
///
/// let prepared = experiment::prepare(IbmPgPreset::Ibmpg2, 0.006, 3, 2.5).unwrap();
/// let config = experiment::flow_config(&prepared, true);
/// let outcome = PowerPlanningDl::new(config).run(&prepared.bench).unwrap();
/// assert!(outcome.width_metrics.r2 > 0.4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PowerPlanningDl {
    config: DlFlowConfig,
}

impl PowerPlanningDl {
    /// Creates the flow with the given configuration.
    #[must_use]
    pub fn new(config: DlFlowConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &DlFlowConfig {
        &self.config
    }

    /// Runs the full train-then-validate flow on `bench`.
    ///
    /// # Errors
    ///
    /// Propagates conventional-sizing, training, prediction, and
    /// analysis errors.
    pub fn run(&self, bench: &SyntheticBenchmark) -> crate::Result<DlOutcome> {
        let c = &self.config;
        let trained = self.train_phase(bench)?;
        let perturbation = Perturbation::new(c.perturbation_gamma, c.perturbation_kind, c.seed)?;
        self.validate_phase(&trained, &perturbation)
    }

    /// Trains once, then validates against every perturbation in
    /// parallel — the γ-sweep form of the flow (Fig. 9).
    ///
    /// The expensive γ-independent work (conventional sizing, model
    /// training) runs once; each perturbation then gets the same
    /// perturb → predict → analyze validation [`run`](Self::run)
    /// performs, distributed across the thread pool configured through
    /// [`ppdl_solver::parallel`]. Results are returned in perturbation
    /// order, one per point, and each point's outcome is identical to a
    /// sequential evaluation at any thread count.
    ///
    /// # Errors
    ///
    /// The training phase's errors fail the whole sweep; per-point
    /// validation errors are reported in that point's slot.
    pub fn run_sweep(
        &self,
        bench: &SyntheticBenchmark,
        perturbations: &[Perturbation],
    ) -> crate::Result<Vec<crate::Result<DlOutcome>>> {
        let trained = self.train_phase(bench)?;
        Ok(ppdl_solver::parallel::par_map_vec(
            perturbations,
            |_, p| self.validate_phase(&trained, p),
        ))
    }

    /// The γ-independent phase: conventional sizing plus model training.
    fn train_phase(&self, bench: &SyntheticBenchmark) -> crate::Result<TrainedFlow> {
        let c = &self.config;

        // 1. Conventional design: golden widths + training substrate.
        let (sized, conventional) = ConventionalFlow::new(c.conventional.clone()).run(bench)?;

        // 2. Train the width model on the sized design.
        let (predictor, train_report) =
            WidthPredictor::train(&sized, &conventional.widths, c.predictor.clone())?;

        Ok(TrainedFlow {
            sized,
            conventional,
            predictor,
            train_report,
        })
    }

    /// The per-perturbation phase: perturb, predict, and compare
    /// against the conventional analysis. Takes `&self` and a shared
    /// [`TrainedFlow`], so sweep points can run concurrently.
    fn validate_phase(
        &self,
        trained: &TrainedFlow,
        perturbation: &Perturbation,
    ) -> crate::Result<DlOutcome> {
        let c = &self.config;
        let TrainedFlow {
            sized,
            conventional,
            predictor,
            train_report,
        } = trained;

        // 3. Build the perturbed test design (§IV-D).
        let test_bench = perturbation.apply(sized)?;

        // 4. PowerPlanningDL path: width inference + Kirchhoff IR drop.
        let t0 = Instant::now();
        let predicted_widths =
            predictor.predict_strap_widths_sampled(&test_bench, c.inference_stride)?;
        let predicted_ir = IrPredictor::new().predict(&test_bench, &predicted_widths)?;
        let dl_time = t0.elapsed();

        // 5. Conventional path on the same test design: one full
        //    analysis (the paper's best-case conventional cost).
        let analyzer = StaticAnalysis::new(c.conventional.analysis.clone());
        let t1 = Instant::now();
        let test_report = analyzer.solve(test_bench.network())?;
        let conventional_time = t1.elapsed();

        // 6. Quality metrics.
        let width_metrics = predictor.evaluate(&test_bench, &conventional.widths)?;
        let conventional_worst_ir_mv =
            test_report.worst_drop().map_or(0.0, |(_, d)| d) * 1e3;
        let speedup =
            conventional_time.as_secs_f64() / dl_time.as_secs_f64().max(f64::EPSILON);

        Ok(DlOutcome {
            golden_widths: conventional.widths.clone(),
            predicted_widths,
            width_metrics,
            conventional_worst_ir_mv,
            predicted_worst_ir_mv: predicted_ir.worst_mv(),
            timing: Timing {
                conventional: conventional_time,
                dl: dl_time,
                speedup,
            },
            train_report: train_report.clone(),
            sized_bench: sized.clone(),
            test_bench,
            test_report,
            predicted_ir,
            conventional_iterations: conventional.iterations,
        })
    }
}

/// Output of the γ-independent training phase, shared (immutably) by
/// every validation point of a sweep.
#[derive(Debug, Clone)]
struct TrainedFlow {
    sized: SyntheticBenchmark,
    conventional: crate::ConventionalResult,
    predictor: WidthPredictor,
    train_report: crate::TrainSummary,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdl_netlist::IbmPgPreset;

    fn outcome() -> DlOutcome {
        let prepared = crate::experiment::prepare(IbmPgPreset::Ibmpg2, 0.008, 13, 2.5).unwrap();
        let config = crate::experiment::flow_config(&prepared, true);
        PowerPlanningDl::new(config).run(&prepared.bench).unwrap()
    }

    #[test]
    fn full_flow_produces_consistent_outcome() {
        let o = outcome();
        assert_eq!(o.golden_widths.len(), o.predicted_widths.len());
        assert!(o.width_metrics.r2 > 0.5, "r2 = {}", o.width_metrics.r2);
        assert!(o.conventional_worst_ir_mv > 0.0);
        assert!(o.predicted_worst_ir_mv > 0.0);
        assert!(o.timing.speedup > 0.0);
        assert!(o.conventional_iterations >= 1);
        assert!(o.train_report.total_epochs() > 0);
    }

    #[test]
    fn predicted_ir_same_order_as_conventional() {
        let o = outcome();
        let ratio = o.predicted_worst_ir_mv / o.conventional_worst_ir_mv;
        assert!(
            (0.3..3.0).contains(&ratio),
            "predicted {} vs conventional {} mV",
            o.predicted_worst_ir_mv,
            o.conventional_worst_ir_mv
        );
    }

    #[test]
    fn test_bench_is_perturbed_copy() {
        let o = outcome();
        assert_ne!(
            o.test_bench.network().total_load_current(),
            o.sized_bench.network().total_load_current()
        );
        assert_eq!(
            o.test_bench.segments().len(),
            o.sized_bench.segments().len()
        );
    }

    #[test]
    fn sweep_trains_once_and_orders_results() {
        let prepared = crate::experiment::prepare(IbmPgPreset::Ibmpg2, 0.008, 13, 2.5).unwrap();
        let config = crate::experiment::flow_config(&prepared, true);
        let flow = PowerPlanningDl::new(config);
        let points = crate::experiment::perturbation_grid(
            &[0.1, 0.3],
            &[PerturbationKind::Both],
            5,
            1,
        )
        .unwrap();
        let outcomes = flow.run_sweep(&prepared.bench, &points).unwrap();
        assert_eq!(outcomes.len(), points.len());
        for (res, p) in outcomes.iter().zip(&points) {
            let o = res.as_ref().unwrap();
            assert_eq!(o.golden_widths.len(), o.predicted_widths.len());
            // Every point validates against its own perturbation of the
            // shared sized design.
            let direct = p.apply(&o.sized_bench).unwrap();
            assert_eq!(
                o.test_bench.network().total_load_current(),
                direct.network().total_load_current()
            );
        }
        // The two points perturb differently, so their test designs
        // differ even though the trained model is shared.
        let a = outcomes[0].as_ref().unwrap();
        let b = outcomes[1].as_ref().unwrap();
        assert_ne!(
            a.test_bench.network().total_load_current(),
            b.test_bench.network().total_load_current()
        );
    }

    #[test]
    fn maps_buildable_from_outcome() {
        use ppdl_analysis::IrDropMap;
        let o = outcome();
        let conv = IrDropMap::from_report(o.test_bench.network(), &o.test_report, 12).unwrap();
        let pred = o.predicted_ir.to_map(&o.test_bench, 12).unwrap();
        assert_eq!(conv.resolution(), pred.resolution());
        assert!(conv.max_mv() > 0.0 && pred.max_mv() > 0.0);
    }
}

//! The end-to-end PowerPlanningDL flow (Fig. 2 / Fig. 6).
//!
//! Training phase: run the conventional iterative design once to obtain
//! golden widths, extract `(X, Y, Id, wᵢ)` quadruples, train the MLP.
//! Validation phase: perturb the design (§IV-D), predict widths with
//! the model, predict IR drop with Kirchhoff accumulation, and compare
//! quality and wall-clock time against a conventional analysis of the
//! same perturbed design — the Table III/IV/V measurements.
//!
//! Since the pipeline refactor this module is a facade over the stage
//! engine in [`crate::pipeline`]: [`PowerPlanningDl::run`] is exactly
//! the five-stage standard pipeline, and the `*_cached` variants thread
//! an [`ArtifactCache`] through so repeated runs skip sizing, training,
//! and ground-truth solves.

use std::time::Duration;

use ppdl_analysis::IrDropReport;
use ppdl_netlist::SyntheticBenchmark;

use crate::pipeline::{
    run_stage, ArtifactCache, BenchmarkSourceStage, FeatureExtractStage, Pipeline, PipelineCtx,
    PredictStage, StageRecord, TrainStage, ValidateStage,
};
use crate::{
    BackendKind, ConventionalConfig, Perturbation, PerturbationKind, PredictedIr, PredictorConfig,
    WidthMetrics,
};

/// Configuration of the full flow.
#[derive(Debug, Clone)]
pub struct DlFlowConfig {
    /// The conventional baseline (golden-label generator and timing
    /// comparator).
    pub conventional: ConventionalConfig,
    /// The width-prediction model.
    pub predictor: PredictorConfig,
    /// Which surrogate backend the train stage fits (MLP rows vs
    /// spatial maps).
    pub backend: BackendKind,
    /// Perturbation size γ for the test design (the paper's headline
    /// value is 10 %).
    pub perturbation_gamma: f64,
    /// What the perturbation touches.
    pub perturbation_kind: PerturbationKind,
    /// Seed for the perturbation randomness.
    pub seed: u64,
    /// Segment-sampling stride for the timed width-inference path (a
    /// strap has one width, so predicting every n-th of its segments
    /// and averaging is design-equivalent at 1/n the inference cost).
    pub inference_stride: usize,
}

impl Default for DlFlowConfig {
    fn default() -> Self {
        Self {
            conventional: ConventionalConfig::default(),
            predictor: PredictorConfig::default(),
            backend: BackendKind::Mlp,
            perturbation_gamma: 0.10,
            perturbation_kind: PerturbationKind::Both,
            seed: 1,
            inference_stride: 4,
        }
    }
}

impl DlFlowConfig {
    /// A reduced configuration for tests and doc examples.
    #[must_use]
    pub fn fast() -> Self {
        Self::builder().fast().build()
    }

    /// A builder starting from the paper's configuration. Prefer this
    /// over struct-literal construction: new knobs get sensible
    /// defaults instead of breaking call sites, and the perturbation
    /// size is range-checked at build time.
    #[must_use]
    pub fn builder() -> DlFlowConfigBuilder {
        DlFlowConfigBuilder::default()
    }
}

/// Builder for [`DlFlowConfig`]; defaults are the paper configuration,
/// [`fast`](DlFlowConfigBuilder::fast) switches to the reduced preset.
///
/// # Example
///
/// ```
/// use ppdl_core::DlFlowConfig;
///
/// let config = DlFlowConfig::builder()
///     .fast()
///     .perturbation_gamma(0.2)
///     .seed(7)
///     .build();
/// assert_eq!(config.perturbation_gamma, 0.2);
/// assert_eq!(config.predictor.hidden_layers, 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DlFlowConfigBuilder {
    config: DlFlowConfig,
}

impl DlFlowConfigBuilder {
    /// Switches every model/training knob to the reduced preset used
    /// by tests and doc examples.
    #[must_use]
    pub fn fast(mut self) -> Self {
        self.config.predictor = PredictorConfig::fast();
        self
    }

    /// Replaces the conventional-baseline configuration.
    #[must_use]
    pub fn conventional(mut self, conventional: ConventionalConfig) -> Self {
        self.config.conventional = conventional;
        self
    }

    /// Sets the IR margin the conventional sizing targets, as a
    /// fraction of Vdd (shorthand for the common case of
    /// [`conventional`](Self::conventional)).
    #[must_use]
    pub fn ir_margin_fraction(mut self, fraction: f64) -> Self {
        self.config.conventional.ir_margin_fraction = fraction;
        self
    }

    /// Sets the per-iteration widening multiplier of the conventional
    /// sizing loop (shorthand for the common case of
    /// [`conventional`](Self::conventional)). Finer factors converge
    /// tighter margins at the price of more full-solve iterations —
    /// the trade the synthesis experiment measures.
    #[must_use]
    pub fn widen_factor(mut self, factor: f64) -> Self {
        self.config.conventional.widen_factor = factor;
        self
    }

    /// Selects the preconditioner for the conventional sizing's
    /// analysis solves (shorthand for the common case of
    /// [`conventional`](Self::conventional)).
    #[must_use]
    pub fn preconditioner(mut self, kind: ppdl_analysis::PreconditionerKind) -> Self {
        self.config.conventional.analysis.preconditioner = kind;
        self
    }

    /// Replaces the width-prediction model configuration.
    #[must_use]
    pub fn predictor(mut self, predictor: PredictorConfig) -> Self {
        self.config.predictor = predictor;
        self
    }

    /// Selects the surrogate backend the train stage fits.
    #[must_use]
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.config.backend = backend;
        self
    }

    /// Sets the perturbation size γ.
    #[must_use]
    pub fn perturbation_gamma(mut self, gamma: f64) -> Self {
        self.config.perturbation_gamma = gamma;
        self
    }

    /// Sets what the perturbation touches.
    #[must_use]
    pub fn perturbation_kind(mut self, kind: PerturbationKind) -> Self {
        self.config.perturbation_kind = kind;
        self
    }

    /// Sets the perturbation seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the segment-sampling stride of the timed inference path.
    #[must_use]
    pub fn inference_stride(mut self, stride: usize) -> Self {
        self.config.inference_stride = stride;
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> DlFlowConfig {
        self.config
    }

    /// Finishes the builder, rejecting out-of-range knobs (γ outside
    /// `(0, 1)`, zero stride) instead of failing later inside the flow.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidConfig`].
    pub fn try_build(self) -> crate::Result<DlFlowConfig> {
        let c = self.config;
        if !(c.perturbation_gamma > 0.0 && c.perturbation_gamma < 1.0) {
            return Err(crate::CoreError::InvalidConfig {
                detail: format!("perturbation size {} outside (0, 1)", c.perturbation_gamma),
            });
        }
        if c.inference_stride == 0 {
            return Err(crate::CoreError::InvalidConfig {
                detail: "inference stride must be at least 1".into(),
            });
        }
        Ok(c)
    }
}

/// Wall-clock comparison between the two approaches (Table IV).
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Conventional convergence time: one full power-grid analysis of
    /// the test design (the paper's best-case, single-iteration cost).
    pub conventional: Duration,
    /// PowerPlanningDL time: width inference plus Kirchhoff IR-drop
    /// prediction.
    pub dl: Duration,
    /// `conventional / dl`.
    pub speedup: f64,
}

/// Everything the flow produces for one benchmark.
#[derive(Debug, Clone)]
pub struct DlOutcome {
    /// Golden per-strap widths from the conventional sizing.
    pub golden_widths: Vec<f64>,
    /// DL-predicted per-strap widths on the perturbed test design.
    pub predicted_widths: Vec<f64>,
    /// Width-prediction quality on the test design (Table V / Fig. 7).
    pub width_metrics: WidthMetrics,
    /// Worst-case IR drop of the test design under conventional
    /// analysis, in mV (Table III left column).
    pub conventional_worst_ir_mv: f64,
    /// Worst-case IR drop predicted by PowerPlanningDL, in mV
    /// (Table III right column).
    pub predicted_worst_ir_mv: f64,
    /// The timing comparison (Table IV).
    pub timing: Timing,
    /// The training run's loss history.
    pub train_report: crate::TrainSummary,
    /// The sized (trained-on) benchmark.
    pub sized_bench: SyntheticBenchmark,
    /// The perturbed test benchmark.
    pub test_bench: SyntheticBenchmark,
    /// The conventional analysis report on the test design (for maps).
    pub test_report: IrDropReport,
    /// The Kirchhoff IR estimate on the test design (for maps).
    pub predicted_ir: PredictedIr,
    /// Design-loop iterations the conventional sizing needed.
    pub conventional_iterations: usize,
}

/// The PowerPlanningDL framework facade.
///
/// # Example
///
/// ```
/// use ppdl_core::{experiment, PowerPlanningDl};
/// use ppdl_netlist::IbmPgPreset;
///
/// let prepared = experiment::prepare(IbmPgPreset::Ibmpg2, 0.006, 3, 2.5).unwrap();
/// let config = experiment::flow_config(&prepared, true);
/// let outcome = PowerPlanningDl::new(config).run(&prepared.bench).unwrap();
/// assert!(outcome.width_metrics.r2 > 0.4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PowerPlanningDl {
    config: DlFlowConfig,
}

impl PowerPlanningDl {
    /// Creates the flow with the given configuration.
    #[must_use]
    pub fn new(config: DlFlowConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &DlFlowConfig {
        &self.config
    }

    /// Runs the full train-then-validate flow on `bench`.
    ///
    /// # Errors
    ///
    /// Propagates conventional-sizing, training, prediction, and
    /// analysis errors.
    pub fn run(&self, bench: &SyntheticBenchmark) -> crate::Result<DlOutcome> {
        Ok(self.run_cached(bench, None)?.0)
    }

    /// [`run`](Self::run) with an artifact cache: stages whose inputs
    /// are unchanged decode their artifacts from disk instead of
    /// recomputing, and the returned [`StageRecord`]s say which did.
    ///
    /// # Errors
    ///
    /// Propagates stage execution errors. Cache decode errors never
    /// fail a run — the stage recomputes.
    pub fn run_cached(
        &self,
        bench: &SyntheticBenchmark,
        cache: Option<&ArtifactCache>,
    ) -> crate::Result<(DlOutcome, Vec<StageRecord>)> {
        self.run_source_cached(BenchmarkSourceStage::provided(bench.clone()), cache)
    }

    /// Runs the standard five-stage pipeline from an arbitrary
    /// benchmark source (e.g. a cacheable preset source that also
    /// skips generation + calibration on warm runs).
    ///
    /// # Errors
    ///
    /// Propagates stage execution errors.
    pub fn run_source_cached(
        &self,
        source: BenchmarkSourceStage,
        cache: Option<&ArtifactCache>,
    ) -> crate::Result<(DlOutcome, Vec<StageRecord>)> {
        let mut ctx = PipelineCtx::new(self.config.clone(), cache);
        Pipeline::standard(source).run(&mut ctx)?;
        let outcome = Self::outcome_from_ctx(&ctx)?;
        Ok((outcome, ctx.records))
    }

    /// Trains once, then validates against every perturbation in
    /// parallel — the γ-sweep form of the flow (Fig. 9).
    ///
    /// The expensive γ-independent work (conventional sizing, model
    /// training) runs once; each perturbation then gets the same
    /// perturb → predict → analyze validation [`run`](Self::run)
    /// performs, distributed across the thread pool configured through
    /// [`ppdl_solver::parallel`]. Results are returned in perturbation
    /// order, one per point, and each point's outcome is identical to a
    /// sequential evaluation at any thread count.
    ///
    /// # Errors
    ///
    /// The training phase's errors fail the whole sweep; per-point
    /// validation errors are reported in that point's slot.
    pub fn run_sweep(
        &self,
        bench: &SyntheticBenchmark,
        perturbations: &[Perturbation],
    ) -> crate::Result<Vec<crate::Result<DlOutcome>>> {
        let sweep = self.run_sweep_cached(
            BenchmarkSourceStage::provided(bench.clone()),
            perturbations,
            None,
        )?;
        Ok(sweep.points.into_iter().map(|p| p.outcome).collect())
    }

    /// [`run_sweep`](Self::run_sweep) on the stage engine, with an
    /// optional artifact cache.
    ///
    /// The γ-independent prefix (source → feature-extract → train) runs
    /// — or cache-decodes — exactly once; it can never re-train per
    /// point, because each point's context is a clone taken *after* the
    /// train stage completed. With a cache, [`CacheStats::executions`]
    /// (`"train"`) counts actual trainings across sweeps, which is what
    /// the train-once regression test asserts.
    ///
    /// [`CacheStats::executions`]: crate::pipeline::CacheStats::executions
    ///
    /// # Errors
    ///
    /// Prefix stage errors fail the whole sweep; per-point errors land
    /// in that point's slot.
    pub fn run_sweep_cached(
        &self,
        source: BenchmarkSourceStage,
        perturbations: &[Perturbation],
        cache: Option<&ArtifactCache>,
    ) -> crate::Result<SweepRun> {
        let mut ctx = PipelineCtx::new(self.config.clone(), cache);
        run_stage(&source, &mut ctx)?;
        run_stage(&FeatureExtractStage, &mut ctx)?;
        run_stage(&TrainStage, &mut ctx)?;
        let shared_records = std::mem::take(&mut ctx.records);

        // ppdl-lint: allow(determinism/tainted-parallel) -- each point's RNG is StdRng seeded from its own Perturbation seed (bitwise deterministic; perturb::tests::deterministic_per_seed) and run_stage's clock read is span telemetry under its own wall-clock allow
        let points = ppdl_solver::parallel::par_map_vec(perturbations, |_, p| {
            let mut point_ctx = ctx.clone();
            let outcome = (|| {
                run_stage(&PredictStage::with_perturbation(*p), &mut point_ctx)?;
                run_stage(&ValidateStage, &mut point_ctx)?;
                Self::outcome_from_ctx(&point_ctx)
            })();
            SweepPoint {
                outcome,
                records: point_ctx.records,
            }
        });
        Ok(SweepRun {
            shared_records,
            points,
        })
    }

    /// Assembles the legacy outcome struct from a completed context.
    fn outcome_from_ctx(ctx: &PipelineCtx) -> crate::Result<DlOutcome> {
        let sizing = ctx.sizing()?;
        let trained = ctx.trained()?;
        let predicted = ctx.predicted()?;
        let validated = ctx.validated()?;

        let conventional_time = Duration::from_secs_f64(validated.conv_secs);
        let dl_time = Duration::from_secs_f64(predicted.dl_secs);
        let speedup = validated.conv_secs / predicted.dl_secs.max(f64::EPSILON);
        let conventional_worst_ir_mv = validated.report.worst_drop().map_or(0.0, |(_, d)| d) * 1e3;

        Ok(DlOutcome {
            golden_widths: sizing.golden_widths.clone(),
            predicted_widths: predicted.predicted_widths.clone(),
            width_metrics: validated.metrics,
            conventional_worst_ir_mv,
            predicted_worst_ir_mv: predicted.predicted_ir.worst_mv(),
            timing: Timing {
                conventional: conventional_time,
                dl: dl_time,
                speedup,
            },
            train_report: trained.summary.clone(),
            sized_bench: sizing.sized.clone(),
            test_bench: predicted.test_bench.clone(),
            test_report: validated.report.clone(),
            predicted_ir: predicted.predicted_ir.clone(),
            conventional_iterations: sizing.iterations,
        })
    }
}

/// What one sweep point produced: the outcome plus its predict/validate
/// stage records (for manifests).
#[derive(Debug)]
pub struct SweepPoint {
    /// The point's flow outcome (or its error).
    pub outcome: crate::Result<DlOutcome>,
    /// Stage records of the point's predict + validate stages.
    pub records: Vec<StageRecord>,
}

/// A full sweep: the shared train-phase records plus one
/// [`SweepPoint`] per perturbation, in input order.
#[derive(Debug)]
pub struct SweepRun {
    /// Records of the γ-independent prefix (source, feature-extract,
    /// train) — exactly one set per sweep, however many points follow.
    pub shared_records: Vec<StageRecord>,
    /// Per-perturbation results.
    pub points: Vec<SweepPoint>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdl_netlist::IbmPgPreset;

    fn outcome() -> DlOutcome {
        let prepared = crate::experiment::prepare(IbmPgPreset::Ibmpg2, 0.008, 13, 2.5).unwrap();
        let config = crate::experiment::flow_config(&prepared, true);
        PowerPlanningDl::new(config).run(&prepared.bench).unwrap()
    }

    #[test]
    fn full_flow_produces_consistent_outcome() {
        let o = outcome();
        assert_eq!(o.golden_widths.len(), o.predicted_widths.len());
        assert!(o.width_metrics.r2 > 0.5, "r2 = {}", o.width_metrics.r2);
        assert!(o.conventional_worst_ir_mv > 0.0);
        assert!(o.predicted_worst_ir_mv > 0.0);
        assert!(o.timing.speedup > 0.0);
        assert!(o.conventional_iterations >= 1);
        assert!(o.train_report.total_epochs() > 0);
    }

    #[test]
    fn predicted_ir_same_order_as_conventional() {
        let o = outcome();
        let ratio = o.predicted_worst_ir_mv / o.conventional_worst_ir_mv;
        assert!(
            (0.3..3.0).contains(&ratio),
            "predicted {} vs conventional {} mV",
            o.predicted_worst_ir_mv,
            o.conventional_worst_ir_mv
        );
    }

    #[test]
    fn test_bench_is_perturbed_copy() {
        let o = outcome();
        assert_ne!(
            o.test_bench.network().total_load_current(),
            o.sized_bench.network().total_load_current()
        );
        assert_eq!(
            o.test_bench.segments().len(),
            o.sized_bench.segments().len()
        );
    }

    #[test]
    fn sweep_trains_once_and_orders_results() {
        let prepared = crate::experiment::prepare(IbmPgPreset::Ibmpg2, 0.008, 13, 2.5).unwrap();
        let config = crate::experiment::flow_config(&prepared, true);
        let flow = PowerPlanningDl::new(config);
        let points =
            crate::experiment::perturbation_grid(&[0.1, 0.3], &[PerturbationKind::Both], 5, 1)
                .unwrap();
        let outcomes = flow.run_sweep(&prepared.bench, &points).unwrap();
        assert_eq!(outcomes.len(), points.len());
        for (res, p) in outcomes.iter().zip(&points) {
            let o = res.as_ref().unwrap();
            assert_eq!(o.golden_widths.len(), o.predicted_widths.len());
            // Every point validates against its own perturbation of the
            // shared sized design.
            let direct = p.apply(&o.sized_bench).unwrap();
            assert_eq!(
                o.test_bench.network().total_load_current(),
                direct.network().total_load_current()
            );
        }
        // The two points perturb differently, so their test designs
        // differ even though the trained model is shared.
        let a = outcomes[0].as_ref().unwrap();
        let b = outcomes[1].as_ref().unwrap();
        assert_ne!(
            a.test_bench.network().total_load_current(),
            b.test_bench.network().total_load_current()
        );
    }

    #[test]
    fn maps_buildable_from_outcome() {
        use ppdl_analysis::IrDropMap;
        let o = outcome();
        let conv = IrDropMap::from_report(o.test_bench.network(), &o.test_report, 12).unwrap();
        let pred = o.predicted_ir.to_map(&o.test_bench, 12).unwrap();
        assert_eq!(conv.resolution(), pred.resolution());
        assert!(conv.max_mv() > 0.0 && pred.max_mv() > 0.0);
    }
}

//! Load-current calibration against published worst-case IR drops.
//!
//! The IBM decks come with real current loads; our synthetic grids
//! need theirs scaled so the analysis reproduces the millivolt-scale
//! drops of Table III. Because the static grid is linear, the drop
//! vector scales exactly with a uniform load scaling — but the *solver*
//! is iterative, so a single solve leaves a residual-sized error that
//! can exceed a millivolt-scale target's tolerance. Calibration
//! therefore rescales and re-verifies until the drop reported by a
//! default-accuracy analysis lands on the target, and returns a typed
//! [`CoreError::CalibrationDidNotConverge`] when it cannot.
//!
//! Calibration runs inside the pipeline's `benchmark-source` stage
//! ([`crate::pipeline::BenchmarkSourceStage`]); its artifact stores the
//! applied load scale, so cached runs skip the rescale/verify loop.

use ppdl_analysis::{AnalysisOptions, StaticAnalysis};
use ppdl_netlist::SyntheticBenchmark;

use crate::CoreError;

/// Scales every load current of `bench` (in place) so that its
/// worst-case IR drop under static analysis equals `target_volts`.
/// Returns the total scale factor applied.
///
/// The result is *verified*: after scaling, the worst drop reported by
/// a [`StaticAnalysis::default`] solve of the calibrated network agrees
/// with the target to well within the solver's accuracy (see
/// [`calibration_tolerance`]), or a typed error is returned.
///
/// # Errors
///
/// * [`CoreError::InvalidConfig`] — non-positive target, or the grid
///   draws no current / shows no drop (nothing to scale).
/// * [`CoreError::CalibrationDidNotConverge`] — the verified drop could
///   not be driven onto the target (degenerate or numerically
///   unreachable target); the benchmark is left at the last iterate.
/// * Analysis errors propagate.
///
/// # Example
///
/// ```
/// use ppdl_core::calibrate_to_worst_ir;
/// use ppdl_analysis::StaticAnalysis;
/// use ppdl_netlist::{IbmPgPreset, SyntheticBenchmark};
///
/// let mut bench = SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg2, 0.005, 3).unwrap();
/// calibrate_to_worst_ir(&mut bench, 0.0363).unwrap(); // Table III: 36.3 mV
/// let report = StaticAnalysis::default().solve(bench.network()).unwrap();
/// let worst = report.worst_drop().unwrap().1;
/// assert!((worst - 0.0363).abs() < 1e-5);
/// ```
pub fn calibrate_to_worst_ir(
    bench: &mut SyntheticBenchmark,
    target_volts: f64,
) -> crate::Result<f64> {
    if !(target_volts.is_finite() && target_volts > 0.0) {
        return Err(CoreError::InvalidConfig {
            detail: format!("calibration target {target_volts} must be positive"),
        });
    }
    if bench.network().current_loads().is_empty() || bench.network().total_load_current() <= 0.0 {
        return Err(CoreError::InvalidConfig {
            detail: "grid draws no current; cannot calibrate".into(),
        });
    }
    // First solve at a tight tolerance to get a good starting scale,
    // then verify with the same default-accuracy analysis downstream
    // consumers use, rescaling until the verified drop hits the target.
    let tight = StaticAnalysis::new(AnalysisOptions {
        tolerance: 1e-10,
        ..AnalysisOptions::default()
    });
    let verifier = StaticAnalysis::default();
    let tolerance = calibration_tolerance(target_volts);

    let mut total_factor = 1.0;
    let mut worst = tight
        .solve(bench.network())?
        .worst_drop()
        .map_or(0.0, |(_, d)| d);
    for iteration in 0..MAX_CALIBRATION_ITERS {
        if !(worst.is_finite() && worst > 0.0) {
            return Err(CoreError::InvalidConfig {
                detail: "grid shows no IR drop; cannot calibrate (no loads?)".into(),
            });
        }
        let factor = target_volts / worst;
        if !factor.is_finite() || factor <= 0.0 {
            return Err(CoreError::CalibrationDidNotConverge {
                target_volts,
                achieved_volts: worst,
                iterations: iteration,
            });
        }
        scale_loads(bench, factor)?;
        total_factor *= factor;
        worst = verifier
            .solve(bench.network())?
            .worst_drop()
            .map_or(0.0, |(_, d)| d);
        if (worst - target_volts).abs() <= tolerance {
            return Ok(total_factor);
        }
    }
    Err(CoreError::CalibrationDidNotConverge {
        target_volts,
        achieved_volts: worst,
        iterations: MAX_CALIBRATION_ITERS,
    })
}

/// Rescale-and-verify budget; the system is linear, so two or three
/// rounds normally suffice and more indicate a degenerate grid.
const MAX_CALIBRATION_ITERS: usize = 8;

/// Absolute agreement demanded between the verified worst-case drop
/// and the calibration target, in volts.
///
/// The verifying solve runs at the default relative residual on a
/// supply-scale (~1.8 V) solution, so agreement tighter than ~1e-8 V
/// cannot be demanded; this bound is an order of magnitude stricter
/// than what the calibration property tests assert.
#[must_use]
pub fn calibration_tolerance(target_volts: f64) -> f64 {
    1e-4 * target_volts + 1e-7
}

fn scale_loads(bench: &mut SyntheticBenchmark, factor: f64) -> crate::Result<()> {
    let loads: Vec<f64> = bench
        .network()
        .current_loads()
        .iter()
        .map(|l| l.amps * factor)
        .collect();
    for (i, amps) in loads.iter().enumerate() {
        bench.network_mut().set_load_current(i, *amps)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdl_netlist::IbmPgPreset;

    #[test]
    fn hits_target_exactly() {
        let mut b = SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg1, 0.01, 1).unwrap();
        let factor = calibrate_to_worst_ir(&mut b, 0.0698).unwrap();
        assert!(factor > 0.0);
        let rep = StaticAnalysis::default().solve(b.network()).unwrap();
        assert!((rep.worst_drop().unwrap().1 - 0.0698).abs() < 1e-6);
    }

    #[test]
    fn scaling_is_uniform() {
        let mut b = SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg1, 0.01, 1).unwrap();
        let before: Vec<f64> = b.network().current_loads().iter().map(|l| l.amps).collect();
        let factor = calibrate_to_worst_ir(&mut b, 0.01).unwrap();
        for (l, old) in b.network().current_loads().iter().zip(&before) {
            assert!((l.amps - old * factor).abs() < 1e-15);
        }
    }

    #[test]
    fn idempotent_at_target() {
        let mut b = SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg1, 0.01, 2).unwrap();
        calibrate_to_worst_ir(&mut b, 0.02).unwrap();
        let second = calibrate_to_worst_ir(&mut b, 0.02).unwrap();
        assert!((second - 1.0).abs() < 1e-6);
    }

    #[test]
    fn millivolt_target_verified_within_property_bound() {
        // The shrunk ppdl-core proptest regression: `target_mv = 1.0,
        // seed = 0`. A single tight solve used to leave a residual-sized
        // error that the default-accuracy verification could exceed; the
        // rescale-and-verify loop must land inside the property bound.
        let mut b = SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg2, 0.003, 0).unwrap();
        let target = 1.0e-3;
        calibrate_to_worst_ir(&mut b, target).unwrap();
        let worst = StaticAnalysis::default()
            .solve(b.network())
            .unwrap()
            .worst_drop()
            .unwrap()
            .1;
        assert!((worst - target).abs() <= calibration_tolerance(target));
        assert!((worst - target).abs() < 1e-3 * target + 1e-6);
    }

    #[test]
    fn invalid_target_rejected() {
        let mut b = SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg1, 0.01, 1).unwrap();
        assert!(calibrate_to_worst_ir(&mut b, 0.0).is_err());
        assert!(calibrate_to_worst_ir(&mut b, -1.0).is_err());
        assert!(calibrate_to_worst_ir(&mut b, f64::NAN).is_err());
    }

    #[test]
    fn loadless_grid_rejected() {
        use ppdl_netlist::GridSpec;
        // A floorplan whose only block draws zero current.
        let spec = GridSpec {
            die_width: 100.0,
            die_height: 100.0,
            v_straps: 3,
            h_straps: 3,
            ..GridSpec::default()
        };
        let mut fp = ppdl_floorplan::Floorplan::new(100.0, 100.0).unwrap();
        fp.add_block(
            ppdl_floorplan::FunctionalBlock::new("idle", 10.0, 10.0, 50.0, 50.0, 0.0).unwrap(),
        )
        .unwrap();
        let mut b = SyntheticBenchmark::generate("z", spec, fp).unwrap();
        assert!(matches!(
            calibrate_to_worst_ir(&mut b, 0.01),
            Err(CoreError::InvalidConfig { .. })
        ));
    }
}

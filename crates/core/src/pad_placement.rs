//! Power/ground pin placement (the first box of the paper's Fig. 1
//! conventional flow).
//!
//! Before the grid is sized, the designer chooses where the supply
//! pins attach along the package ring. This module provides a greedy
//! optimizer: starting from an empty pin set, it repeatedly adds the
//! boundary site that most reduces the worst-case IR drop, re-running
//! the static analysis after each choice — exactly the expensive
//! iterate-and-analyze loop that motivates learning approaches
//! downstream.

use ppdl_analysis::{AnalysisOptions, StaticAnalysis};
use ppdl_netlist::{NodeId, SyntheticBenchmark};

use crate::CoreError;

/// Result of a pad-placement optimization.
#[derive(Debug, Clone)]
pub struct PadPlacementResult {
    /// The chosen pin nodes, in selection order.
    pub chosen: Vec<NodeId>,
    /// Worst-case IR drop after each selection (volts):
    /// `worst_after[k]` is the drop with `k + 1` pins placed.
    pub worst_after: Vec<f64>,
    /// The benchmark with exactly the chosen pins installed.
    pub bench: SyntheticBenchmark,
}

/// Greedy worst-drop-minimising pin placement over the boundary ring.
///
/// # Example
///
/// ```
/// use ppdl_core::PadPlacer;
/// use ppdl_netlist::{IbmPgPreset, SyntheticBenchmark};
///
/// let bench = SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg2, 0.004, 3).unwrap();
/// let result = PadPlacer::new(4).place(&bench).unwrap();
/// assert_eq!(result.chosen.len(), 4);
/// // More pins never hurt.
/// for w in result.worst_after.windows(2) {
///     assert!(w[1] <= w[0] + 1e-12);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct PadPlacer {
    pins: usize,
    candidate_stride: usize,
    options: AnalysisOptions,
}

impl PadPlacer {
    /// Creates a placer that will choose `pins` pin sites.
    #[must_use]
    pub fn new(pins: usize) -> Self {
        Self {
            pins,
            candidate_stride: 1,
            options: AnalysisOptions::default(),
        }
    }

    /// Considers only every `stride`-th boundary site (each round
    /// costs one analysis per candidate, so thinning the pool trades
    /// quality for time).
    #[must_use]
    pub fn with_candidate_stride(mut self, stride: usize) -> Self {
        self.candidate_stride = stride.max(1);
        self
    }

    /// Overrides the analysis options used for the inner solves.
    #[must_use]
    pub fn with_analysis(mut self, options: AnalysisOptions) -> Self {
        self.options = options;
        self
    }

    /// The candidate pin sites for a benchmark: the upper-layer nodes
    /// on the die boundary (where wirebond pads can land), walked in
    /// coordinate order.
    #[must_use]
    pub fn candidate_sites(bench: &SyntheticBenchmark) -> Vec<NodeId> {
        let net = bench.network();
        let upper = bench.spec().upper_layer;
        let nodes: Vec<(usize, i64, i64)> = net
            .node_names()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.layer() == Some(upper))
            .filter_map(|(i, n)| n.coordinates().map(|(x, y)| (i, x, y)))
            .collect();
        let Some(&(_, x0, y0)) = nodes.first() else {
            return Vec::new();
        };
        let (mut min_x, mut max_x, mut min_y, mut max_y) = (x0, x0, y0, y0);
        for &(_, x, y) in &nodes {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        let mut ring: Vec<(i64, i64, usize)> = nodes
            .into_iter()
            .filter(|&(_, x, y)| x == min_x || x == max_x || y == min_y || y == max_y)
            .map(|(i, x, y)| (x, y, i))
            .collect();
        ring.sort();
        ring.into_iter().map(|(_, _, i)| NodeId(i)).collect()
    }

    /// Runs the greedy placement. Existing pins of the input benchmark
    /// are discarded; the result contains exactly the chosen set, all
    /// at the benchmark's supply voltage.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the (strided) candidate
    /// pool is smaller than the requested pin count or zero pins are
    /// requested; analysis errors propagate.
    pub fn place(&self, bench: &SyntheticBenchmark) -> crate::Result<PadPlacementResult> {
        if self.pins == 0 {
            return Err(CoreError::InvalidConfig {
                detail: "at least one pin must be placed".into(),
            });
        }
        let vdd = bench.spec().vdd;
        let candidates: Vec<NodeId> = Self::candidate_sites(bench)
            .into_iter()
            .step_by(self.candidate_stride)
            .collect();
        if candidates.len() < self.pins {
            return Err(CoreError::InvalidConfig {
                detail: format!(
                    "{} candidate sites for {} pins",
                    candidates.len(),
                    self.pins
                ),
            });
        }

        // Sources pin nodes structurally, so each trial rebuilds the
        // element lists with only the pins under evaluation (resistors
        // and loads are copied verbatim, preserving node identity).
        let analyzer = StaticAnalysis::new(self.options.clone());
        let mut chosen: Vec<usize> = Vec::new();
        let mut worst_after = Vec::new();
        for _round in 0..self.pins {
            let mut best: Option<(usize, f64)> = None;
            for ci in 0..candidates.len() {
                if chosen.contains(&ci) {
                    continue;
                }
                let trial = rebuild_with_sources(bench, &candidates, &chosen, Some(ci), vdd);
                let report = match analyzer.solve(&trial) {
                    Ok(r) => r,
                    // A small pin set can leave floating regions; such
                    // a candidate set is simply invalid this round.
                    Err(_) => continue,
                };
                let worst = report.worst_drop().map_or(f64::INFINITY, |(_, d)| d);
                if best.map_or(true, |(_, b)| worst < b) {
                    best = Some((ci, worst));
                }
            }
            let (ci, worst) = best.ok_or_else(|| CoreError::InvalidConfig {
                detail: "no candidate pin yields a solvable grid".into(),
            })?;
            chosen.push(ci);
            worst_after.push(worst);
        }

        let mut placed = bench.clone();
        *placed.network_mut() = rebuild_with_sources(bench, &candidates, &chosen, None, vdd);
        Ok(PadPlacementResult {
            chosen: chosen.iter().map(|&ci| candidates[ci]).collect(),
            worst_after,
            bench: placed,
        })
    }
}

/// Clones the benchmark's network keeping resistors and loads but
/// installing only the sources in `chosen` (plus optionally `extra`).
fn rebuild_with_sources(
    bench: &SyntheticBenchmark,
    candidates: &[NodeId],
    chosen: &[usize],
    extra: Option<usize>,
    vdd: f64,
) -> ppdl_netlist::PowerGridNetwork {
    let src = bench.network();
    let mut net = ppdl_netlist::PowerGridNetwork::new();
    for name in src.node_names() {
        net.intern(name.clone());
    }
    for r in src.resistors() {
        net.add_resistor(r.name.clone(), r.a, r.b, r.ohms)
            // ppdl-lint: allow(robustness/unwrap-in-lib) -- element copied verbatim from an already-validated network; revalidation cannot fail
            .expect("copied resistor is valid");
    }
    for l in src.current_loads() {
        net.add_current_load(l.name.clone(), l.node, l.amps)
            // ppdl-lint: allow(robustness/unwrap-in-lib) -- element copied verbatim from an already-validated network; revalidation cannot fail
            .expect("copied load is valid");
    }
    for (k, &ci) in chosen.iter().chain(extra.iter()).enumerate() {
        net.add_voltage_source(format!("Vpad{k}"), candidates[ci], vdd)
            // ppdl-lint: allow(robustness/unwrap-in-lib) -- pad candidates are validated node ids from the same network; insertion cannot fail
            .expect("copied source is valid");
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdl_netlist::IbmPgPreset;

    fn bench() -> SyntheticBenchmark {
        SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg2, 0.004, 9).unwrap()
    }

    #[test]
    fn candidates_are_boundary_upper_nodes() {
        let b = bench();
        let sites = PadPlacer::candidate_sites(&b);
        assert!(!sites.is_empty());
        let upper = b.spec().upper_layer;
        for id in &sites {
            assert_eq!(b.network().node_name(*id).layer(), Some(upper));
        }
        // A square grid of s straps has 4s - 4 boundary crossings.
        let s = b
            .straps()
            .iter()
            .filter(|st| st.orientation == ppdl_netlist::Orientation::Vertical)
            .count();
        assert_eq!(sites.len(), 4 * s - 4);
    }

    #[test]
    fn places_requested_pin_count() {
        let b = bench();
        let r = PadPlacer::new(3).place(&b).unwrap();
        assert_eq!(r.chosen.len(), 3);
        assert_eq!(r.worst_after.len(), 3);
        assert_eq!(r.bench.network().voltage_sources().len(), 3);
    }

    #[test]
    fn worst_drop_monotonically_improves() {
        let b = bench();
        let r = PadPlacer::new(4).place(&b).unwrap();
        for w in r.worst_after.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "{:?}", r.worst_after);
        }
    }

    #[test]
    fn chosen_pins_are_distinct_candidates() {
        let b = bench();
        let r = PadPlacer::new(4).place(&b).unwrap();
        let mut nodes = r.chosen.clone();
        nodes.sort();
        nodes.dedup();
        assert_eq!(nodes.len(), 4);
        let sites = PadPlacer::candidate_sites(&b);
        assert!(r.chosen.iter().all(|n| sites.contains(n)));
    }

    /// Regression guard for greedy re-selection: when the requested pin
    /// count equals the entire (strided) candidate pool, the only way
    /// to satisfy it is to pick every candidate exactly once — any
    /// round that re-selected an already-chosen index would either
    /// duplicate a node or run out of sites.
    #[test]
    fn full_pool_request_exhausts_every_candidate_exactly_once() {
        let b = bench();
        let stride = 7;
        let pool: Vec<NodeId> = PadPlacer::candidate_sites(&b)
            .into_iter()
            .step_by(stride)
            .collect();
        assert!(pool.len() >= 3, "strided pool too small to exercise");
        let r = PadPlacer::new(pool.len())
            .with_candidate_stride(stride)
            .place(&b)
            .unwrap();
        assert_eq!(r.chosen.len(), pool.len());
        let mut distinct = r.chosen.clone();
        distinct.sort();
        distinct.dedup();
        assert_eq!(distinct.len(), pool.len(), "a pin node was selected twice");
        let mut expected = pool;
        expected.sort();
        assert_eq!(distinct, expected, "selection must cover the whole pool");
        assert_eq!(
            r.bench.network().voltage_sources().len(),
            r.chosen.len(),
            "one source per chosen pin"
        );
    }

    #[test]
    fn greedy_beats_arbitrary_prefix() {
        // The greedy k-pin placement should beat (or match) simply
        // taking the first k boundary sites in coordinate order.
        let b = bench();
        let k = 3;
        let greedy = PadPlacer::new(k).place(&b).unwrap();
        let candidates = PadPlacer::candidate_sites(&b);
        let prefix_net = rebuild_with_sources(&b, &candidates, &[0, 1, 2], None, b.spec().vdd);
        let prefix_worst = StaticAnalysis::default()
            .solve(&prefix_net)
            .map(|r| r.worst_drop().map_or(f64::INFINITY, |(_, d)| d))
            .unwrap_or(f64::INFINITY);
        assert!(greedy.worst_after[k - 1] <= prefix_worst + 1e-12);
    }

    #[test]
    fn invalid_requests_rejected() {
        let b = bench();
        assert!(PadPlacer::new(0).place(&b).is_err());
        assert!(PadPlacer::new(10_000).place(&b).is_err());
    }

    #[test]
    fn candidate_stride_thins_the_pool() {
        let b = bench();
        let pool = PadPlacer::candidate_sites(&b).len();
        // With stride 2 only ~half the pool remains, so a full-pool
        // request must fail.
        assert!(PadPlacer::new(pool)
            .with_candidate_stride(2)
            .place(&b)
            .is_err());
    }
}

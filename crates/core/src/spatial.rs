//! Spatial width surrogates: rasterised feature maps and the
//! convolutional predictors trained on them.
//!
//! The MLP backend sees one `(X, Y, Id)` row per segment; the spatial
//! backends instead see the whole die at once, rasterised onto an
//! `S × S` grid as two channels — per-cell switching-current density
//! and per-cell wiring resistance — and regress a two-channel width map
//! (vertical widths in channel 0, horizontal in channel 1). Segment
//! widths are then read back from the map cell covering the segment's
//! midpoint, so the spatial predictors plug into exactly the same
//! per-segment / per-strap prediction API as [`WidthPredictor`].
//!
//! [`WidthPredictor`]: crate::WidthPredictor

use ppdl_netlist::{Orientation, SyntheticBenchmark};
use ppdl_nn::{
    metrics, Activation, Dataset, Matrix, Network, NetworkBuilder, StandardScaler, TensorShape,
    TrainReport, Trainer,
};

use crate::{CoreError, FeatureExtractor, FeatureSet, PredictorConfig, WidthMetrics};

/// Number of raster feature channels (current density, resistance).
pub const FEATURE_CHANNELS: usize = 2;
/// Number of raster target channels (vertical widths, horizontal
/// widths).
pub const TARGET_CHANNELS: usize = 2;

/// Which spatial architecture a [`SpatialPredictor`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpatialArch {
    /// A plain convolution stack at full map resolution.
    Cnn,
    /// A one-level encoder-decoder: convolve, pool ×2, convolve,
    /// upsample ×2, convolve.
    EncoderDecoder,
}

impl SpatialArch {
    /// Stable persistence tag.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            SpatialArch::Cnn => "cnn",
            SpatialArch::EncoderDecoder => "encdec",
        }
    }

    /// Parses a persistence tag.
    #[must_use]
    pub fn parse(tag: &str) -> Option<Self> {
        match tag {
            "cnn" => Some(SpatialArch::Cnn),
            "encdec" => Some(SpatialArch::EncoderDecoder),
            _ => None,
        }
    }
}

/// The rasterised view of one benchmark: feature and target maps as
/// single channel-major rows (`idx = c·S² + y·S + x`), ready for the
/// layer-graph networks.
#[derive(Debug, Clone)]
pub struct RasterMaps {
    /// Raster side length `S`.
    pub map_size: usize,
    /// Feature row, [`FEATURE_CHANNELS`]`·S²` wide: channel 0 is the
    /// switching-current density sampled at each cell centre, channel 1
    /// the summed `sheet_resistance · length` of the segments whose
    /// midpoint falls in the cell.
    pub features: Vec<f64>,
}

impl RasterMaps {
    /// Rasterises `bench` onto an `S × S` grid.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a map size below 2.
    pub fn extract(bench: &SyntheticBenchmark, map_size: usize) -> crate::Result<Self> {
        if map_size < 2 {
            return Err(CoreError::InvalidConfig {
                detail: format!("raster map size {map_size} must be at least 2"),
            });
        }
        let s = map_size;
        let spec = bench.spec();
        let fp = bench.floorplan();
        let mut features = vec![0.0; FEATURE_CHANNELS * s * s];
        // Channel 0: switching-current density at each cell centre —
        // the spatial analogue of the paper's per-segment Id feature.
        for cy in 0..s {
            for cx in 0..s {
                let x = (cx as f64 + 0.5) / s as f64 * spec.die_width;
                let y = (cy as f64 + 0.5) / s as f64 * spec.die_height;
                features[cy * s + cx] = fp
                    .block_at(x, y)
                    .map_or(0.0, ppdl_floorplan::FunctionalBlock::switching_current);
            }
        }
        // Channel 1: wiring resistance. Deliberately width-independent
        // (sheet resistance × length, not the resolved resistor value):
        // the golden widths are the training target, so the input maps
        // must not leak them.
        for seg in bench.segments() {
            let orientation = bench.straps()[seg.strap].orientation;
            let cell = cell_index(spec.die_width, spec.die_height, s, seg.x, seg.y);
            features[s * s + cell] += spec.sheet_resistance(orientation) * seg.length;
        }
        Ok(Self {
            map_size: s,
            features,
        })
    }

    /// The target row for `bench`'s golden widths,
    /// [`TARGET_CHANNELS`]`·S²` wide: per-cell mean golden width of the
    /// vertical (channel 0) and horizontal (channel 1) segments whose
    /// midpoints fall in the cell; cells with no such segment take the
    /// orientation's global mean so the loss stays defined everywhere.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `golden_widths` does
    /// not have one entry per strap or a direction has no segments.
    pub fn targets(
        &self,
        bench: &SyntheticBenchmark,
        golden_widths: &[f64],
    ) -> crate::Result<Vec<f64>> {
        if golden_widths.len() != bench.straps().len() {
            return Err(CoreError::InvalidConfig {
                detail: format!(
                    "{} golden widths for {} straps",
                    golden_widths.len(),
                    bench.straps().len()
                ),
            });
        }
        let s = self.map_size;
        let spec = bench.spec();
        let mut sums = vec![0.0; TARGET_CHANNELS * s * s];
        let mut counts = vec![0usize; TARGET_CHANNELS * s * s];
        let mut dir_sum = [0.0; TARGET_CHANNELS];
        let mut dir_count = [0usize; TARGET_CHANNELS];
        for seg in bench.segments() {
            let c = orientation_channel(bench.straps()[seg.strap].orientation);
            let cell = cell_index(spec.die_width, spec.die_height, s, seg.x, seg.y);
            let w = golden_widths[seg.strap];
            sums[c * s * s + cell] += w;
            counts[c * s * s + cell] += 1;
            dir_sum[c] += w;
            dir_count[c] += 1;
        }
        for (c, n) in dir_count.iter().enumerate() {
            if *n == 0 {
                return Err(CoreError::InvalidConfig {
                    detail: format!("benchmark has no segments for target channel {c}"),
                });
            }
        }
        Ok(sums
            .iter()
            .zip(&counts)
            .enumerate()
            .map(|(i, (sum, n))| {
                let c = i / (s * s);
                if *n > 0 {
                    sum / *n as f64
                } else {
                    dir_sum[c] / dir_count[c] as f64
                }
            })
            .collect())
    }
}

/// Flat cell index of the raster cell containing `(x, y)`.
fn cell_index(die_w: f64, die_h: f64, s: usize, x: f64, y: f64) -> usize {
    let clamp = |v: f64, extent: f64| -> usize {
        let cell = (v / extent * s as f64).floor();
        if cell.is_finite() && cell > 0.0 {
            (cell as usize).min(s - 1)
        } else {
            0
        }
    };
    clamp(y, die_h) * s + clamp(x, die_w)
}

/// Raster channel a strap orientation maps to.
fn orientation_channel(orientation: Orientation) -> usize {
    match orientation {
        Orientation::Vertical => 0,
        Orientation::Horizontal => 1,
    }
}

/// Per-channel standardisation of a channel-major row (a map has one
/// sample, so the statistics pool the `S²` cells of each channel —
/// a per-column [`StandardScaler`] would see a single value per
/// column and collapse).
#[derive(Debug, Clone, PartialEq)]
struct ChannelScale {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl ChannelScale {
    fn fit(row: &[f64], channels: usize) -> Self {
        let per = row.len() / channels.max(1);
        let mut means = Vec::with_capacity(channels);
        let mut stds = Vec::with_capacity(channels);
        for c in 0..channels {
            let slice = &row[c * per..(c + 1) * per];
            let mean = slice.iter().sum::<f64>() / per.max(1) as f64;
            let var =
                slice.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / per.max(1) as f64;
            let std = var.sqrt();
            means.push(mean);
            stds.push(if std > 1e-12 { std } else { 1.0 });
        }
        Self { means, stds }
    }

    fn transform(&self, row: &[f64]) -> Vec<f64> {
        let per = row.len() / self.means.len().max(1);
        row.iter()
            .enumerate()
            .map(|(i, v)| {
                let c = i / per;
                (v - self.means[c]) / self.stds[c]
            })
            .collect()
    }

    fn inverse_transform(&self, row: &[f64]) -> Vec<f64> {
        let per = row.len() / self.means.len().max(1);
        row.iter()
            .enumerate()
            .map(|(i, v)| {
                let c = i / per;
                v * self.stds[c] + self.means[c]
            })
            .collect()
    }
}

/// A trained spatial surrogate: a convolutional [`Network`] regressing
/// the two-channel width map from the two-channel raster features, plus
/// the per-channel standardisation it was trained under.
///
/// Mirrors the [`WidthPredictor`](crate::WidthPredictor) prediction
/// API (per-segment, per-strap sampled, evaluate) so the two slot into
/// the same flow interchangeably.
#[derive(Debug, Clone)]
pub struct SpatialPredictor {
    model: Network,
    arch: SpatialArch,
    map_size: usize,
    feature_scale: ChannelScale,
    target_scale: ChannelScale,
    min_width: f64,
}

impl SpatialPredictor {
    /// Trains a spatial predictor on a benchmark and its golden widths.
    ///
    /// The training set is the benchmark's own raster pair — one
    /// sample — so training amounts to fitting the width map given the
    /// density/resistance maps; generalisation is what the
    /// cross-preset transfer matrix measures.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a degenerate map size
    /// (below 2, or odd for the encoder-decoder) or zero convolution
    /// channels; propagates training errors.
    pub fn train(
        bench: &SyntheticBenchmark,
        golden_widths: &[f64],
        arch: SpatialArch,
        config: &PredictorConfig,
    ) -> crate::Result<(Self, TrainReport)> {
        let s = config.map_size;
        let f = config.conv_channels;
        if f == 0 {
            return Err(CoreError::InvalidConfig {
                detail: "spatial predictor needs at least one convolution channel".into(),
            });
        }
        if arch == SpatialArch::EncoderDecoder && s % 2 != 0 {
            return Err(CoreError::InvalidConfig {
                detail: format!("encoder-decoder needs an even map size, got {s}"),
            });
        }
        let raster = RasterMaps::extract(bench, s)?;
        let targets = raster.targets(bench, golden_widths)?;
        let feature_scale = ChannelScale::fit(&raster.features, FEATURE_CHANNELS);
        let target_scale = ChannelScale::fit(&targets, TARGET_CHANNELS);

        let input = TensorShape::Chw {
            c: FEATURE_CHANNELS,
            h: s,
            w: s,
        };
        let builder = NetworkBuilder::new(input).seed(config.seed);
        let builder = match arch {
            SpatialArch::Cnn => builder
                .conv2d(f, 3, Activation::Relu)
                .conv2d(f, 3, Activation::Relu)
                .conv2d(TARGET_CHANNELS, 3, Activation::Identity),
            SpatialArch::EncoderDecoder => builder
                .conv2d(f, 3, Activation::Relu)
                .max_pool(2)
                .conv2d(2 * f, 3, Activation::Relu)
                .upsample(2)
                .conv2d(TARGET_CHANNELS, 3, Activation::Identity),
        };
        let mut model = builder.build()?;

        let x = Matrix::from_vec(
            1,
            raster.features.len(),
            feature_scale.transform(&raster.features),
        )?;
        let y = Matrix::from_vec(1, targets.len(), target_scale.transform(&targets))?;
        let data = Dataset::new(x, y)?;
        let report = Trainer::new(config.train.clone()).fit(&mut model, &data)?;
        Ok((
            Self {
                model,
                arch,
                map_size: s,
                feature_scale,
                target_scale,
                min_width: config.min_width,
            },
            report,
        ))
    }

    /// The architecture this predictor was built with.
    #[must_use]
    pub fn arch(&self) -> SpatialArch {
        self.arch
    }

    /// The raster side length `S`.
    #[must_use]
    pub fn map_size(&self) -> usize {
        self.map_size
    }

    /// The configured minimum width clamp (µm).
    #[must_use]
    pub fn min_width(&self) -> f64 {
        self.min_width
    }

    /// The underlying layer-graph network.
    #[must_use]
    pub fn model(&self) -> &Network {
        &self.model
    }

    /// Checks the model against the raster geometry: the network must
    /// map a [`FEATURE_CHANNELS`]`×S×S` input to a
    /// [`TARGET_CHANNELS`]`·S²` output, and the channel scalers must
    /// cover exactly the channel counts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BundleMismatch`] naming the offending
    /// dimensions.
    pub fn validate_shapes(&self) -> crate::Result<()> {
        let s = self.map_size;
        let want_in = FEATURE_CHANNELS * s * s;
        let got_in = self.model.input_shape().len();
        if got_in != want_in {
            return Err(CoreError::BundleMismatch {
                detail: format!(
                    "spatial model expects {got_in} inputs but a {FEATURE_CHANNELS}x{s}x{s} \
                     raster is {want_in} wide"
                ),
            });
        }
        let want_out = TARGET_CHANNELS * s * s;
        let got_out = self.model.output_shape().len();
        if got_out != want_out {
            return Err(CoreError::BundleMismatch {
                detail: format!(
                    "spatial model emits {got_out} outputs but a {TARGET_CHANNELS}x{s}x{s} \
                     width map is {want_out} wide"
                ),
            });
        }
        if self.feature_scale.means.len() != FEATURE_CHANNELS
            || self.target_scale.means.len() != TARGET_CHANNELS
        {
            return Err(CoreError::BundleMismatch {
                detail: format!(
                    "spatial channel scalers cover {}/{} channels; need \
                     {FEATURE_CHANNELS}/{TARGET_CHANNELS}",
                    self.feature_scale.means.len(),
                    self.target_scale.means.len()
                ),
            });
        }
        Ok(())
    }

    /// Predicts the unscaled two-channel width map for `bench`.
    fn predict_map(&self, bench: &SyntheticBenchmark) -> crate::Result<Vec<f64>> {
        let raster = RasterMaps::extract(bench, self.map_size)?;
        let scaled = self.feature_scale.transform(&raster.features);
        let x = Matrix::from_vec(1, scaled.len(), scaled)?;
        let out = self.model.predict(&x)?;
        Ok(self.target_scale.inverse_transform(out.row(0)))
    }

    /// Predicts a width for every segment of `bench`, in µm, clamped to
    /// the configured minimum: each segment reads the map cell covering
    /// its midpoint, in its strap's orientation channel.
    ///
    /// # Errors
    ///
    /// Propagates raster and network shape errors.
    pub fn predict_segments(&self, bench: &SyntheticBenchmark) -> crate::Result<Vec<f64>> {
        let map = self.predict_map(bench)?;
        let s = self.map_size;
        let spec = bench.spec();
        Ok(bench
            .segments()
            .iter()
            .map(|seg| {
                let c = orientation_channel(bench.straps()[seg.strap].orientation);
                let cell = cell_index(spec.die_width, spec.die_height, s, seg.x, seg.y);
                map[c * s * s + cell].max(self.min_width)
            })
            .collect())
    }

    /// Predicts per-strap widths: the mean of the strap's segment
    /// predictions (a strap has one physical width).
    ///
    /// # Errors
    ///
    /// Propagates [`predict_segments`](Self::predict_segments) errors.
    pub fn predict_strap_widths(&self, bench: &SyntheticBenchmark) -> crate::Result<Vec<f64>> {
        self.predict_strap_widths_sampled(bench, 1)
    }

    /// Per-strap widths from every `stride`-th segment of each strap —
    /// the same subsampling contract as
    /// [`WidthPredictor::predict_strap_widths_sampled`]; straps with no
    /// sampled segment keep their current width.
    ///
    /// [`WidthPredictor::predict_strap_widths_sampled`]:
    /// crate::WidthPredictor::predict_strap_widths_sampled
    ///
    /// # Errors
    ///
    /// Propagates prediction errors; `stride` of `0` is treated as 1.
    pub fn predict_strap_widths_sampled(
        &self,
        bench: &SyntheticBenchmark,
        stride: usize,
    ) -> crate::Result<Vec<f64>> {
        let stride = stride.max(1);
        let map = self.predict_map(bench)?;
        let s = self.map_size;
        let spec = bench.spec();
        let n_straps = bench.straps().len();
        let mut sums = vec![0.0; n_straps];
        let mut counts = vec![0usize; n_straps];
        let mut seen = vec![0usize; n_straps];
        for seg in bench.segments() {
            let si = seg.strap;
            if seen[si] % stride == 0 {
                let c = orientation_channel(bench.straps()[si].orientation);
                let cell = cell_index(spec.die_width, spec.die_height, s, seg.x, seg.y);
                sums[si] += map[c * s * s + cell].max(self.min_width);
                counts[si] += 1;
            }
            seen[si] += 1;
        }
        Ok(sums
            .iter()
            .zip(&counts)
            .zip(bench.straps())
            .map(|((sum, n), strap)| {
                if *n > 0 {
                    (sum / *n as f64).max(self.min_width)
                } else {
                    strap.width
                }
            })
            .collect())
    }

    /// Evaluates the predictor against golden widths at segment
    /// granularity — the same [`WidthMetrics`] contract as
    /// [`WidthPredictor::evaluate`](crate::WidthPredictor::evaluate).
    ///
    /// # Errors
    ///
    /// Propagates prediction and metric errors.
    pub fn evaluate(
        &self,
        bench: &SyntheticBenchmark,
        golden_widths: &[f64],
    ) -> crate::Result<WidthMetrics> {
        let predicted = self.predict_segments(bench)?;
        let golden =
            FeatureExtractor::new(FeatureSet::Combined).raw_targets(bench, golden_widths)?;
        let pred = Matrix::from_vec(predicted.len(), 1, predicted)?;
        let r2 = metrics::r2_score(&pred, &golden)?;
        let mse_um2 = metrics::mse(&pred, &golden)?;
        let correlation = metrics::pearson(&pred, &golden)?;
        let golden_scaler = StandardScaler::fit(&golden)?;
        let mse_scaled = metrics::mse(
            &golden_scaler.transform(&pred)?,
            &golden_scaler.transform(&golden)?,
        )?;
        Ok(WidthMetrics {
            r2,
            mse_scaled,
            mse_um2,
            correlation,
        })
    }

    /// Serialises the predictor in the `ppdl-spatial v1` text format
    /// (header fields, channel scales, then the embedded
    /// `ppdl-net v1` network).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from("ppdl-spatial v1\n");
        out.push_str(&format!("arch {}\n", self.arch.tag()));
        out.push_str(&format!("map_size {}\n", self.map_size));
        out.push_str(&format!("min_width {}\n", self.min_width));
        for (tag, scale) in [
            ("feature_scale", &self.feature_scale),
            ("target_scale", &self.target_scale),
        ] {
            let mut line = String::from(tag);
            for (m, sd) in scale.means.iter().zip(&scale.stds) {
                line.push_str(&format!(" {m} {sd}"));
            }
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str(&self.model.to_text());
        out.push_str("end-spatial\n");
        out
    }

    /// Parses the `ppdl-spatial v1` text format and validates the
    /// decoded shapes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BundleMismatch`] for a malformed or
    /// truncated text, and propagates network decode errors.
    pub fn from_text(text: &str) -> crate::Result<Self> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default().trim();
        if header != "ppdl-spatial v1" {
            return Err(CoreError::BundleMismatch {
                detail: format!("expected header 'ppdl-spatial v1', found '{header}'"),
            });
        }
        let arch_tag = tagged_value(&mut lines, "arch")?;
        let arch = SpatialArch::parse(&arch_tag).ok_or_else(|| CoreError::BundleMismatch {
            detail: format!("unknown spatial architecture '{arch_tag}'"),
        })?;
        let map_size: usize = parse_num(&tagged_value(&mut lines, "map_size")?, "map_size")?;
        let min_width: f64 = parse_num(&tagged_value(&mut lines, "min_width")?, "min_width")?;
        let feature_scale = parse_scale(
            &tagged_rest(&mut lines, "feature_scale")?,
            FEATURE_CHANNELS,
            "feature_scale",
        )?;
        let target_scale = parse_scale(
            &tagged_rest(&mut lines, "target_scale")?,
            TARGET_CHANNELS,
            "target_scale",
        )?;
        let mut body = String::new();
        let mut terminated = false;
        for line in lines.by_ref() {
            if line.trim() == "end-spatial" {
                terminated = true;
                break;
            }
            body.push_str(line);
            body.push('\n');
        }
        if !terminated {
            return Err(CoreError::BundleMismatch {
                detail: "spatial text missing end-spatial terminator".into(),
            });
        }
        let model = Network::from_text(&body)?;
        let decoded = Self {
            model,
            arch,
            map_size,
            feature_scale,
            target_scale,
            min_width,
        };
        decoded.validate_shapes()?;
        Ok(decoded)
    }
}

/// Reads a `tag value` line, returning the single value.
fn tagged_value(lines: &mut std::str::Lines<'_>, tag: &str) -> crate::Result<String> {
    let rest = tagged_rest(lines, tag)?;
    let mut fields = rest.split_whitespace();
    let value = fields.next().unwrap_or_default().to_string();
    if value.is_empty() || fields.next().is_some() {
        return Err(CoreError::BundleMismatch {
            detail: format!("'{tag}' line needs exactly one value"),
        });
    }
    Ok(value)
}

/// Reads a `tag ...` line, returning everything after the tag.
fn tagged_rest(lines: &mut std::str::Lines<'_>, tag: &str) -> crate::Result<String> {
    let line = lines.next().ok_or_else(|| CoreError::BundleMismatch {
        detail: format!("spatial text ends before '{tag}' line"),
    })?;
    line.strip_prefix(tag)
        .map(|rest| rest.trim().to_string())
        .ok_or_else(|| CoreError::BundleMismatch {
            detail: format!("expected '{tag}' line, found '{}'", line.trim()),
        })
}

/// Parses a number, mapping failures to a bundle mismatch naming the
/// field.
fn parse_num<T: std::str::FromStr>(token: &str, field: &str) -> crate::Result<T> {
    token.parse().map_err(|_| CoreError::BundleMismatch {
        detail: format!("invalid {field} value '{token}'"),
    })
}

/// Parses `mean std` pairs for `channels` channels.
fn parse_scale(rest: &str, channels: usize, field: &str) -> crate::Result<ChannelScale> {
    let values: Vec<f64> = rest
        .split_whitespace()
        .map(|t| parse_num(t, field))
        .collect::<crate::Result<_>>()?;
    if values.len() != 2 * channels {
        return Err(CoreError::BundleMismatch {
            detail: format!(
                "'{field}' line has {} values; {channels} channels need {}",
                values.len(),
                2 * channels
            ),
        });
    }
    let means = values.iter().step_by(2).copied().collect();
    let stds = values.iter().skip(1).step_by(2).copied().collect();
    Ok(ChannelScale { means, stds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConventionalFlow;
    use ppdl_netlist::IbmPgPreset;

    fn sized() -> (SyntheticBenchmark, Vec<f64>) {
        let prepared = crate::experiment::prepare(IbmPgPreset::Ibmpg2, 0.008, 11, 2.5).unwrap();
        let (sized, res) = ConventionalFlow::new(crate::ConventionalConfig {
            ir_margin_fraction: prepared.margin_fraction,
            ..crate::ConventionalConfig::default()
        })
        .run(&prepared.bench)
        .unwrap();
        (sized, res.widths)
    }

    #[test]
    fn raster_has_expected_geometry() {
        let (bench, golden) = sized();
        let raster = RasterMaps::extract(&bench, 8).unwrap();
        assert_eq!(raster.features.len(), FEATURE_CHANNELS * 64);
        // The resistance channel accounts for every segment exactly
        // once.
        let spec = bench.spec();
        let total: f64 = bench
            .segments()
            .iter()
            .map(|seg| spec.sheet_resistance(bench.straps()[seg.strap].orientation) * seg.length)
            .sum();
        let channel: f64 = raster.features[64..].iter().sum();
        assert!((total - channel).abs() < 1e-9 * total.max(1.0));
        let targets = raster.targets(&bench, &golden).unwrap();
        assert_eq!(targets.len(), TARGET_CHANNELS * 64);
        assert!(targets.iter().all(|w| *w > 0.0));
    }

    #[test]
    fn raster_rejects_degenerate_inputs() {
        let (bench, golden) = sized();
        assert!(matches!(
            RasterMaps::extract(&bench, 1),
            Err(CoreError::InvalidConfig { .. })
        ));
        let raster = RasterMaps::extract(&bench, 4).unwrap();
        assert!(matches!(
            raster.targets(&bench, &golden[..2]),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn cnn_trains_and_predicts_physical_widths() {
        let (bench, golden) = sized();
        let config = PredictorConfig::fast();
        let (p, report) =
            SpatialPredictor::train(&bench, &golden, SpatialArch::Cnn, &config).unwrap();
        assert!(report.epochs_run > 0);
        let first = report.train_losses.first().copied().unwrap();
        let last = report.train_losses.last().copied().unwrap();
        assert!(last < first, "loss did not drop: {first} -> {last}");
        let per_seg = p.predict_segments(&bench).unwrap();
        assert_eq!(per_seg.len(), bench.segments().len());
        assert!(per_seg.iter().all(|w| *w >= config.min_width));
        let m = p.evaluate(&bench, &golden).unwrap();
        assert!(m.r2.is_finite());
        assert!(
            m.r2 > 0.0,
            "on-preset raster fit should be positive: {}",
            m.r2
        );
    }

    #[test]
    fn encoder_decoder_round_trips_geometry() {
        let (bench, golden) = sized();
        let config = PredictorConfig::fast();
        let (p, _) =
            SpatialPredictor::train(&bench, &golden, SpatialArch::EncoderDecoder, &config).unwrap();
        assert_eq!(p.arch(), SpatialArch::EncoderDecoder);
        let w = p.predict_strap_widths(&bench).unwrap();
        assert_eq!(w.len(), bench.straps().len());
        assert!(w.iter().all(|v| *v >= config.min_width));
    }

    #[test]
    fn encoder_decoder_needs_even_map() {
        let (bench, golden) = sized();
        let config = PredictorConfig {
            map_size: 7,
            ..PredictorConfig::fast()
        };
        assert!(matches!(
            SpatialPredictor::train(&bench, &golden, SpatialArch::EncoderDecoder, &config),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn sampled_strap_widths_match_full_at_stride_one() {
        let (bench, golden) = sized();
        let (p, _) =
            SpatialPredictor::train(&bench, &golden, SpatialArch::Cnn, &PredictorConfig::fast())
                .unwrap();
        let full = p.predict_strap_widths(&bench).unwrap();
        let sampled = p.predict_strap_widths_sampled(&bench, 1).unwrap();
        assert_eq!(full, sampled);
        let strided = p.predict_strap_widths_sampled(&bench, 4).unwrap();
        assert_eq!(strided.len(), full.len());
        assert!(strided.iter().all(|w| *w >= p.min_width()));
    }

    #[test]
    fn persistence_round_trips_bitwise() {
        let (bench, golden) = sized();
        let (p, _) =
            SpatialPredictor::train(&bench, &golden, SpatialArch::Cnn, &PredictorConfig::fast())
                .unwrap();
        let text = p.to_text();
        let back = SpatialPredictor::from_text(&text).unwrap();
        assert_eq!(back.to_text(), text);
        assert_eq!(
            back.predict_segments(&bench).unwrap(),
            p.predict_segments(&bench).unwrap()
        );
    }

    #[test]
    fn malformed_texts_rejected() {
        let (bench, golden) = sized();
        let (p, _) =
            SpatialPredictor::train(&bench, &golden, SpatialArch::Cnn, &PredictorConfig::fast())
                .unwrap();
        let text = p.to_text();
        for broken in [
            text.replace("ppdl-spatial v1", "ppdl-spatial v9"),
            text.replace("arch cnn", "arch transformer"),
            text.replace("end-spatial\n", ""),
        ] {
            assert!(matches!(
                SpatialPredictor::from_text(&broken),
                Err(CoreError::BundleMismatch { .. }) | Err(CoreError::Nn(_))
            ));
        }
    }
}

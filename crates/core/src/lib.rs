//! PowerPlanningDL: reliability-aware power grid design using deep
//! learning (Dey, Nandi, Trivedi — DATE 2020).
//!
//! This crate assembles the paper's framework from the substrate
//! crates:
//!
//! * [`FeatureExtractor`] — §IV-B: builds the `(X, Y, Id)` training
//!   quadruples from a benchmark's segments and floorplan, with
//!   single-feature variants for the Table I / Fig. 4(b) ablation.
//! * [`ConventionalFlow`] — Fig. 1: the iterative baseline that sizes
//!   strap widths by repeated IR-drop/EM analysis until margins hold;
//!   its output widths are the *golden* labels the model learns.
//! * [`WidthPredictor`] — Problem 1 / Algorithm 1: the deep-learning
//!   width regressor (MLP + Adam, 10 hidden layers by default).
//! * [`SpatialPredictor`] / [`BackendModel`] — the spatial (CNN and
//!   encoder-decoder) width surrogates regressing rasterised width maps,
//!   and the backend seam that lets the flow, bundles, and the serving
//!   registry swap them for the MLP.
//! * [`IrPredictor`] — Problem 2 / Algorithm 2: Kirchhoff-law IR-drop
//!   estimation from predicted widths and switching currents, *without*
//!   running a grid solve (eqs. 6–9) — the source of the speedup.
//! * [`Perturbation`] — §IV-D: the test-set generator perturbing node
//!   voltages and/or current workloads by γ.
//! * [`calibrate_to_worst_ir`] — scales a synthetic benchmark's loads
//!   so its conventional worst-case IR drop matches the Table III value
//!   of the IBM original.
//! * [`PowerPlanningDl`] — Fig. 2 / Fig. 6: the end-to-end flow with
//!   timing, reproducing the Table IV comparison.
//!
//! # Example
//!
//! ```
//! use ppdl_core::{experiment, PowerPlanningDl};
//! use ppdl_netlist::IbmPgPreset;
//!
//! let prepared = experiment::prepare(IbmPgPreset::Ibmpg2, 0.006, 7, 2.5).unwrap();
//! let config = experiment::flow_config(&prepared, true);
//! let outcome = PowerPlanningDl::new(config).run(&prepared.bench).unwrap();
//! assert!(outcome.width_metrics.r2 > 0.4);
//! assert!(outcome.timing.speedup > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod calibrate;
mod conventional;
mod error;
pub mod experiment;
mod features;
mod flow;
mod irpredict;
mod pad_placement;
mod perturb;
pub mod pipeline;
pub mod predict;
mod predictor;
mod predictor_persist;
mod spatial;
pub mod synth;

pub use backend::{BackendKind, BackendModel, InputSpec};
pub use calibrate::{calibrate_to_worst_ir, calibration_tolerance};
pub use conventional::{ConventionalConfig, ConventionalFlow, ConventionalResult};
pub use error::CoreError;
pub use features::{FeatureExtractor, FeatureSet, WidthDataset};
pub use flow::{
    DlFlowConfig, DlFlowConfigBuilder, DlOutcome, PowerPlanningDl, SweepPoint, SweepRun, Timing,
};
pub use irpredict::{IrPredictor, PredictedIr};
pub use pad_placement::{PadPlacementResult, PadPlacer};
pub use perturb::{run_perturbation_sweep, Perturbation, PerturbationKind};
pub use predict::{BundleMeta, PredictRequest, PredictResponse, Prediction, TrainedBundle};
pub use predictor::{segment_dataset, PredictorConfig, TrainSummary, WidthMetrics, WidthPredictor};
pub use spatial::{RasterMaps, SpatialArch, SpatialPredictor};
pub use synth::{synthesize, SynthConfig, SynthResult};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

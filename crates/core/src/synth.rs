//! Predictor-in-the-loop PDN synthesis: greedy template selection plus
//! simulated annealing, with the trained surrogate as the cost oracle.
//!
//! The paper's economics (§V) make one full MNA solve the unit of
//! account: the conventional flow pays one per widening iteration,
//! while a trained model answers the same "how bad is this grid?"
//! question in microseconds. OpeNPDN turns that asymmetry into a
//! synthesis recipe — choose one width *template* per region of the
//! grid instead of one free width per strap, let the cheap predictor
//! score candidate templates, and escalate to a real solve only
//! occasionally. This module is that recipe over this repo's pieces:
//!
//! * **Oracle** — [`predict`](crate::predict::predict) in width-override
//!   mode ([`PredictRequest::with_widths`]): no grid solve, just the
//!   Kirchhoff IR estimate of an explicit width vector, multiplied by a
//!   running calibration factor anchored to real solves.
//! * **Search** — greedy initialisation from the model's own width
//!   inference, then simulated annealing over per-region ladder levels.
//!   Every random draw happens sequentially on the calling thread; a
//!   whole batch of proposals is then scored in parallel with
//!   [`par_map_vec`](ppdl_solver::parallel::par_map_vec), whose output
//!   order is positional — so the optimizer is bitwise deterministic in
//!   `(config, bundle)` at any thread count.
//! * **Verification** — a real [`StaticAnalysis`] MNA solve (with the
//!   configured [`PreconditionerKind`]) every `verify_every` accepted
//!   moves and at termination, recalibrating the oracle each time. A
//!   deterministic greedy *polish* pass between annealing and the
//!   final verify lands the template on the aim one region-step at a
//!   time, and a bounded repair loop re-anchors the oracle at a failed
//!   verify and widens single regions (not the whole template) until
//!   the calibrated estimate clears the margin. Every full solve is
//!   counted in [`SynthResult::full_solves`] — the number the
//!   `synth_oracle` experiment compares against the conventional
//!   flow's iteration count.

use ppdl_analysis::{AnalysisOptions, PreconditionerKind, StaticAnalysis};
use ppdl_netlist::SyntheticBenchmark;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::predict::{predict, PredictRequest, TrainedBundle};
use crate::CoreError;

/// Histogram bounds for the per-round cumulative acceptance rate.
const ACCEPT_BOUNDS: &[f64] = &[0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Tuning knobs of the synthesis optimizer. Every field participates in
/// the determinism contract: two runs with equal configs (and equal
/// bundles) produce bitwise-identical results at any thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Contiguous template regions per strap direction (see
    /// [`SyntheticBenchmark::strap_regions`]).
    pub regions_per_orientation: usize,
    /// Number of discrete width levels on the geometric ladder.
    pub ladder_levels: usize,
    /// Multiplicative head-room of the ladder around the golden widths:
    /// the ladder spans `[min_golden / span, max_golden * span]`.
    pub ladder_span: f64,
    /// Total oracle-call budget; the annealer stops when the next batch
    /// would exceed it.
    pub budget: usize,
    /// Proposals scored in parallel per annealing round.
    pub batch: usize,
    /// Accepted moves between escalations to a real MNA solve.
    pub verify_every: usize,
    /// RNG seed for the annealer.
    pub seed: u64,
    /// Initial Metropolis temperature, in cost units.
    pub initial_temperature: f64,
    /// Per-round geometric cooling factor in `(0, 1]`.
    pub cooling: f64,
    /// Weight of normalised metal area in the cost.
    pub area_weight: f64,
    /// Weight of the relative margin violation in the cost.
    pub ir_penalty: f64,
    /// Fraction of the IR margin the annealer aims below (aiming
    /// exactly at the margin would leave half the moves infeasible).
    pub aim_fraction: f64,
    /// Explicit IR aim in volts, overriding `aim_fraction`. Callers who
    /// already hold a verified reference — the conventional flow's
    /// converged worst drop — set this so the annealer *tracks* that
    /// margin instead of trading it away for area: the IR term of the
    /// cost becomes symmetric around the aim, and the final design
    /// lands on the reference's margin with the minimum metal the
    /// template ladder allows. Clamped to the margin itself.
    pub aim_worst_ir: Option<f64>,
    /// Bounded widen-and-reverify rounds after a failed final verify.
    pub max_repair_rounds: usize,
    /// Preconditioner for the escalation/verification solves.
    pub precond: PreconditionerKind,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            regions_per_orientation: 4,
            ladder_levels: 24,
            ladder_span: 2.0,
            budget: 1200,
            batch: 8,
            verify_every: 200,
            seed: 1,
            initial_temperature: 0.05,
            cooling: 0.97,
            area_weight: 1.0,
            ir_penalty: 12.0,
            aim_fraction: 0.96,
            aim_worst_ir: None,
            max_repair_rounds: 4,
            precond: PreconditionerKind::Ic0,
        }
    }
}

impl SynthConfig {
    /// A cheap preset for smoke tests and the `--fast` CLI/bench paths:
    /// smaller batches and budget, same determinism contract.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            ladder_levels: 16,
            budget: 240,
            batch: 6,
            ..Self::default()
        }
    }

    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> crate::Result<()> {
        let bad = |detail: String| Err(CoreError::InvalidConfig { detail });
        if self.regions_per_orientation == 0 {
            return bad("regions_per_orientation must be at least 1".into());
        }
        if self.ladder_levels < 2 {
            return bad(format!(
                "ladder_levels must be at least 2, got {}",
                self.ladder_levels
            ));
        }
        if !(self.ladder_span.is_finite() && self.ladder_span >= 1.0) {
            return bad(format!(
                "ladder_span must be >= 1, got {}",
                self.ladder_span
            ));
        }
        if self.batch == 0 {
            return bad("batch must be at least 1".into());
        }
        if self.budget < self.batch {
            return bad(format!(
                "budget {} cannot fit a single batch of {}",
                self.budget, self.batch
            ));
        }
        if self.verify_every == 0 {
            return bad("verify_every must be at least 1".into());
        }
        if !(self.initial_temperature.is_finite() && self.initial_temperature > 0.0) {
            return bad(format!(
                "initial_temperature must be positive, got {}",
                self.initial_temperature
            ));
        }
        if !(self.cooling > 0.0 && self.cooling <= 1.0) {
            return bad(format!("cooling must be in (0, 1], got {}", self.cooling));
        }
        if !(self.area_weight.is_finite() && self.area_weight >= 0.0) {
            return bad(format!(
                "area_weight must be non-negative, got {}",
                self.area_weight
            ));
        }
        if !(self.ir_penalty.is_finite() && self.ir_penalty > 0.0) {
            return bad(format!(
                "ir_penalty must be positive, got {}",
                self.ir_penalty
            ));
        }
        if !(self.aim_fraction > 0.0 && self.aim_fraction <= 1.0) {
            return bad(format!(
                "aim_fraction must be in (0, 1], got {}",
                self.aim_fraction
            ));
        }
        if let Some(aim) = self.aim_worst_ir {
            if !(aim.is_finite() && aim > 0.0) {
                return bad(format!("aim_worst_ir must be positive, got {aim}"));
            }
        }
        Ok(())
    }
}

/// What the optimizer produced, with an honest account of the work it
/// took.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthResult {
    /// Final per-strap widths, in µm.
    pub widths: Vec<f64>,
    /// Final ladder level per region.
    pub levels: Vec<usize>,
    /// The width ladder the levels index into, in µm.
    pub ladder: Vec<f64>,
    /// Number of template regions.
    pub regions: usize,
    /// Cheap oracle evaluations performed.
    pub oracle_calls: usize,
    /// Real MNA solves performed (escalations + final verify + repair).
    pub full_solves: usize,
    /// Annealing proposals scored.
    pub proposed: usize,
    /// Annealing moves accepted.
    pub accepted: usize,
    /// Annealing rounds run.
    pub rounds: usize,
    /// Widen-and-reverify rounds taken after the final verify.
    pub repair_rounds: usize,
    /// MNA-verified worst-case IR drop of the final widths, in volts.
    pub worst_ir: f64,
    /// Calibrated oracle estimate at the final widths, in volts.
    pub oracle_worst_ir: f64,
    /// The margin the synthesis targeted, in volts.
    pub target_worst_ir: f64,
    /// Final total metal area, in µm².
    pub metal_area: f64,
    /// Metal area of the bundle's golden (conventionally sized) widths.
    pub golden_metal_area: f64,
    /// Final oracle calibration factor (verified / predicted).
    pub calibration: f64,
    /// Whether the verified worst drop meets the margin.
    pub feasible: bool,
}

impl SynthResult {
    /// Verified worst drop in millivolts.
    #[must_use]
    pub fn worst_ir_mv(&self) -> f64 {
        self.worst_ir * 1e3
    }
}

/// Geometric width ladder spanning the golden widths with
/// `config.ladder_span` head-room on both ends.
fn build_ladder(golden: &[f64], config: &SynthConfig) -> crate::Result<Vec<f64>> {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &w in golden {
        lo = lo.min(w);
        hi = hi.max(w);
    }
    if !(lo.is_finite() && lo > 0.0 && hi.is_finite()) {
        return Err(CoreError::InvalidConfig {
            detail: format!("golden widths span [{lo}, {hi}] is unusable for a ladder"),
        });
    }
    let lo = lo / config.ladder_span;
    let hi = hi * config.ladder_span;
    let n = config.ladder_levels;
    let ratio = (hi / lo).powf(1.0 / (n - 1) as f64);
    Ok((0..n).map(|l| lo * ratio.powi(l as i32)).collect())
}

/// Smallest ladder level whose width is `>= w` (last level when `w`
/// exceeds the ladder) — quantising *up* keeps the greedy start
/// conservative.
fn quantize_up(ladder: &[f64], w: f64) -> usize {
    ladder
        .iter()
        .position(|&lw| lw >= w)
        .unwrap_or(ladder.len() - 1)
}

/// Expands per-region levels into a full per-strap width vector.
fn expand(regions: &[Vec<usize>], ladder: &[f64], levels: &[usize], n_straps: usize) -> Vec<f64> {
    let mut widths = vec![0.0; n_straps];
    for (region, &level) in regions.iter().zip(levels) {
        for &strap in region {
            widths[strap] = ladder[level];
        }
    }
    widths
}

/// One oracle evaluation: raw (uncalibrated) worst drop in volts plus
/// the candidate's metal area.
fn oracle_eval(
    bundle: &TrainedBundle,
    base: &SyntheticBenchmark,
    widths: &[f64],
) -> crate::Result<(f64, f64)> {
    let request = PredictRequest::new("synth-oracle").with_widths(widths.to_vec());
    let p = predict(
        &bundle.predictor,
        base,
        &request,
        bundle.meta.inference_stride,
    )?;
    ppdl_obs::counter_add("synth/oracle_calls", 1);
    Ok((p.ir.worst, p.test_bench.total_metal_area()))
}

/// The immutable context of one synthesis run: the oracle bundle, the
/// base design, and the template space it searches over.
struct SearchSpace<'a> {
    bundle: &'a TrainedBundle,
    base: &'a SyntheticBenchmark,
    regions: &'a [Vec<usize>],
    ladder: &'a [f64],
    n_straps: usize,
}

/// Scores every movable single-region step (up when `up`, down
/// otherwise) with the oracle and returns the candidate with the
/// lowest raw worst drop as `(region, raw)`. Ties break toward the
/// lowest region index; `None` when no region can move. Scoring fans
/// out over [`par_map_vec`](ppdl_solver::parallel::par_map_vec), so
/// the pick is deterministic at any thread count.
fn best_step(
    space: &SearchSpace<'_>,
    levels: &[usize],
    up: bool,
    oracle_calls: &mut usize,
) -> crate::Result<Option<(usize, f64)>> {
    let movable: Vec<usize> = (0..levels.len())
        .filter(|&r| {
            if up {
                levels[r] + 1 < space.ladder.len()
            } else {
                levels[r] > 0
            }
        })
        .collect();
    if movable.is_empty() {
        return Ok(None);
    }
    let scored: Vec<crate::Result<(f64, f64)>> =
        // ppdl-lint: allow(determinism/tainted-parallel) -- oracle_eval -> predict reaches Perturbation::apply (StdRng seeded per perturbation) and predict's clock read is telemetry under its own wall-clock allow; candidate scoring is bitwise deterministic
        ppdl_solver::parallel::par_map_vec(&movable, |_, &r| {
            let mut next = levels.to_vec();
            next[r] = if up { next[r] + 1 } else { next[r] - 1 };
            let widths = expand(space.regions, space.ladder, &next, space.n_straps);
            oracle_eval(space.bundle, space.base, &widths)
        });
    *oracle_calls += movable.len();
    let evals: Vec<(f64, f64)> = scored.into_iter().collect::<crate::Result<_>>()?;
    let mut best: Option<(usize, f64)> = None;
    for (i, &(raw, _)) in evals.iter().enumerate() {
        if best.map_or(true, |(_, b)| raw < b) {
            best = Some((movable[i], raw));
        }
    }
    Ok(best)
}

/// One escalation: a real MNA solve of the base design at `widths`.
fn full_solve(
    base: &SyntheticBenchmark,
    widths: &[f64],
    precond: PreconditionerKind,
) -> crate::Result<f64> {
    let mut bench = base.clone();
    bench.set_strap_widths(widths)?;
    let report = StaticAnalysis::new(AnalysisOptions {
        preconditioner: precond,
        ..AnalysisOptions::default()
    })
    .solve(bench.network())?;
    ppdl_obs::counter_add("synth/full_solves", 1);
    Ok(report.worst_drop().map_or(0.0, |(_, d)| d))
}

/// Runs predictor-in-the-loop synthesis against a trained bundle.
///
/// `known_golden_worst_ir` is the MNA-verified worst drop of the
/// bundle's golden widths when the caller already has it (the pipeline's
/// sizing stage records it); passing it anchors the oracle's initial
/// calibration for free. When `None`, the optimizer spends one extra
/// full solve on the initial template instead.
///
/// The returned [`SynthResult`] is bitwise identical across thread
/// counts for a fixed `(bundle, config)`: proposals and acceptance
/// draws come from one sequential seeded RNG, batch scoring preserves
/// slot order, and ties between equal-cost candidates break toward the
/// lowest index.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for bad knobs and propagates
/// oracle, netlist, and analysis errors.
pub fn synthesize(
    bundle: &TrainedBundle,
    config: &SynthConfig,
    known_golden_worst_ir: Option<f64>,
) -> crate::Result<SynthResult> {
    config.validate()?;
    let _span = ppdl_obs::span("synth/run");
    let base = bundle.instantiate_base()?;
    let n_straps = base.straps().len();
    let regions = base.strap_regions(config.regions_per_orientation);
    if regions.is_empty() {
        return Err(CoreError::InvalidConfig {
            detail: "benchmark has no straps to synthesise".into(),
        });
    }
    let ladder = build_ladder(&bundle.golden_widths, config)?;
    let target = bundle.meta.margin_fraction * base.spec().vdd;
    // Tracking mode: an explicit aim pins the annealer to a verified
    // reference margin (symmetric IR term); otherwise aim a fixed
    // fraction below the margin (one-sided term, area does the rest).
    let aim = config
        .aim_worst_ir
        .map_or(config.aim_fraction * target, |a| a.min(target));
    let track = config.aim_worst_ir.is_some();
    let golden_area = {
        let mut b = base.clone();
        b.set_strap_widths(&bundle.golden_widths)?;
        b.total_metal_area()
    };

    let mut oracle_calls = 0usize;
    let mut full_solves = 0usize;

    // --- Greedy initialisation -------------------------------------
    // One NN inference on the base design seeds the template: each
    // region takes the ladder level covering the mean predicted width
    // of its straps.
    let inferred = predict(
        &bundle.predictor,
        &base,
        &PredictRequest::new("synth-init"),
        bundle.meta.inference_stride,
    )?;
    oracle_calls += 1;
    let mut levels: Vec<usize> = regions
        .iter()
        .map(|region| {
            let mean = region
                .iter()
                .map(|&s| inferred.response.widths[s])
                .sum::<f64>()
                / region.len() as f64;
            quantize_up(&ladder, mean)
        })
        .collect();

    // --- Calibration anchor ----------------------------------------
    // The oracle is scaled so that at a known design it reproduces the
    // MNA answer exactly: scale = verified / predicted. The anchor is
    // free when the caller knows the golden design's verified drop.
    let (golden_raw, _) = oracle_eval(bundle, &base, &bundle.golden_widths)?;
    oracle_calls += 1;
    let mut calibration = match known_golden_worst_ir {
        Some(verified) if golden_raw > 0.0 && verified > 0.0 => verified / golden_raw,
        _ => {
            let widths = expand(&regions, &ladder, &levels, n_straps);
            let (raw, _) = oracle_eval(bundle, &base, &widths)?;
            oracle_calls += 1;
            let verified = full_solve(&base, &widths, config.precond)?;
            full_solves += 1;
            if raw > 0.0 && verified > 0.0 {
                verified / raw
            } else {
                1.0
            }
        }
    };

    let cost_of = |raw_ir: f64, area: f64, calibration: f64| {
        let ir_cal = raw_ir * calibration;
        let rel = (ir_cal - aim) / aim;
        let ir_term = if track { rel.abs() } else { rel.max(0.0) };
        config.area_weight * (area / golden_area) + config.ir_penalty * ir_term
    };

    let start_widths = expand(&regions, &ladder, &levels, n_straps);
    let (mut current_raw, mut current_area) = oracle_eval(bundle, &base, &start_widths)?;
    oracle_calls += 1;
    let mut current_cost = cost_of(current_raw, current_area, calibration);

    // --- Simulated annealing ----------------------------------------
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut temperature = config.initial_temperature;
    let mut proposed = 0usize;
    let mut accepted = 0usize;
    let mut rounds = 0usize;
    let mut accepted_since_verify = 0usize;
    while oracle_calls + config.batch <= config.budget {
        rounds += 1;
        // All randomness is drawn here, sequentially, before any
        // parallel work: the batch of (region, direction) moves and the
        // one acceptance uniform for this round.
        let moves: Vec<(usize, bool)> = (0..config.batch)
            .map(|_| (rng.gen_range(0..regions.len()), rng.gen_bool(0.5)))
            .collect();
        let uniform: f64 = rng.gen_range(0.0..1.0);

        let candidates: Vec<Vec<usize>> = moves
            .iter()
            .map(|&(region, up)| {
                let mut next = levels.clone();
                next[region] = if up {
                    (next[region] + 1).min(ladder.len() - 1)
                } else {
                    next[region].saturating_sub(1)
                };
                next
            })
            .collect();
        // Deterministic fan-out: par_map_vec fills slot i with
        // candidate i's score regardless of thread interleaving.
        let scored: Vec<crate::Result<(f64, f64)>> =
            // ppdl-lint: allow(determinism/tainted-parallel) -- oracle_eval -> predict reaches Perturbation::apply (StdRng seeded per perturbation) and predict's clock read is telemetry under its own wall-clock allow; candidate scoring is bitwise deterministic
            ppdl_solver::parallel::par_map_vec(&candidates, |_, cand| {
                let widths = expand(&regions, &ladder, cand, n_straps);
                oracle_eval(bundle, &base, &widths)
            });
        oracle_calls += candidates.len();
        proposed += candidates.len();
        ppdl_obs::counter_add("synth/proposed", candidates.len() as u64);

        // Lowest cost wins; ties break toward the lowest slot index
        // (strict `<` against the running best).
        let evals: Vec<(f64, f64)> = scored.into_iter().collect::<crate::Result<_>>()?;
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for (i, &(raw, area)) in evals.iter().enumerate() {
            let cost = cost_of(raw, area, calibration);
            if cost < best_cost {
                best = i;
                best_cost = cost;
            }
        }

        // Metropolis on the round's best candidate, with the pre-drawn
        // uniform.
        let delta = best_cost - current_cost;
        if delta <= 0.0 || uniform < (-delta / temperature).exp() {
            levels.clone_from(&candidates[best]);
            (current_raw, current_area) = evals[best];
            current_cost = best_cost;
            accepted += 1;
            accepted_since_verify += 1;
            ppdl_obs::counter_add("synth/accepted", 1);
        }
        ppdl_obs::observe(
            "synth/acceptance_rate",
            ACCEPT_BOUNDS,
            accepted as f64 / proposed as f64,
        );
        temperature = (temperature * config.cooling).max(f64::MIN_POSITIVE);

        // Escalate: anchor the oracle to a real solve every
        // `verify_every` accepted moves.
        if accepted_since_verify >= config.verify_every {
            accepted_since_verify = 0;
            let widths = expand(&regions, &ladder, &levels, n_straps);
            let verified = full_solve(&base, &widths, config.precond)?;
            full_solves += 1;
            if current_raw > 0.0 && verified > 0.0 {
                calibration = verified / current_raw;
            }
            current_cost = cost_of(current_raw, current_area, calibration);
        }
    }

    // --- Greedy oracle-space polish ---------------------------------
    // The annealer leaves the template in the aim's neighbourhood; a
    // deterministic greedy pass lands it exactly: widen the single
    // most effective region while the calibrated estimate misses the
    // aim, then take back any step the aim does not need. Every move
    // costs oracle calls only.
    let space = SearchSpace {
        bundle,
        base: &base,
        regions: &regions,
        ladder: &ladder,
        n_straps,
    };
    let polish_cap = ladder.len();
    let mut polish = 0usize;
    while current_raw * calibration > aim && polish < polish_cap {
        let Some((region, raw)) = best_step(&space, &levels, true, &mut oracle_calls)? else {
            break;
        };
        levels[region] += 1;
        current_raw = raw;
        polish += 1;
    }
    polish = 0;
    while polish < polish_cap {
        let Some((region, raw)) = best_step(&space, &levels, false, &mut oracle_calls)? else {
            break;
        };
        if raw * calibration > aim {
            break;
        }
        levels[region] -= 1;
        polish += 1;
    }
    // --- Final verification and bounded repair ----------------------
    let mut widths = expand(&regions, &ladder, &levels, n_straps);
    let mut worst_ir = full_solve(&base, &widths, config.precond)?;
    full_solves += 1;
    let mut repair_rounds = 0usize;
    while worst_ir > target && repair_rounds < config.max_repair_rounds {
        // Oracle-guided repair: re-anchor the calibration at the
        // failed design (the scaled oracle is exact there), then take
        // the smallest chain of single-region widenings whose
        // calibrated estimate clears the margin with a little slack,
        // and re-verify. Each round costs one full solve.
        let (raw_here, _) = oracle_eval(bundle, &base, &widths)?;
        oracle_calls += 1;
        if raw_here > 0.0 && worst_ir > 0.0 {
            calibration = worst_ir / raw_here;
        }
        let repair_aim = aim.min(0.99 * target);
        let mut est = worst_ir;
        let mut steps = 0usize;
        while est > repair_aim && steps < ladder.len() {
            let Some((region, raw)) = best_step(&space, &levels, true, &mut oracle_calls)? else {
                break;
            };
            levels[region] += 1;
            est = raw * calibration;
            steps += 1;
        }
        if steps == 0 {
            // Every region is already on the top rung; the ladder has
            // no width left to give. `feasible` reports the miss.
            break;
        }
        widths = expand(&regions, &ladder, &levels, n_straps);
        worst_ir = full_solve(&base, &widths, config.precond)?;
        full_solves += 1;
        repair_rounds += 1;
    }
    let (final_raw, metal_area) = oracle_eval(bundle, &base, &widths)?;
    oracle_calls += 1;
    if final_raw > 0.0 && worst_ir > 0.0 {
        calibration = worst_ir / final_raw;
    }

    Ok(SynthResult {
        widths,
        levels,
        ladder,
        regions: regions.len(),
        oracle_calls,
        full_solves,
        proposed,
        accepted,
        rounds,
        repair_rounds,
        worst_ir,
        oracle_worst_ir: final_raw * calibration,
        target_worst_ir: target,
        metal_area,
        golden_metal_area: golden_area,
        calibration,
        feasible: worst_ir <= target,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DlFlowConfig;
    use ppdl_netlist::IbmPgPreset;
    use ppdl_solver::parallel::DEFAULT_PAR_THRESHOLD;
    use ppdl_solver::{set_par_threshold, set_threads};

    fn fast_bundle() -> TrainedBundle {
        TrainedBundle::train(IbmPgPreset::Ibmpg2, 0.006, 7, DlFlowConfig::fast(), None).unwrap()
    }

    #[test]
    fn fast_synthesis_meets_margin_with_few_full_solves() {
        let bundle = fast_bundle();
        let config = SynthConfig::fast();
        let result = synthesize(&bundle, &config, None).unwrap();
        assert!(
            result.feasible,
            "worst {} > target {}",
            result.worst_ir, result.target_worst_ir
        );
        assert!(result.worst_ir <= result.target_worst_ir);
        // Work accounting: the annealer itself stayed within the
        // proposal budget (polish/repair spend extra oracle calls, all
        // reported in `oracle_calls`), and the full-solve count is the
        // initial anchor + final verify + bounded repair.
        assert!(result.proposed <= config.budget);
        assert!(result.oracle_calls >= result.proposed);
        assert!(result.full_solves <= 2 + result.repair_rounds);
        assert!(result.proposed >= config.batch);
        assert!(result.accepted <= result.proposed);
        assert_eq!(result.widths.len(), bundle.golden_widths.len());
        assert_eq!(result.levels.len(), result.regions);
        // Every width sits on the ladder.
        for &w in &result.widths {
            assert!(result.ladder.contains(&w));
        }
    }

    #[test]
    fn golden_anchor_saves_the_initial_full_solve() {
        let bundle = fast_bundle();
        let config = SynthConfig::fast();
        // Anchor the calibration with a known verified drop: the only
        // remaining full solves are the final verify and any repair.
        let anchored = synthesize(&bundle, &config, Some(0.05)).unwrap();
        assert!(anchored.full_solves <= 1 + anchored.repair_rounds);
    }

    #[test]
    fn synthesis_is_bitwise_deterministic_across_thread_counts() {
        let bundle = fast_bundle();
        let config = SynthConfig::fast();
        let run = |threads: usize| {
            set_threads(threads);
            set_par_threshold(1);
            let out = synthesize(&bundle, &config, None).unwrap();
            set_threads(0);
            set_par_threshold(DEFAULT_PAR_THRESHOLD);
            out
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.levels, four.levels);
        assert_eq!(one.accepted, four.accepted);
        assert_eq!(one.full_solves, four.full_solves);
        for (a, b) in one.widths.iter().zip(&four.widths) {
            assert_eq!(a.to_bits(), b.to_bits(), "width differs: {a} vs {b}");
        }
        assert_eq!(one.worst_ir.to_bits(), four.worst_ir.to_bits());
        assert_eq!(one.calibration.to_bits(), four.calibration.to_bits());
    }

    #[test]
    fn seed_changes_the_search_trajectory() {
        let bundle = fast_bundle();
        let a = synthesize(&bundle, &SynthConfig::fast(), None).unwrap();
        let b = synthesize(
            &bundle,
            &SynthConfig {
                seed: 99,
                ..SynthConfig::fast()
            },
            None,
        )
        .unwrap();
        // Different seeds draw different proposals; both must still be
        // feasible. (Equal accepted counts are possible, so compare the
        // whole trajectory signature instead of a single field.)
        assert!(a.feasible && b.feasible);
        assert!(
            a.levels != b.levels || a.accepted != b.accepted || a.worst_ir != b.worst_ir,
            "two seeds produced identical trajectories"
        );
    }

    #[test]
    fn config_validation_names_bad_knobs() {
        let bad = |config: SynthConfig| {
            matches!(
                config.validate().unwrap_err(),
                CoreError::InvalidConfig { .. }
            )
        };
        assert!(bad(SynthConfig {
            regions_per_orientation: 0,
            ..SynthConfig::default()
        }));
        assert!(bad(SynthConfig {
            ladder_levels: 1,
            ..SynthConfig::default()
        }));
        assert!(bad(SynthConfig {
            ladder_span: 0.5,
            ..SynthConfig::default()
        }));
        assert!(bad(SynthConfig {
            batch: 0,
            ..SynthConfig::default()
        }));
        assert!(bad(SynthConfig {
            budget: 1,
            batch: 8,
            ..SynthConfig::default()
        }));
        assert!(bad(SynthConfig {
            verify_every: 0,
            ..SynthConfig::default()
        }));
        assert!(bad(SynthConfig {
            cooling: 0.0,
            ..SynthConfig::default()
        }));
        assert!(bad(SynthConfig {
            aim_fraction: 1.5,
            ..SynthConfig::default()
        }));
        assert!(bad(SynthConfig {
            aim_worst_ir: Some(-0.01),
            ..SynthConfig::default()
        }));
        assert!(SynthConfig {
            aim_worst_ir: Some(0.03),
            ..SynthConfig::default()
        }
        .validate()
        .is_ok());
        assert!(SynthConfig::default().validate().is_ok());
        assert!(SynthConfig::fast().validate().is_ok());
    }

    #[test]
    fn ladder_spans_golden_widths_and_quantizes_up() {
        let golden = [1.0, 2.0, 4.0];
        let config = SynthConfig::default();
        let ladder = build_ladder(&golden, &config).unwrap();
        assert_eq!(ladder.len(), config.ladder_levels);
        assert!(ladder[0] <= 1.0 / config.ladder_span + 1e-12);
        assert!(ladder[config.ladder_levels - 1] >= 4.0 * config.ladder_span - 1e-9);
        for pair in ladder.windows(2) {
            assert!(pair[0] < pair[1], "ladder must be strictly increasing");
        }
        // Quantising up never lands below the requested width (except
        // past the top rung, which clamps).
        for w in [0.7, 1.0, 1.3, 3.9] {
            let q = quantize_up(&ladder, w);
            assert!(ladder[q] >= w, "ladder[{q}] = {} < {w}", ladder[q]);
        }
        assert_eq!(quantize_up(&ladder, 1e9), ladder.len() - 1);
        // Degenerate golden widths are a typed error.
        assert!(build_ladder(&[0.0], &config).is_err());
    }
}

//! Persistence for trained [`WidthPredictor`]s.
//!
//! A production flow trains once on a signed-off design and reuses the
//! model across design revisions (the incremental use case the paper
//! recommends), so the whole predictor — both direction models and all
//! four scalers — serialises to one versioned text blob.

use ppdl_nn::{Mlp, StandardScaler};

use crate::predictor::DirectionModel;
use crate::{CoreError, FeatureSet, WidthPredictor};

impl WidthPredictor {
    /// Serialises the predictor (models + scalers + configuration).
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "ppdl-width-predictor v1");
        let _ = writeln!(out, "feature_set {}", feature_tag(self.feature_set()));
        let _ = writeln!(out, "min_width {}", self.min_width());
        for (tag, model) in [
            ("vertical", self.vertical_model()),
            ("horizontal", self.horizontal_model()),
        ] {
            let _ = writeln!(out, "direction {tag}");
            write_scaler(&mut out, "features", &model.feature_scaler);
            write_scaler(&mut out, "targets", &model.target_scaler);
            out.push_str(&model.model.to_text());
        }
        out.push_str("end-predictor\n");
        out
    }

    /// Reconstructs a predictor from [`to_text`](Self::to_text) output.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] (with a description) for any
    /// malformed input, and propagates model-decoding errors.
    pub fn from_text(text: &str) -> crate::Result<Self> {
        let mut lines = text.lines().peekable();
        let expect = |line: Option<&str>, what: &str| -> crate::Result<String> {
            line.map(str::to_string)
                .ok_or_else(|| CoreError::InvalidConfig {
                    detail: format!("unexpected end of predictor file, wanted {what}"),
                })
        };
        let header = expect(lines.next(), "header")?;
        if header.trim() != "ppdl-width-predictor v1" {
            return Err(CoreError::InvalidConfig {
                detail: format!("bad predictor header '{header}'"),
            });
        }
        let fs_line = expect(lines.next(), "feature_set")?;
        let feature_set =
            parse_feature_tag(fs_line.trim().strip_prefix("feature_set ").ok_or_else(|| {
                CoreError::InvalidConfig {
                    detail: format!("bad feature_set line '{fs_line}'"),
                }
            })?)?;
        let mw_line = expect(lines.next(), "min_width")?;
        let min_width: f64 = mw_line
            .trim()
            .strip_prefix("min_width ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| CoreError::InvalidConfig {
                detail: format!("bad min_width line '{mw_line}'"),
            })?;

        let mut models: Vec<(String, DirectionModel)> = Vec::new();
        loop {
            let line = expect(lines.next(), "direction or end-predictor")?;
            let line = line.trim();
            if line == "end-predictor" {
                break;
            }
            let tag = line
                .strip_prefix("direction ")
                .ok_or_else(|| CoreError::InvalidConfig {
                    detail: format!("expected 'direction <tag>', found '{line}'"),
                })?
                .to_string();
            let feature_scaler = read_scaler(&mut lines, "features")?;
            let target_scaler = read_scaler(&mut lines, "targets")?;
            // The embedded model runs until its own "end" line.
            let mut model_text = String::new();
            loop {
                let l = expect(lines.next(), "model body")?;
                model_text.push_str(&l);
                model_text.push('\n');
                if l.trim() == "end" {
                    break;
                }
            }
            let model = Mlp::from_text(&model_text)?;
            models.push((
                tag,
                DirectionModel {
                    model,
                    feature_scaler,
                    target_scaler,
                },
            ));
        }
        let mut vertical = None;
        let mut horizontal = None;
        for (tag, m) in models {
            match tag.as_str() {
                "vertical" => vertical = Some(m),
                "horizontal" => horizontal = Some(m),
                other => {
                    return Err(CoreError::InvalidConfig {
                        detail: format!("unknown direction tag '{other}'"),
                    })
                }
            }
        }
        let (Some(vertical), Some(horizontal)) = (vertical, horizontal) else {
            return Err(CoreError::InvalidConfig {
                detail: "predictor file must contain both directions".into(),
            });
        };
        let predictor = WidthPredictor::from_parts(vertical, horizontal, feature_set, min_width);
        // Loading is the trust boundary: a hand-edited or mixed-version
        // file must fail typed here, not panic rows-vs-cols later.
        predictor.validate_shapes()?;
        Ok(predictor)
    }
}

fn feature_tag(fs: FeatureSet) -> &'static str {
    match fs {
        FeatureSet::X => "x",
        FeatureSet::Y => "y",
        FeatureSet::Id => "id",
        FeatureSet::Combined => "combined",
    }
}

fn parse_feature_tag(tag: &str) -> crate::Result<FeatureSet> {
    match tag {
        "x" => Ok(FeatureSet::X),
        "y" => Ok(FeatureSet::Y),
        "id" => Ok(FeatureSet::Id),
        "combined" => Ok(FeatureSet::Combined),
        other => Err(CoreError::InvalidConfig {
            detail: format!("unknown feature set '{other}'"),
        }),
    }
}

fn write_scaler(out: &mut String, tag: &str, scaler: &StandardScaler) {
    use std::fmt::Write as _;
    let join = |v: &[f64]| {
        v.iter()
            .map(|x| format!("{x}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let _ = writeln!(out, "scaler {tag} {}", scaler.means().len());
    let _ = writeln!(out, "{}", join(scaler.means()));
    let _ = writeln!(out, "{}", join(scaler.stds()));
}

fn read_scaler<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    tag: &str,
) -> crate::Result<StandardScaler> {
    let header = lines.next().ok_or_else(|| CoreError::InvalidConfig {
        detail: format!("missing scaler {tag} header"),
    })?;
    let expected_prefix = format!("scaler {tag} ");
    if !header.trim_start().starts_with(&expected_prefix) {
        return Err(CoreError::InvalidConfig {
            detail: format!("expected '{expected_prefix}<n>', found '{header}'"),
        });
    }
    let parse_row = |line: Option<&str>| -> crate::Result<Vec<f64>> {
        line.ok_or_else(|| CoreError::InvalidConfig {
            detail: format!("missing scaler {tag} row"),
        })?
        .split_whitespace()
        .map(|t| {
            t.parse().map_err(|_| CoreError::InvalidConfig {
                detail: format!("bad scaler value '{t}'"),
            })
        })
        .collect()
    };
    let means = parse_row(lines.next())?;
    let stds = parse_row(lines.next())?;
    Ok(StandardScaler::from_parts(means, stds)?)
}

#[cfg(test)]
mod tests {
    use crate::{
        experiment, ConventionalConfig, ConventionalFlow, PredictorConfig, WidthPredictor,
    };
    use ppdl_netlist::IbmPgPreset;

    fn trained() -> (ppdl_netlist::SyntheticBenchmark, Vec<f64>, WidthPredictor) {
        let prepared = experiment::prepare(IbmPgPreset::Ibmpg2, 0.005, 41, 2.5).unwrap();
        let (sized, res) = ConventionalFlow::new(ConventionalConfig {
            ir_margin_fraction: prepared.margin_fraction,
            ..ConventionalConfig::default()
        })
        .run(&prepared.bench)
        .unwrap();
        let (p, _) = WidthPredictor::train(&sized, &res.widths, PredictorConfig::fast()).unwrap();
        (sized, res.widths, p)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let (bench, _, p) = trained();
        let text = p.to_text();
        let back = WidthPredictor::from_text(&text).unwrap();
        assert_eq!(
            back.predict_segments(&bench).unwrap(),
            p.predict_segments(&bench).unwrap()
        );
        assert_eq!(back.feature_set(), p.feature_set());
    }

    #[test]
    fn round_trip_preserves_metrics() {
        let (bench, golden, p) = trained();
        let back = WidthPredictor::from_text(&p.to_text()).unwrap();
        let m1 = p.evaluate(&bench, &golden).unwrap();
        let m2 = back.evaluate(&bench, &golden).unwrap();
        assert_eq!(m1.r2, m2.r2);
        assert_eq!(m1.mse_um2, m2.mse_um2);
    }

    #[test]
    fn bad_inputs_rejected() {
        let (_, _, p) = trained();
        let text = p.to_text();
        assert!(WidthPredictor::from_text("nonsense").is_err());
        assert!(WidthPredictor::from_text(&text.replace("v1", "v7")).is_err());
        assert!(WidthPredictor::from_text(&text[..text.len() / 2]).is_err());
        let one_dir = text.replace("direction horizontal", "direction sideways");
        assert!(WidthPredictor::from_text(&one_dir).is_err());
    }
}

//! Width-surrogate backends: MLP rows vs spatial maps behind one API.
//!
//! The paper's model is a per-segment MLP, but nothing downstream of
//! training cares how widths are produced — the flow, the bundle, and
//! the serving registry only need *predict widths for this benchmark*.
//! [`BackendModel`] is that seam: a closed enum over the row-oriented
//! [`WidthPredictor`] and the map-oriented [`SpatialPredictor`], tagged
//! with a versioned [`BackendKind`] and an [`InputSpec`] so persisted
//! artifacts can say exactly what they contain.

use ppdl_netlist::SyntheticBenchmark;
use ppdl_nn::TrainReport;

use crate::spatial::{SpatialArch, SpatialPredictor, FEATURE_CHANNELS};
use crate::{CoreError, PredictorConfig, TrainSummary, WidthMetrics, WidthPredictor};

/// Which surrogate architecture a model uses — the selectable backend
/// axis of the transfer-matrix experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// The paper's per-segment MLP (one model per strap direction).
    #[default]
    Mlp,
    /// Full-resolution convolutional map regressor.
    Cnn,
    /// One-level convolutional encoder-decoder map regressor.
    EncoderDecoder,
}

impl BackendKind {
    /// All backends, in bundle-tag order.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::Mlp,
        BackendKind::Cnn,
        BackendKind::EncoderDecoder,
    ];

    /// Stable persistence / wire tag.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            BackendKind::Mlp => "mlp",
            BackendKind::Cnn => "cnn",
            BackendKind::EncoderDecoder => "encdec",
        }
    }

    /// Table-friendly label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Mlp => "MLP",
            BackendKind::Cnn => "CNN",
            BackendKind::EncoderDecoder => "Encoder-decoder",
        }
    }

    /// Parses a [`tag`](Self::tag).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an unknown tag.
    pub fn parse(tag: &str) -> crate::Result<Self> {
        match tag {
            "mlp" => Ok(BackendKind::Mlp),
            "cnn" => Ok(BackendKind::Cnn),
            "encdec" => Ok(BackendKind::EncoderDecoder),
            other => Err(CoreError::InvalidConfig {
                detail: format!("unknown backend '{other}' (mlp|cnn|encdec)"),
            }),
        }
    }
}

/// What a backend consumes per benchmark: per-segment feature rows or
/// channel-major raster maps. Persisted alongside the backend tag so a
/// loader can reject a bundle whose payload does not match its label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputSpec {
    /// One row per segment, `features` columns wide.
    Rows {
        /// Feature columns per row.
        features: usize,
    },
    /// One channel-major `c × h × w` raster per benchmark.
    Maps {
        /// Channels.
        c: usize,
        /// Map height.
        h: usize,
        /// Map width.
        w: usize,
    },
}

impl InputSpec {
    /// The persistence encoding (`rows <n>` / `maps <c> <h> <w>`).
    #[must_use]
    pub fn encode(self) -> String {
        match self {
            InputSpec::Rows { features } => format!("rows {features}"),
            InputSpec::Maps { c, h, w } => format!("maps {c} {h} {w}"),
        }
    }

    /// Parses an [`encode`](Self::encode) string.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a malformed spec.
    pub fn parse(text: &str) -> crate::Result<Self> {
        let bad = || CoreError::InvalidConfig {
            detail: format!("invalid input spec '{text}' (rows <n> | maps <c> <h> <w>)"),
        };
        let fields: Vec<&str> = text.split_whitespace().collect();
        match fields.as_slice() {
            ["rows", n] => Ok(InputSpec::Rows {
                features: n.parse().map_err(|_| bad())?,
            }),
            ["maps", c, h, w] => Ok(InputSpec::Maps {
                c: c.parse().map_err(|_| bad())?,
                h: h.parse().map_err(|_| bad())?,
                w: w.parse().map_err(|_| bad())?,
            }),
            _ => Err(bad()),
        }
    }
}

impl std::fmt::Display for InputSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InputSpec::Rows { features } => write!(f, "rows({features})"),
            InputSpec::Maps { c, h, w } => write!(f, "maps({c}x{h}x{w})"),
        }
    }
}

/// A trained width surrogate of any backend kind, behind the prediction
/// API the flow, bundle, and service consume.
#[derive(Debug, Clone)]
pub enum BackendModel {
    /// Row-oriented per-segment MLP (the paper's model).
    Rows(WidthPredictor),
    /// Map-oriented spatial surrogate (CNN or encoder-decoder).
    Spatial(SpatialPredictor),
}

impl BackendModel {
    /// Trains the selected backend on a benchmark and its golden
    /// widths.
    ///
    /// The spatial backends train one network (there is no per-direction
    /// split — directions are map channels), so their [`TrainSummary`]
    /// carries the single report in the `vertical` slot and an empty
    /// `horizontal` report.
    ///
    /// # Errors
    ///
    /// Propagates the backend's training errors.
    pub fn train(
        bench: &SyntheticBenchmark,
        golden_widths: &[f64],
        kind: BackendKind,
        config: &PredictorConfig,
    ) -> crate::Result<(Self, TrainSummary)> {
        match kind {
            BackendKind::Mlp => {
                let (p, summary) = WidthPredictor::train(bench, golden_widths, config.clone())?;
                Ok((BackendModel::Rows(p), summary))
            }
            BackendKind::Cnn | BackendKind::EncoderDecoder => {
                let arch = if kind == BackendKind::Cnn {
                    SpatialArch::Cnn
                } else {
                    SpatialArch::EncoderDecoder
                };
                let (p, report) = SpatialPredictor::train(bench, golden_widths, arch, config)?;
                Ok((
                    BackendModel::Spatial(p),
                    TrainSummary {
                        vertical: report,
                        horizontal: TrainReport {
                            train_losses: Vec::new(),
                            val_losses: Vec::new(),
                            epochs_run: 0,
                            early_stopped: false,
                        },
                    },
                ))
            }
        }
    }

    /// Which backend this model is.
    #[must_use]
    pub fn kind(&self) -> BackendKind {
        match self {
            BackendModel::Rows(_) => BackendKind::Mlp,
            BackendModel::Spatial(p) => match p.arch() {
                SpatialArch::Cnn => BackendKind::Cnn,
                SpatialArch::EncoderDecoder => BackendKind::EncoderDecoder,
            },
        }
    }

    /// The input geometry this model consumes.
    #[must_use]
    pub fn input_spec(&self) -> InputSpec {
        match self {
            BackendModel::Rows(p) => InputSpec::Rows {
                features: p.feature_set().width(),
            },
            BackendModel::Spatial(p) => InputSpec::Maps {
                c: FEATURE_CHANNELS,
                h: p.map_size(),
                w: p.map_size(),
            },
        }
    }

    /// The configured minimum width clamp (µm).
    #[must_use]
    pub fn min_width(&self) -> f64 {
        match self {
            BackendModel::Rows(p) => p.min_width(),
            BackendModel::Spatial(p) => p.min_width(),
        }
    }

    /// The row-oriented predictor, when this is the MLP backend.
    #[must_use]
    pub fn as_rows(&self) -> Option<&WidthPredictor> {
        match self {
            BackendModel::Rows(p) => Some(p),
            BackendModel::Spatial(_) => None,
        }
    }

    /// The spatial predictor, when this is a spatial backend.
    #[must_use]
    pub fn as_spatial(&self) -> Option<&SpatialPredictor> {
        match self {
            BackendModel::Rows(_) => None,
            BackendModel::Spatial(p) => Some(p),
        }
    }

    /// Checks the model's internal shape invariants.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BundleMismatch`].
    pub fn validate_shapes(&self) -> crate::Result<()> {
        match self {
            BackendModel::Rows(p) => p.validate_shapes(),
            BackendModel::Spatial(p) => p.validate_shapes(),
        }
    }

    /// Predicts a width for every segment of `bench`, in µm.
    ///
    /// # Errors
    ///
    /// Propagates the backend's prediction errors.
    pub fn predict_segments(&self, bench: &SyntheticBenchmark) -> crate::Result<Vec<f64>> {
        match self {
            BackendModel::Rows(p) => p.predict_segments(bench),
            BackendModel::Spatial(p) => p.predict_segments(bench),
        }
    }

    /// Predicts per-strap widths (segment mean per strap).
    ///
    /// # Errors
    ///
    /// Propagates the backend's prediction errors.
    pub fn predict_strap_widths(&self, bench: &SyntheticBenchmark) -> crate::Result<Vec<f64>> {
        self.predict_strap_widths_sampled(bench, 1)
    }

    /// Per-strap widths from every `stride`-th segment of each strap —
    /// the timed inference path's subsampling contract.
    ///
    /// # Errors
    ///
    /// Propagates the backend's prediction errors.
    pub fn predict_strap_widths_sampled(
        &self,
        bench: &SyntheticBenchmark,
        stride: usize,
    ) -> crate::Result<Vec<f64>> {
        match self {
            BackendModel::Rows(p) => p.predict_strap_widths_sampled(bench, stride),
            BackendModel::Spatial(p) => p.predict_strap_widths_sampled(bench, stride),
        }
    }

    /// Evaluates against golden widths at segment granularity.
    ///
    /// # Errors
    ///
    /// Propagates prediction and metric errors.
    pub fn evaluate(
        &self,
        bench: &SyntheticBenchmark,
        golden_widths: &[f64],
    ) -> crate::Result<WidthMetrics> {
        match self {
            BackendModel::Rows(p) => p.evaluate(bench, golden_widths),
            BackendModel::Spatial(p) => p.evaluate(bench, golden_widths),
        }
    }

    /// Paired (golden, predicted) segment widths — the Fig. 7 scatter
    /// data, for any backend.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors, and rejects a golden vector that
    /// does not have one entry per strap.
    pub fn scatter_data(
        &self,
        bench: &SyntheticBenchmark,
        golden_widths: &[f64],
    ) -> crate::Result<Vec<(f64, f64)>> {
        match self {
            BackendModel::Rows(p) => p.scatter_data(bench, golden_widths),
            BackendModel::Spatial(p) => {
                if golden_widths.len() != bench.straps().len() {
                    return Err(CoreError::InvalidConfig {
                        detail: format!(
                            "{} golden widths for {} straps",
                            golden_widths.len(),
                            bench.straps().len()
                        ),
                    });
                }
                let predicted = p.predict_segments(bench)?;
                Ok(bench
                    .segments()
                    .iter()
                    .zip(&predicted)
                    .map(|(seg, w)| (golden_widths[seg.strap], *w))
                    .collect())
            }
        }
    }

    /// Serialises the model in its backend's versioned text format
    /// (`ppdl-width-predictor v1` or `ppdl-spatial v1`).
    #[must_use]
    pub fn to_text(&self) -> String {
        match self {
            BackendModel::Rows(p) => p.to_text(),
            BackendModel::Spatial(p) => p.to_text(),
        }
    }

    /// Parses either backend text format, branching on the header line.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BundleMismatch`] for an unknown header and
    /// propagates the backend codec's errors.
    pub fn from_text(text: &str) -> crate::Result<Self> {
        let header = text.lines().next().unwrap_or_default().trim();
        match header {
            "ppdl-width-predictor v1" => Ok(BackendModel::Rows(WidthPredictor::from_text(text)?)),
            "ppdl-spatial v1" => Ok(BackendModel::Spatial(SpatialPredictor::from_text(text)?)),
            other => Err(CoreError::BundleMismatch {
                detail: format!("unknown model header '{other}'"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConventionalFlow;
    use ppdl_netlist::IbmPgPreset;

    fn sized() -> (SyntheticBenchmark, Vec<f64>) {
        let prepared = crate::experiment::prepare(IbmPgPreset::Ibmpg2, 0.008, 11, 2.5).unwrap();
        let (sized, res) = ConventionalFlow::new(crate::ConventionalConfig {
            ir_margin_fraction: prepared.margin_fraction,
            ..crate::ConventionalConfig::default()
        })
        .run(&prepared.bench)
        .unwrap();
        (sized, res.widths)
    }

    #[test]
    fn tags_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.tag()).unwrap(), kind);
        }
        assert!(BackendKind::parse("transformer").is_err());
    }

    #[test]
    fn input_specs_round_trip() {
        for spec in [
            InputSpec::Rows { features: 3 },
            InputSpec::Maps { c: 2, h: 8, w: 8 },
        ] {
            assert_eq!(InputSpec::parse(&spec.encode()).unwrap(), spec);
        }
        assert!(InputSpec::parse("rows").is_err());
        assert!(InputSpec::parse("maps 2 8").is_err());
        assert!(InputSpec::parse("tensors 1 2 3").is_err());
    }

    #[test]
    fn every_backend_trains_and_round_trips() {
        let (bench, golden) = sized();
        let config = PredictorConfig::fast();
        for kind in BackendKind::ALL {
            let (model, summary) = BackendModel::train(&bench, &golden, kind, &config).unwrap();
            assert_eq!(model.kind(), kind);
            assert!(summary.total_epochs() > 0, "{kind:?} ran no epochs");
            model.validate_shapes().unwrap();
            let widths = model.predict_strap_widths(&bench).unwrap();
            assert_eq!(widths.len(), bench.straps().len());
            assert!(widths.iter().all(|w| *w >= config.min_width));
            let m = model.evaluate(&bench, &golden).unwrap();
            assert!(m.r2.is_finite(), "{kind:?} r2 not finite");
            let pairs = model.scatter_data(&bench, &golden).unwrap();
            assert_eq!(pairs.len(), bench.segments().len());

            let text = model.to_text();
            let back = BackendModel::from_text(&text).unwrap();
            assert_eq!(back.kind(), kind);
            assert_eq!(back.to_text(), text);
            assert_eq!(
                back.predict_segments(&bench).unwrap(),
                model.predict_segments(&bench).unwrap()
            );
            match kind {
                BackendKind::Mlp => {
                    assert!(model.as_rows().is_some());
                    assert!(matches!(
                        model.input_spec(),
                        InputSpec::Rows { features: 3 }
                    ));
                }
                _ => {
                    assert!(model.as_spatial().is_some());
                    assert_eq!(
                        model.input_spec(),
                        InputSpec::Maps {
                            c: FEATURE_CHANNELS,
                            h: config.map_size,
                            w: config.map_size
                        }
                    );
                }
            }
        }
    }

    #[test]
    fn unknown_model_header_rejected() {
        assert!(matches!(
            BackendModel::from_text("ppdl-transformer v1\n"),
            Err(CoreError::BundleMismatch { .. })
        ));
    }
}

//! Test-set generation by perturbation (§IV-D).
//!
//! The paper validates on "new" designs obtained by perturbing the
//! training designs: branch currents / node voltages / switching
//! currents are changed by a perturbation size γ (10 % in the headline
//! experiments, swept to 30 % in Fig. 9).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ppdl_netlist::SyntheticBenchmark;

use crate::CoreError;

/// Which quantities the perturbation touches — the three series of
/// Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PerturbationKind {
    /// Perturb the supply (node) voltages only.
    NodeVoltages,
    /// Perturb the load ("current workload") values only.
    CurrentWorkloads,
    /// Perturb both.
    Both,
}

impl PerturbationKind {
    /// All kinds, in Fig. 9 legend order.
    pub const ALL: [PerturbationKind; 3] = [
        PerturbationKind::NodeVoltages,
        PerturbationKind::CurrentWorkloads,
        PerturbationKind::Both,
    ];

    /// Legend label used by the figure harness.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PerturbationKind::NodeVoltages => "Perturbation in node voltages",
            PerturbationKind::CurrentWorkloads => "Perturbation in current workloads",
            PerturbationKind::Both => "Perturbation in both",
        }
    }
}

/// A seeded perturbation of size γ.
///
/// Each touched value is *changed by* γ — multiplied by `1 ± γ` with an
/// independent random sign — matching the paper's wording ("changing
/// the branch current, node voltage, and switching current … by a
/// γ = 10%"). The supply voltage gets a single common sign (it is one
/// rail), so a γ-perturbation always moves every touched quantity by
/// exactly γ, making the Fig. 9 sweep monotone in expectation.
///
/// # Example
///
/// ```
/// use ppdl_core::{Perturbation, PerturbationKind};
/// use ppdl_netlist::{IbmPgPreset, SyntheticBenchmark};
///
/// let bench = SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg1, 0.01, 3).unwrap();
/// let p = Perturbation::new(0.10, PerturbationKind::CurrentWorkloads, 99).unwrap();
/// let test_bench = p.apply(&bench).unwrap();
/// // Loads moved, sources untouched.
/// assert_ne!(
///     test_bench.network().total_load_current(),
///     bench.network().total_load_current()
/// );
/// assert_eq!(
///     test_bench.network().supply_voltage(),
///     bench.network().supply_voltage()
/// );
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Perturbation {
    gamma: f64,
    kind: PerturbationKind,
    seed: u64,
}

impl Perturbation {
    /// Creates a perturbation of size `gamma` ∈ `(0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for γ outside `(0, 1)`.
    pub fn new(gamma: f64, kind: PerturbationKind, seed: u64) -> crate::Result<Self> {
        if !(gamma > 0.0 && gamma < 1.0) {
            return Err(CoreError::InvalidConfig {
                detail: format!("perturbation size {gamma} outside (0, 1)"),
            });
        }
        Ok(Self { gamma, kind, seed })
    }

    /// The perturbation size γ.
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// What the perturbation touches.
    #[must_use]
    pub fn kind(&self) -> PerturbationKind {
        self.kind
    }

    /// The seed driving the perturbation's random signs.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Applies the perturbation to a copy of `bench`.
    ///
    /// # Errors
    ///
    /// Propagates netlist mutation errors (cannot occur for factors in
    /// `[1 − γ, 1 + γ]` with γ < 1, but surfaced rather than swallowed).
    pub fn apply(&self, bench: &SyntheticBenchmark) -> crate::Result<SyntheticBenchmark> {
        let mut out = bench.clone();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let factor = |rng: &mut StdRng| {
            if rng.gen_bool(0.5) {
                1.0 + self.gamma
            } else {
                1.0 - self.gamma
            }
        };
        if matches!(
            self.kind,
            PerturbationKind::CurrentWorkloads | PerturbationKind::Both
        ) {
            let loads: Vec<f64> = out
                .network()
                .current_loads()
                .iter()
                .map(|l| l.amps * factor(&mut rng))
                .collect();
            for (i, amps) in loads.iter().enumerate() {
                out.network_mut().set_load_current(i, *amps)?;
            }
        }
        if matches!(
            self.kind,
            PerturbationKind::NodeVoltages | PerturbationKind::Both
        ) {
            // One factor for the whole supply: the package delivers a
            // common rail, so a node-voltage perturbation is a global
            // supply-level shift. (Per-source jitter would make the
            // "drop below Vdd" metric reflect the jitter spread rather
            // than grid resistance.)
            let f = factor(&mut rng);
            let volts: Vec<f64> = out
                .network()
                .voltage_sources()
                .iter()
                .map(|s| s.volts * f)
                .collect();
            for (i, v) in volts.iter().enumerate() {
                out.network_mut().set_source_voltage(i, *v)?;
            }
        }
        Ok(out)
    }
}

/// Evaluates many perturbations of the same benchmark, in parallel
/// across the thread pool configured through [`ppdl_solver::parallel`].
///
/// Each point applies its perturbation to a private copy of `bench` and
/// runs `eval` on the result; the return vector is in input order, one
/// entry per perturbation. Every point's work is independent of how the
/// points are scheduled, so the results are identical at any thread
/// count. This is the engine behind γ-sweep studies like Fig. 9.
///
/// # Example
///
/// ```
/// use ppdl_core::{run_perturbation_sweep, Perturbation, PerturbationKind};
/// use ppdl_netlist::{IbmPgPreset, SyntheticBenchmark};
///
/// let bench = SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg1, 0.01, 3).unwrap();
/// let points: Vec<Perturbation> = [0.1, 0.2, 0.3]
///     .iter()
///     .map(|&g| Perturbation::new(g, PerturbationKind::CurrentWorkloads, 7).unwrap())
///     .collect();
/// let totals = run_perturbation_sweep(&bench, &points, |perturbed, _| {
///     Ok(perturbed.network().total_load_current())
/// });
/// assert_eq!(totals.len(), 3);
/// ```
pub fn run_perturbation_sweep<R, F>(
    bench: &SyntheticBenchmark,
    perturbations: &[Perturbation],
    eval: F,
) -> Vec<crate::Result<R>>
where
    R: Send,
    F: Fn(&SyntheticBenchmark, &Perturbation) -> crate::Result<R> + Sync,
{
    // ppdl-lint: allow(determinism/tainted-parallel) -- apply() seeds StdRng from the perturbation's own seed field, so every item is bitwise deterministic regardless of scheduling (tests::deterministic_per_seed)
    ppdl_solver::parallel::par_map_vec(perturbations, |_, p| {
        let perturbed = p.apply(bench)?;
        eval(&perturbed, p)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdl_netlist::IbmPgPreset;

    fn bench() -> SyntheticBenchmark {
        SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg1, 0.01, 4).unwrap()
    }

    #[test]
    fn gamma_bounds_enforced() {
        assert!(Perturbation::new(0.0, PerturbationKind::Both, 1).is_err());
        assert!(Perturbation::new(1.0, PerturbationKind::Both, 1).is_err());
        assert!(Perturbation::new(0.1, PerturbationKind::Both, 1).is_ok());
    }

    #[test]
    fn deterministic_per_seed() {
        let b = bench();
        let p = Perturbation::new(0.2, PerturbationKind::Both, 7).unwrap();
        let a = p.apply(&b).unwrap();
        let c = p.apply(&b).unwrap();
        assert_eq!(
            a.network().total_load_current(),
            c.network().total_load_current()
        );
        let other = Perturbation::new(0.2, PerturbationKind::Both, 8)
            .unwrap()
            .apply(&b)
            .unwrap();
        assert_ne!(
            a.network().total_load_current(),
            other.network().total_load_current()
        );
    }

    #[test]
    fn factors_stay_in_band() {
        let b = bench();
        let gamma = 0.25;
        let p = Perturbation::new(gamma, PerturbationKind::Both, 3).unwrap();
        let out = p.apply(&b).unwrap();
        for (new, old) in out
            .network()
            .current_loads()
            .iter()
            .zip(b.network().current_loads())
        {
            // The multiply-then-divide round trip can land one ulp
            // outside the band, so allow the same 1e-12 slack as the
            // `perturbation_moves_by_exactly_gamma` property.
            let f = new.amps / old.amps;
            assert!(
                f >= 1.0 - gamma - 1e-12 && f <= 1.0 + gamma + 1e-12,
                "factor {f}"
            );
        }
        for (new, old) in out
            .network()
            .voltage_sources()
            .iter()
            .zip(b.network().voltage_sources())
        {
            let f = new.volts / old.volts;
            assert!(f >= 1.0 - gamma - 1e-12 && f <= 1.0 + gamma + 1e-12);
        }
    }

    #[test]
    fn kinds_touch_only_their_targets() {
        let b = bench();
        let volts_only = Perturbation::new(0.3, PerturbationKind::NodeVoltages, 5)
            .unwrap()
            .apply(&b)
            .unwrap();
        assert_eq!(
            volts_only.network().total_load_current(),
            b.network().total_load_current()
        );
        assert_ne!(
            volts_only.network().voltage_sources()[0].volts,
            b.network().voltage_sources()[0].volts
        );

        let loads_only = Perturbation::new(0.3, PerturbationKind::CurrentWorkloads, 5)
            .unwrap()
            .apply(&b)
            .unwrap();
        assert_eq!(
            loads_only.network().voltage_sources()[0].volts,
            b.network().voltage_sources()[0].volts
        );
    }

    #[test]
    fn original_untouched() {
        let b = bench();
        let before = b.network().total_load_current();
        let _ = Perturbation::new(0.3, PerturbationKind::Both, 5)
            .unwrap()
            .apply(&b)
            .unwrap();
        assert_eq!(b.network().total_load_current(), before);
    }

    #[test]
    fn sweep_matches_sequential_application() {
        let b = bench();
        let points: Vec<Perturbation> = [0.1, 0.2, 0.3]
            .iter()
            .map(|&g| Perturbation::new(g, PerturbationKind::Both, 11).unwrap())
            .collect();
        let swept = run_perturbation_sweep(&b, &points, |perturbed, p| {
            Ok((p.gamma(), perturbed.network().total_load_current()))
        });
        assert_eq!(swept.len(), points.len());
        for (res, p) in swept.into_iter().zip(&points) {
            let (gamma, total) = res.unwrap();
            assert_eq!(gamma, p.gamma());
            let expected = p.apply(&b).unwrap().network().total_load_current();
            assert_eq!(total, expected, "sweep must match direct application");
        }
    }

    /// One failing evaluation point must land as `Err` in its own slot
    /// while every other point still returns `Ok` — and the whole
    /// result vector (including which slot failed and the surviving
    /// values, bit for bit) must not depend on the thread count.
    #[test]
    fn one_failing_point_is_isolated_to_its_slot() {
        use ppdl_solver::parallel::DEFAULT_PAR_THRESHOLD;
        use ppdl_solver::{set_par_threshold, set_threads};

        let b = bench();
        let points: Vec<Perturbation> = [0.1, 0.2, 0.3, 0.4]
            .iter()
            .map(|&g| Perturbation::new(g, PerturbationKind::Both, 11).unwrap())
            .collect();
        let failing_gamma = points[2].gamma();
        let sweep = |threads: usize| {
            set_threads(threads);
            set_par_threshold(1);
            let out = run_perturbation_sweep(&b, &points, |perturbed, p| {
                if p.gamma() == failing_gamma {
                    Err(crate::CoreError::InvalidConfig {
                        detail: format!("injected failure at gamma {}", p.gamma()),
                    })
                } else {
                    Ok(perturbed.network().total_load_current())
                }
            });
            set_threads(0);
            set_par_threshold(DEFAULT_PAR_THRESHOLD);
            out
        };

        let one = sweep(1);
        let four = sweep(4);
        for results in [&one, &four] {
            assert_eq!(results.len(), points.len());
            for (i, slot) in results.iter().enumerate() {
                if i == 2 {
                    let err = slot.as_ref().unwrap_err();
                    assert!(
                        err.to_string().contains("injected failure"),
                        "slot 2 should carry the injected error, got {err}"
                    );
                } else {
                    assert!(slot.is_ok(), "slot {i} should survive the failing point");
                }
            }
        }
        for (a, b) in one.iter().zip(&four) {
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "surviving value differs between 1 and 4 threads"
                ),
                (Err(x), Err(y)) => assert_eq!(x.to_string(), y.to_string()),
                _ => panic!("slot outcome flipped with the thread count"),
            }
        }
    }

    #[test]
    fn labels_match_figure_legend() {
        assert_eq!(PerturbationKind::ALL.len(), 3);
        assert!(PerturbationKind::Both.label().contains("both"));
    }
}

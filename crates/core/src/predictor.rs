//! Problem 1 / Algorithm 1: the deep-learning width predictor.
//!
//! One MLP regressor is trained per strap direction: a die location
//! `(X, Y)` is crossed by both a vertical and a horizontal strap whose
//! widths are set independently, so a single `(X, Y, Id) → w` model
//! would face two conflicting targets at the same input. Each
//! direction's model is exactly the paper's architecture (10 hidden
//! layers, Adam, MSE on standardised targets).

use ppdl_netlist::{Orientation, SyntheticBenchmark};
use ppdl_nn::{
    metrics, Activation, Dataset, Matrix, Mlp, MlpBuilder, StandardScaler, TrainConfig,
    TrainReport, Trainer,
};

use crate::{CoreError, FeatureExtractor, FeatureSet};

/// Configuration of the width-prediction model.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorConfig {
    /// Which input features to use (§IV-B; `Combined` is the paper's
    /// choice).
    pub feature_set: FeatureSet,
    /// Number of hidden layers — 10 in the paper, found by
    /// hyperparameter optimisation.
    pub hidden_layers: usize,
    /// Width of each hidden layer.
    pub hidden_width: usize,
    /// Hidden activation.
    pub activation: Activation,
    /// Training hyperparameters (Adam + MSE per the paper).
    pub train: TrainConfig,
    /// Weight-initialisation seed.
    pub seed: u64,
    /// Lower clamp on predicted widths (µm) so downstream geometry
    /// stays physical.
    pub min_width: f64,
    /// Side length of the S×S raster grid the spatial backends
    /// (CNN / encoder-decoder) see; ignored by the MLP backend.
    pub map_size: usize,
    /// Channel width of the spatial backends' convolution stacks;
    /// ignored by the MLP backend.
    pub conv_channels: usize,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            feature_set: FeatureSet::Combined,
            hidden_layers: 10,
            hidden_width: 24,
            activation: Activation::Relu,
            // No validation split / early stopping by default: the
            // golden widths are deterministic labels, so the only risk
            // is underfitting — on small benchmarks a noisy few-sample
            // validation set stops training long before convergence.
            train: TrainConfig {
                epochs: 250,
                batch_size: 64,
                learning_rate: 2e-3,
                validation_split: 0.0,
                patience: 0,
                ..TrainConfig::default()
            },
            seed: 1,
            min_width: 0.1,
            map_size: 16,
            conv_channels: 8,
        }
    }
}

impl PredictorConfig {
    /// A reduced configuration (3 hidden layers, short training) for
    /// tests and doc examples.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            hidden_layers: 3,
            hidden_width: 16,
            train: TrainConfig {
                epochs: 100,
                batch_size: 64,
                learning_rate: 5e-3,
                validation_split: 0.0,
                patience: 0,
                ..TrainConfig::default()
            },
            map_size: 8,
            conv_channels: 4,
            ..Self::default()
        }
    }
}

/// Quality metrics of the width prediction — the Table V / Fig. 7
/// numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WidthMetrics {
    /// r² score (Definition 1).
    pub r2: f64,
    /// Mean squared error on standardised targets (the dimensionless
    /// Table V column).
    pub mse_scaled: f64,
    /// Mean squared error in µm².
    pub mse_um2: f64,
    /// Pearson correlation of predicted vs golden widths (Fig. 7(a)).
    pub correlation: f64,
}

/// Per-direction training reports.
#[derive(Debug, Clone)]
pub struct TrainSummary {
    /// Report of the vertical-strap model.
    pub vertical: TrainReport,
    /// Report of the horizontal-strap model.
    pub horizontal: TrainReport,
}

impl TrainSummary {
    /// Total epochs run across both models.
    #[must_use]
    pub fn total_epochs(&self) -> usize {
        self.vertical.epochs_run + self.horizontal.epochs_run
    }

    /// The final training loss, averaged over the two models.
    #[must_use]
    pub fn final_loss(&self) -> f64 {
        let v = self.vertical.train_losses.last().copied().unwrap_or(0.0);
        let h = self.horizontal.train_losses.last().copied().unwrap_or(0.0);
        (v + h) / 2.0
    }
}

#[derive(Debug, Clone)]
pub(crate) struct DirectionModel {
    pub(crate) model: Mlp,
    pub(crate) feature_scaler: StandardScaler,
    pub(crate) target_scaler: StandardScaler,
}

impl DirectionModel {
    fn train(
        x: &Matrix,
        y: &Matrix,
        config: &PredictorConfig,
        seed_offset: u64,
    ) -> crate::Result<(Self, TrainReport)> {
        let feature_scaler = StandardScaler::fit(x)?;
        let target_scaler = StandardScaler::fit(y)?;
        let data = Dataset::new(feature_scaler.transform(x)?, target_scaler.transform(y)?)?;
        let mut model = MlpBuilder::new(config.feature_set.width())
            .hidden_stack(config.hidden_layers, config.hidden_width, config.activation)
            .output(1)
            .seed(config.seed.wrapping_add(seed_offset))
            .build()?;
        let report = Trainer::new(config.train.clone()).fit(&mut model, &data)?;
        Ok((
            Self {
                model,
                feature_scaler,
                target_scaler,
            },
            report,
        ))
    }

    fn predict(&self, x: &Matrix) -> crate::Result<Vec<f64>> {
        let scaled = self.model.predict(&self.feature_scaler.transform(x)?)?;
        Ok(self
            .target_scaler
            .inverse_transform(&scaled)?
            .as_slice()
            .to_vec())
    }
}

/// A trained width predictor: one MLP per strap direction, together
/// with the scalers that standardised inputs and targets.
///
/// # Example
///
/// ```
/// use ppdl_core::{experiment, ConventionalConfig, ConventionalFlow, PredictorConfig, WidthPredictor};
/// use ppdl_netlist::IbmPgPreset;
///
/// let prepared = experiment::prepare(IbmPgPreset::Ibmpg2, 0.006, 3, 2.5).unwrap();
/// let (sized, golden) = ConventionalFlow::new(ConventionalConfig {
///     ir_margin_fraction: prepared.margin_fraction,
///     ..ConventionalConfig::default()
/// })
/// .run(&prepared.bench)
/// .unwrap();
/// let (predictor, _report) =
///     WidthPredictor::train(&sized, &golden.widths, PredictorConfig::fast()).unwrap();
/// let m = predictor.evaluate(&sized, &golden.widths).unwrap();
/// assert!(m.r2 > 0.5, "r2 = {}", m.r2);
/// ```
#[derive(Debug, Clone)]
pub struct WidthPredictor {
    vertical: DirectionModel,
    horizontal: DirectionModel,
    feature_set: FeatureSet,
    min_width: f64,
}

impl WidthPredictor {
    /// Trains a predictor on a benchmark and its golden widths.
    ///
    /// # Errors
    ///
    /// Propagates dataset construction and training errors, and
    /// [`CoreError::InvalidConfig`] for a zero-layer configuration.
    pub fn train(
        bench: &SyntheticBenchmark,
        golden_widths: &[f64],
        config: PredictorConfig,
    ) -> crate::Result<(Self, TrainSummary)> {
        if config.hidden_layers == 0 || config.hidden_width == 0 {
            return Err(CoreError::InvalidConfig {
                detail: "predictor needs at least one hidden unit".into(),
            });
        }
        let extractor = FeatureExtractor::new(config.feature_set);
        let raw_x = extractor.raw_features(bench);
        let raw_y = extractor.raw_targets(bench, golden_widths)?;

        let (vi, hi) = partition_by_orientation(bench);
        if vi.is_empty() || hi.is_empty() {
            return Err(CoreError::InvalidConfig {
                detail: "benchmark must have segments in both directions".into(),
            });
        }
        let (vertical, vrep) =
            DirectionModel::train(&raw_x.gather_rows(&vi), &raw_y.gather_rows(&vi), &config, 0)?;
        let (horizontal, hrep) = DirectionModel::train(
            &raw_x.gather_rows(&hi),
            &raw_y.gather_rows(&hi),
            &config,
            0x5eed,
        )?;
        Ok((
            Self {
                vertical,
                horizontal,
                feature_set: config.feature_set,
                min_width: config.min_width,
            },
            TrainSummary {
                vertical: vrep,
                horizontal: hrep,
            },
        ))
    }

    /// The trained per-direction networks, `(vertical, horizontal)`.
    #[must_use]
    pub fn models(&self) -> (&Mlp, &Mlp) {
        (&self.vertical.model, &self.horizontal.model)
    }

    /// The configured minimum width clamp (µm).
    #[must_use]
    pub fn min_width(&self) -> f64 {
        self.min_width
    }

    pub(crate) fn vertical_model(&self) -> &DirectionModel {
        &self.vertical
    }

    pub(crate) fn horizontal_model(&self) -> &DirectionModel {
        &self.horizontal
    }

    pub(crate) fn from_parts(
        vertical: DirectionModel,
        horizontal: DirectionModel,
        feature_set: FeatureSet,
        min_width: f64,
    ) -> Self {
        Self {
            vertical,
            horizontal,
            feature_set,
            min_width,
        }
    }

    /// The feature subset the models expect.
    #[must_use]
    pub fn feature_set(&self) -> FeatureSet {
        self.feature_set
    }

    /// Checks that both direction models agree with the feature set and
    /// their scalers: each MLP's input layer must be as wide as the
    /// feature set, each feature scaler as long as that input layer, and
    /// each target scaler as long as the (single-width) output layer.
    ///
    /// Persistence calls this on load so a corrupted or mismatched model
    /// file fails with a typed error instead of panicking mid-inference.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BundleMismatch`] naming the offending
    /// direction and dimensions.
    pub fn validate_shapes(&self) -> crate::Result<()> {
        let want = self.feature_set.width();
        for (tag, m) in [
            ("vertical", &self.vertical),
            ("horizontal", &self.horizontal),
        ] {
            let input = m.model.input_dim();
            if input != want {
                return Err(CoreError::BundleMismatch {
                    detail: format!(
                        "{tag} model expects {input} inputs but feature set {:?} is {want} wide",
                        self.feature_set
                    ),
                });
            }
            let scaler_len = m.feature_scaler.means().len();
            if scaler_len != input {
                return Err(CoreError::BundleMismatch {
                    detail: format!(
                        "{tag} feature scaler covers {scaler_len} columns for a \
                         {input}-input model"
                    ),
                });
            }
            let output = m.model.output_dim();
            let target_len = m.target_scaler.means().len();
            if output != 1 || target_len != output {
                return Err(CoreError::BundleMismatch {
                    detail: format!(
                        "{tag} model emits {output} outputs with a {target_len}-column \
                         target scaler; widths need exactly 1 of each"
                    ),
                });
            }
        }
        Ok(())
    }

    /// Predicts a width for every segment of `bench`, in µm, clamped
    /// to the configured minimum.
    ///
    /// # Errors
    ///
    /// Propagates shape errors (e.g. the benchmark has no segments).
    pub fn predict_segments(&self, bench: &SyntheticBenchmark) -> crate::Result<Vec<f64>> {
        let raw = FeatureExtractor::new(self.feature_set).raw_features(bench);
        let (vi, hi) = partition_by_orientation(bench);
        let mut out = vec![self.min_width; bench.segments().len()];
        for (indices, model) in [(&vi, &self.vertical), (&hi, &self.horizontal)] {
            if indices.is_empty() {
                continue;
            }
            let pred = model.predict(&raw.gather_rows(indices))?;
            for (&idx, w) in indices.iter().zip(pred) {
                out[idx] = w.max(self.min_width);
            }
        }
        Ok(out)
    }

    /// Predicts per-strap widths: the mean of the strap's segment
    /// predictions (a strap has one physical width).
    ///
    /// # Errors
    ///
    /// Propagates [`predict_segments`](Self::predict_segments) errors.
    pub fn predict_strap_widths(&self, bench: &SyntheticBenchmark) -> crate::Result<Vec<f64>> {
        self.predict_strap_widths_sampled(bench, 1)
    }

    /// Like [`predict_strap_widths`](Self::predict_strap_widths) but
    /// running inference on every `stride`-th segment of each strap
    /// (at least one per strap). A strap has a single physical width,
    /// so subsampling its segments leaves the averaged prediction
    /// essentially unchanged while cutting inference cost by `stride` —
    /// this is what the timed design flow uses.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors; `stride` of `0` is treated as 1.
    pub fn predict_strap_widths_sampled(
        &self,
        bench: &SyntheticBenchmark,
        stride: usize,
    ) -> crate::Result<Vec<f64>> {
        let stride = stride.max(1);
        let raw = FeatureExtractor::new(self.feature_set);
        let n_straps = bench.straps().len();
        // Pick every stride-th segment within each strap.
        let mut picked: Vec<usize> = Vec::new();
        let mut counter = vec![0usize; n_straps];
        for (i, seg) in bench.segments().iter().enumerate() {
            if counter[seg.strap] % stride == 0 {
                picked.push(i);
            }
            counter[seg.strap] += 1;
        }
        let features = raw.raw_features_for(bench, &picked);
        let (vi, hi): (Vec<usize>, Vec<usize>) = {
            let mut v = Vec::new();
            let mut h = Vec::new();
            for (row, &si) in picked.iter().enumerate() {
                match bench.straps()[bench.segments()[si].strap].orientation {
                    Orientation::Vertical => v.push(row),
                    Orientation::Horizontal => h.push(row),
                }
            }
            (v, h)
        };
        let mut per_pick = vec![self.min_width; picked.len()];
        for (rows, model) in [(&vi, &self.vertical), (&hi, &self.horizontal)] {
            if rows.is_empty() {
                continue;
            }
            let pred = model.predict(&features.gather_rows(rows))?;
            for (&row, w) in rows.iter().zip(pred) {
                per_pick[row] = w.max(self.min_width);
            }
        }
        let mut sums = vec![0.0; n_straps];
        let mut counts = vec![0usize; n_straps];
        for (&si, w) in picked.iter().zip(&per_pick) {
            let strap = bench.segments()[si].strap;
            sums[strap] += w;
            counts[strap] += 1;
        }
        Ok(sums
            .iter()
            .zip(&counts)
            .zip(bench.straps())
            .map(|((s, c), strap)| {
                if *c > 0 {
                    (s / *c as f64).max(self.min_width)
                } else {
                    strap.width
                }
            })
            .collect())
    }

    /// Reliability-aware width prediction: the plain prediction
    /// projected onto the EM constraint of eq. 4, `I/w ≤ J_max`. Each
    /// strap's width is clamped from below by `I_strap / J_max`, where
    /// `I_strap` is the total current the strap delivers (an upper
    /// bound on any of its segment currents, so the constraint is
    /// guaranteed conservatively without an analysis).
    ///
    /// # Errors
    ///
    /// Propagates prediction errors, and rejects a non-positive
    /// `jmax`.
    pub fn predict_strap_widths_em_safe(
        &self,
        bench: &SyntheticBenchmark,
        jmax: f64,
    ) -> crate::Result<Vec<f64>> {
        if !(jmax.is_finite() && jmax > 0.0) {
            return Err(CoreError::InvalidConfig {
                detail: format!("jmax {jmax} must be positive"),
            });
        }
        let mut widths = self.predict_strap_widths(bench)?;
        // Total current per strap: loads indexed by coordinates so a
        // strap is charged for the current its vias inject regardless
        // of which layer the load card names.
        let net = bench.network();
        // BTreeMap/BTreeSet keep the float accumulations below in a
        // deterministic key order (determinism/hashmap-iter).
        let mut coord_load: std::collections::BTreeMap<(i64, i64), f64> =
            std::collections::BTreeMap::new();
        for l in net.current_loads() {
            if let Some(xy) = net.node_name(l.node).coordinates() {
                *coord_load.entry(xy).or_insert(0.0) += l.amps;
            }
        }
        let mut strap_current = vec![0.0; bench.straps().len()];
        let mut counted: std::collections::BTreeSet<(usize, usize)> =
            std::collections::BTreeSet::new();
        for seg in bench.segments() {
            let r = &net.resistors()[seg.resistor];
            for id in [r.a.0, r.b.0] {
                if counted.insert((seg.strap, id)) {
                    if let Some(xy) = net.node_names()[id].coordinates() {
                        strap_current[seg.strap] += coord_load.get(&xy).copied().unwrap_or(0.0);
                    }
                }
            }
        }
        for (w, i_total) in widths.iter_mut().zip(&strap_current) {
            *w = w.max(i_total / jmax);
        }
        Ok(widths)
    }

    /// Evaluates the predictor against golden widths on (possibly
    /// perturbed) `bench`, at segment granularity.
    ///
    /// # Errors
    ///
    /// Propagates prediction and metric errors.
    pub fn evaluate(
        &self,
        bench: &SyntheticBenchmark,
        golden_widths: &[f64],
    ) -> crate::Result<WidthMetrics> {
        let predicted = self.predict_segments(bench)?;
        let golden = FeatureExtractor::new(self.feature_set).raw_targets(bench, golden_widths)?;
        let pred = Matrix::from_vec(predicted.len(), 1, predicted)?;
        let r2 = metrics::r2_score(&pred, &golden)?;
        let mse_um2 = metrics::mse(&pred, &golden)?;
        let correlation = metrics::pearson(&pred, &golden)?;
        // Scaled MSE: standardise both against the golden distribution
        // (the dimensionless error the paper's Table V reports).
        let golden_scaler = StandardScaler::fit(&golden)?;
        let mse_scaled = metrics::mse(
            &golden_scaler.transform(&pred)?,
            &golden_scaler.transform(&golden)?,
        )?;
        Ok(WidthMetrics {
            r2,
            mse_scaled,
            mse_um2,
            correlation,
        })
    }

    /// Paired (golden, predicted) segment widths — the Fig. 7 scatter
    /// and error-histogram data.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors.
    pub fn scatter_data(
        &self,
        bench: &SyntheticBenchmark,
        golden_widths: &[f64],
    ) -> crate::Result<Vec<(f64, f64)>> {
        let predicted = self.predict_segments(bench)?;
        if golden_widths.len() != bench.straps().len() {
            return Err(CoreError::InvalidConfig {
                detail: format!(
                    "{} golden widths for {} straps",
                    golden_widths.len(),
                    bench.straps().len()
                ),
            });
        }
        Ok(bench
            .segments()
            .iter()
            .zip(&predicted)
            .map(|(seg, p)| (golden_widths[seg.strap], *p))
            .collect())
    }
}

/// Segment indices split by strap orientation: `(vertical, horizontal)`.
fn partition_by_orientation(bench: &SyntheticBenchmark) -> (Vec<usize>, Vec<usize>) {
    let mut v = Vec::new();
    let mut h = Vec::new();
    for (i, seg) in bench.segments().iter().enumerate() {
        match bench.straps()[seg.strap].orientation {
            Orientation::Vertical => v.push(i),
            Orientation::Horizontal => h.push(i),
        }
    }
    (v, h)
}

/// Builds a plain (unscaled) dataset for external experimentation.
///
/// # Errors
///
/// Propagates dataset construction errors.
pub fn segment_dataset(
    bench: &SyntheticBenchmark,
    golden_widths: &[f64],
    feature_set: FeatureSet,
) -> crate::Result<Dataset> {
    let ex = FeatureExtractor::new(feature_set);
    Ok(Dataset::new(
        ex.raw_features(bench),
        ex.raw_targets(bench, golden_widths)?,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConventionalFlow;
    use ppdl_netlist::IbmPgPreset;

    fn sized() -> (SyntheticBenchmark, Vec<f64>) {
        let prepared = crate::experiment::prepare(IbmPgPreset::Ibmpg2, 0.008, 11, 2.5).unwrap();
        let (sized, res) = ConventionalFlow::new(crate::ConventionalConfig {
            ir_margin_fraction: prepared.margin_fraction,
            ..crate::ConventionalConfig::default()
        })
        .run(&prepared.bench)
        .unwrap();
        (sized, res.widths)
    }

    #[test]
    fn trains_and_fits_golden_widths() {
        let (bench, golden) = sized();
        let (p, summary) = WidthPredictor::train(&bench, &golden, PredictorConfig::fast()).unwrap();
        assert!(summary.total_epochs() > 0);
        let m = p.evaluate(&bench, &golden).unwrap();
        assert!(m.r2 > 0.7, "r2 = {}", m.r2);
        assert!(m.correlation > 0.8, "corr = {}", m.correlation);
        assert!(m.mse_um2 >= 0.0);
    }

    #[test]
    fn predictions_positive_and_one_per_segment() {
        let (bench, golden) = sized();
        let (p, _) = WidthPredictor::train(&bench, &golden, PredictorConfig::fast()).unwrap();
        let w = p.predict_segments(&bench).unwrap();
        assert_eq!(w.len(), bench.segments().len());
        assert!(w.iter().all(|v| *v >= 0.1));
    }

    #[test]
    fn strap_widths_average_segments() {
        let (bench, golden) = sized();
        let (p, _) = WidthPredictor::train(&bench, &golden, PredictorConfig::fast()).unwrap();
        let per_seg = p.predict_segments(&bench).unwrap();
        let per_strap = p.predict_strap_widths(&bench).unwrap();
        assert_eq!(per_strap.len(), bench.straps().len());
        // Manually average strap 0.
        let (mut sum, mut n) = (0.0, 0);
        for (seg, w) in bench.segments().iter().zip(&per_seg) {
            if seg.strap == 0 {
                sum += w;
                n += 1;
            }
        }
        assert!((per_strap[0] - sum / f64::from(n)).abs() < 1e-12);
    }

    #[test]
    fn scatter_pairs_golden_with_predicted() {
        let (bench, golden) = sized();
        let (p, _) = WidthPredictor::train(&bench, &golden, PredictorConfig::fast()).unwrap();
        let pts = p.scatter_data(&bench, &golden).unwrap();
        assert_eq!(pts.len(), bench.segments().len());
        for ((g, _), seg) in pts.iter().zip(bench.segments()) {
            assert_eq!(*g, golden[seg.strap]);
        }
    }

    #[test]
    fn em_safe_widths_satisfy_eq4_after_analysis() {
        use ppdl_analysis::{EmChecker, StaticAnalysis};
        let (bench, golden) = sized();
        let (p, _) = WidthPredictor::train(&bench, &golden, PredictorConfig::fast()).unwrap();
        let jmax = 0.02;
        let safe = p.predict_strap_widths_em_safe(&bench, jmax).unwrap();
        let plain = p.predict_strap_widths(&bench).unwrap();
        // Clamping only ever widens.
        for (s, q) in safe.iter().zip(&plain) {
            assert!(s >= q);
        }
        // Apply the safe widths and verify eq. 4 holds under a real
        // analysis.
        let mut sized = bench.clone();
        sized.set_strap_widths(&safe).unwrap();
        let report = StaticAnalysis::default().solve(sized.network()).unwrap();
        let em = EmChecker::new(jmax).check(&sized, &report).unwrap();
        assert!(
            em.passes(),
            "max density {} exceeds jmax {jmax}",
            em.max_density()
        );
    }

    #[test]
    fn em_safe_rejects_bad_jmax() {
        let (bench, golden) = sized();
        let (p, _) = WidthPredictor::train(&bench, &golden, PredictorConfig::fast()).unwrap();
        assert!(p.predict_strap_widths_em_safe(&bench, 0.0).is_err());
        assert!(p.predict_strap_widths_em_safe(&bench, f64::NAN).is_err());
    }

    #[test]
    fn combined_features_beat_single_features() {
        let (bench, golden) = sized();
        let mut r2s = Vec::new();
        for fs in FeatureSet::ALL {
            let cfg = PredictorConfig {
                feature_set: fs,
                ..PredictorConfig::fast()
            };
            let (p, _) = WidthPredictor::train(&bench, &golden, cfg).unwrap();
            r2s.push(p.evaluate(&bench, &golden).unwrap().r2);
        }
        let combined = r2s[3];
        // Combined should be at least as good as the best single feature
        // (Table I shows a large gap; allow slack for training noise).
        assert!(
            combined + 0.05 >= r2s[0].max(r2s[1]).max(r2s[2]),
            "r2s = {r2s:?}"
        );
    }

    #[test]
    fn invalid_config_rejected() {
        let (bench, golden) = sized();
        let cfg = PredictorConfig {
            hidden_layers: 0,
            ..PredictorConfig::fast()
        };
        assert!(matches!(
            WidthPredictor::train(&bench, &golden, cfg),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn plain_dataset_shapes() {
        let (bench, golden) = sized();
        let ds = segment_dataset(&bench, &golden, FeatureSet::Combined).unwrap();
        assert_eq!(ds.len(), bench.segments().len());
        assert_eq!(ds.x().cols(), 3);
        assert_eq!(ds.y().cols(), 1);
    }
}

//! The conventional iterative power-planning baseline (Fig. 1).
//!
//! Starting from the initial uniform widths, the loop runs a full
//! power-grid analysis, checks the IR-drop margin and the EM constraint
//! (eq. 4), widens every violating strap, and repeats until both
//! margins hold. The resulting widths are the *golden* labels the deep
//! learning model trains on, and the loop's analysis time is the
//! "conventional convergence time" of Table IV.
//!
//! In the staged experiment pipeline ([`crate::pipeline`]) this loop
//! runs inside the `feature-extract` stage, whose cached artifact
//! carries the golden widths and the loop's wall time so warm runs
//! reproduce Table IV without re-sizing.

use std::time::{Duration, Instant};

use ppdl_analysis::{AnalysisOptions, EmChecker, IrDropReport, StaticAnalysis};
use ppdl_netlist::{NodeId, SyntheticBenchmark};

use crate::CoreError;

/// Configuration of the conventional sizing loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ConventionalConfig {
    /// Allowed worst-case IR drop, as a fraction of Vdd (e.g. `0.05`
    /// allows 90 mV at 1.8 V).
    pub ir_margin_fraction: f64,
    /// Electromigration current-density limit (A/µm).
    pub jmax: f64,
    /// Multiplier applied to a violating strap's width each round.
    pub widen_factor: f64,
    /// Maximum design-loop iterations before giving up.
    pub max_iterations: usize,
    /// Upper bound on any strap width (µm) — the paper's Fig. 7 width
    /// axis tops out at 25 µm.
    pub max_width: f64,
    /// Options for the underlying analysis solves.
    pub analysis: AnalysisOptions,
}

impl Default for ConventionalConfig {
    fn default() -> Self {
        Self {
            ir_margin_fraction: 0.05,
            jmax: 0.05,
            widen_factor: 1.3,
            max_iterations: 40,
            max_width: 25.0,
            analysis: AnalysisOptions::default(),
        }
    }
}

/// Result of a conventional sizing run.
#[derive(Debug, Clone)]
pub struct ConventionalResult {
    /// The converged per-strap widths (the golden labels).
    pub widths: Vec<f64>,
    /// Design-loop iterations used (each one is a full analysis).
    pub iterations: usize,
    /// The final IR-drop report.
    pub report: IrDropReport,
    /// Final worst-case IR drop in volts.
    pub worst_ir: f64,
    /// Wall-clock time spent inside power-grid analysis (the dominant
    /// cost the paper counts as convergence time).
    pub analysis_time: Duration,
    /// Wall-clock time of one (the final) analysis solve.
    pub single_analysis_time: Duration,
}

/// The conventional iterative design flow.
///
/// # Example
///
/// ```
/// use ppdl_core::{ConventionalConfig, ConventionalFlow};
/// use ppdl_netlist::{IbmPgPreset, SyntheticBenchmark};
///
/// let bench = SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg1, 0.01, 3).unwrap();
/// let (sized, result) = ConventionalFlow::new(ConventionalConfig::default())
///     .run(&bench)
///     .unwrap();
/// assert_eq!(result.widths.len(), sized.straps().len());
/// assert!(result.worst_ir <= 0.05 * 1.8 + 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConventionalFlow {
    config: ConventionalConfig,
}

impl ConventionalFlow {
    /// Creates a flow with the given configuration.
    #[must_use]
    pub fn new(config: ConventionalConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &ConventionalConfig {
        &self.config
    }

    /// Runs the sizing loop on a copy of `bench`, returning the sized
    /// benchmark and the result record.
    ///
    /// # Errors
    ///
    /// * [`CoreError::SizingDidNotConverge`] — margins still violated
    ///   after `max_iterations` (or every violating strap is already at
    ///   `max_width`).
    /// * Analysis errors propagate.
    pub fn run(
        &self,
        bench: &SyntheticBenchmark,
    ) -> crate::Result<(SyntheticBenchmark, ConventionalResult)> {
        let c = &self.config;
        if !(c.ir_margin_fraction > 0.0 && c.ir_margin_fraction < 1.0) {
            return Err(CoreError::InvalidConfig {
                detail: format!("IR margin fraction {} outside (0, 1)", c.ir_margin_fraction),
            });
        }
        let mut sized = bench.clone();
        let vdd = sized
            .network()
            .supply_voltage()
            .ok_or(CoreError::Analysis(ppdl_analysis::AnalysisError::NoSupply))?;
        let margin = c.ir_margin_fraction * vdd;
        let analyzer = StaticAnalysis::new(c.analysis.clone());
        let em = EmChecker::new(c.jmax);

        let mut analysis_time = Duration::ZERO;
        let mut single;
        let mut last_report = None;
        let mut worst = f64::INFINITY;

        for iteration in 1..=c.max_iterations {
            // ppdl-lint: allow(determinism/wall-clock) -- times the conventional-flow iteration for Table 2; convergence is iteration-count based, not time based
            let t0 = Instant::now();
            let report = analyzer.solve(sized.network())?;
            single = t0.elapsed();
            analysis_time += single;

            worst = report.worst_drop().map_or(0.0, |(_, d)| d);
            let em_report = em.check(&sized, &report)?;

            // Attribute IR violations to straps through segment endpoints.
            let mut violating = vec![false; sized.straps().len()];
            let mut any = false;
            if worst > margin {
                for seg in sized.segments() {
                    let r = &sized.network().resistors()[seg.resistor];
                    let over = report.drop_at(NodeId(r.a.0)) > margin
                        || report.drop_at(NodeId(r.b.0)) > margin;
                    if over {
                        violating[seg.strap] = true;
                        any = true;
                    }
                }
            }
            for v in em_report.violations() {
                violating[v.strap] = true;
                any = true;
            }

            if !any {
                let widths = bench_widths(&sized);
                return Ok((
                    sized,
                    ConventionalResult {
                        widths,
                        iterations: iteration,
                        report,
                        worst_ir: worst,
                        analysis_time,
                        single_analysis_time: single,
                    },
                ));
            }

            // Widen the violators; detect saturation.
            let mut progressed = false;
            for (strap, flag) in violating.iter().enumerate() {
                if !flag {
                    continue;
                }
                let w = sized.straps()[strap].width;
                let new_w = (w * c.widen_factor).min(c.max_width);
                if new_w > w {
                    sized.set_strap_width(strap, new_w)?;
                    progressed = true;
                }
            }
            last_report = Some(report);
            if !progressed {
                break;
            }
        }

        let _ = last_report;
        Err(CoreError::SizingDidNotConverge {
            iterations: c.max_iterations,
            worst_ir: worst,
            margin,
        })
    }
}

fn bench_widths(bench: &SyntheticBenchmark) -> Vec<f64> {
    bench.strap_widths()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdl_netlist::{GridSpec, IbmPgPreset};

    /// An ibmpg2-style benchmark whose loads are calibrated so the
    /// initial design violates a 5 %-of-Vdd margin by ~2.5x — the
    /// sizing loop has real work to do.
    fn bench() -> SyntheticBenchmark {
        let mut b = SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg2, 0.005, 9).unwrap();
        crate::calibrate_to_worst_ir(&mut b, 2.5 * 0.05 * 1.8).unwrap();
        b
    }

    #[test]
    fn converges_and_meets_margin() {
        let (sized, res) = ConventionalFlow::default().run(&bench()).unwrap();
        let margin = 0.05 * 1.8;
        assert!(res.worst_ir <= margin + 1e-12);
        assert!(res.iterations > 1, "calibrated bench must need sizing");
        assert_eq!(res.widths.len(), sized.straps().len());
        // The sized benchmark's widths match the reported ones.
        assert_eq!(res.widths, sized.strap_widths());
    }

    #[test]
    fn widths_only_grow() {
        let b = bench();
        let before = b.strap_widths();
        let (_, res) = ConventionalFlow::default().run(&b).unwrap();
        for (w_after, w_before) in res.widths.iter().zip(&before) {
            assert!(w_after >= w_before);
        }
        // And at least one strap actually widened.
        assert!(res.widths.iter().zip(&before).any(|(a, b)| a > b));
    }

    #[test]
    fn tight_margin_needs_more_iterations() {
        let b = bench();
        let loose = ConventionalFlow::new(ConventionalConfig {
            ir_margin_fraction: 0.2,
            ..ConventionalConfig::default()
        })
        .run(&b)
        .unwrap()
        .1;
        let tight = ConventionalFlow::new(ConventionalConfig {
            ir_margin_fraction: 0.02,
            ..ConventionalConfig::default()
        })
        .run(&b)
        .unwrap()
        .1;
        assert!(
            tight.iterations > loose.iterations,
            "tight {} vs loose {}",
            tight.iterations,
            loose.iterations
        );
        assert!(tight.worst_ir < loose.worst_ir + 1e-12);
    }

    #[test]
    fn impossible_margin_reports_nonconvergence() {
        let b = bench();
        let err = ConventionalFlow::new(ConventionalConfig {
            ir_margin_fraction: 1e-7,
            max_iterations: 5,
            ..ConventionalConfig::default()
        })
        .run(&b)
        .unwrap_err();
        assert!(matches!(err, CoreError::SizingDidNotConverge { .. }));
    }

    #[test]
    fn invalid_margin_rejected() {
        let b = bench();
        for f in [0.0, 1.0, -0.5] {
            let err = ConventionalFlow::new(ConventionalConfig {
                ir_margin_fraction: f,
                ..ConventionalConfig::default()
            })
            .run(&b)
            .unwrap_err();
            assert!(matches!(err, CoreError::InvalidConfig { .. }));
        }
    }

    #[test]
    fn em_only_violations_also_drive_widening() {
        // Very loose IR margin, tight-but-satisfiable EM limit: sizing
        // must act on EM alone.
        let spec = GridSpec {
            die_width: 200.0,
            die_height: 200.0,
            v_straps: 4,
            h_straps: 4,
            ..GridSpec::default()
        };
        let mut fp = ppdl_floorplan::Floorplan::new(200.0, 200.0).unwrap();
        fp.add_block(
            ppdl_floorplan::FunctionalBlock::new("b", 20.0, 20.0, 150.0, 150.0, 0.2).unwrap(),
        )
        .unwrap();
        let b = SyntheticBenchmark::generate("em", spec, fp).unwrap();
        let before = b.strap_widths();
        let (_, res) = ConventionalFlow::new(ConventionalConfig {
            ir_margin_fraction: 0.9,
            jmax: 0.02,
            ..ConventionalConfig::default()
        })
        .run(&b)
        .unwrap();
        assert!(res.widths.iter().zip(&before).any(|(a, b)| a > b));
    }

    #[test]
    fn timing_is_recorded() {
        let (_, res) = ConventionalFlow::default().run(&bench()).unwrap();
        assert!(res.analysis_time >= res.single_analysis_time);
        assert!(res.single_analysis_time > Duration::ZERO);
    }
}

//! Standard experiment preparation shared by the tests, examples, and
//! the table/figure harnesses.
//!
//! The recipe mirrors the paper's setup (§V-A: "Current loads of the
//! IBM PG benchmarks are modified in order to obtain the desired
//! effects"): generate the preset's synthetic grid, calibrate its load
//! currents so the *initial* design violates the IR margin by a chosen
//! overdrive factor, and set the margin to the benchmark's published
//! Table III worst-case drop. The conventional sizing loop then has
//! real work to do, converges just under the published value, and
//! produces spatially varying golden widths for the model to learn.

use ppdl_netlist::{IbmPgPreset, SyntheticBenchmark};

use crate::pipeline::{ArtifactCache, BenchmarkSourceStage, StageRecord};
use crate::{
    calibrate_to_worst_ir, CoreError, DlFlowConfig, DlFlowConfigBuilder, DlOutcome, Perturbation,
    PerturbationKind, PowerPlanningDl,
};

/// The overdrive factor of the standard experiment recipe: how far the
/// initial design violates its margin before sizing (2.5 gives the
/// conventional loop a few rounds of real work, like the paper's
/// "multiple iterative steps").
pub const STANDARD_OVERDRIVE: f64 = 2.5;

/// A benchmark prepared for a paper experiment.
#[derive(Debug, Clone)]
pub struct PreparedBenchmark {
    /// The calibrated benchmark (initial widths, overdriven loads).
    pub bench: SyntheticBenchmark,
    /// The IR margin as a fraction of Vdd that the conventional flow
    /// should target.
    pub margin_fraction: f64,
    /// The margin in volts (the Table III target).
    pub target_worst_ir: f64,
}

/// The Table III worst-case-drop target for a preset, in volts; the
/// two `new` benchmarks Table III omits get interpolated targets.
#[must_use]
pub fn target_worst_ir(preset: IbmPgPreset) -> f64 {
    preset.table3_worst_ir_mv().unwrap_or(match preset {
        IbmPgPreset::IbmpgNew1 => 10.0,
        _ => 9.0,
    }) / 1e3
}

/// Prepares a preset benchmark at `scale` for an experiment run.
///
/// `overdrive` is how far the initial design violates the margin
/// (2.5 is a good default: a few sizing rounds, like the paper's
/// "multiple iterative steps").
///
/// # Errors
///
/// Propagates generation and calibration errors, and rejects
/// `overdrive <= 1` (the sizing loop would have nothing to do).
pub fn prepare(
    preset: IbmPgPreset,
    scale: f64,
    seed: u64,
    overdrive: f64,
) -> crate::Result<PreparedBenchmark> {
    if !(overdrive > 1.0 && overdrive.is_finite()) {
        return Err(CoreError::InvalidConfig {
            detail: format!("overdrive {overdrive} must exceed 1"),
        });
    }
    let mut bench = SyntheticBenchmark::from_preset(preset, scale, seed)?;
    let target = target_worst_ir(preset);
    calibrate_to_worst_ir(&mut bench, overdrive * target)?;
    // Generated benchmarks always carry supplies; keep the failure
    // typed anyway so callers see an error, not an abort
    // (robustness/unwrap-in-lib).
    let vdd = bench
        .network()
        .supply_voltage()
        .ok_or(CoreError::Analysis(ppdl_analysis::AnalysisError::NoSupply))?;
    Ok(PreparedBenchmark {
        bench,
        margin_fraction: target / vdd,
        target_worst_ir: target,
    })
}

/// Builds the γ × kind grid of [`Perturbation`]s a sweep study (Fig. 9)
/// evaluates, with `repeats` independently seeded draws per point to
/// average out the random signs.
///
/// Points are ordered kind-major, then γ, then repeat, and each point's
/// seed is a deterministic function of `base_seed` and its grid
/// position, so the grid — and everything downstream of it — is
/// reproducible. Feed the result to
/// [`run_perturbation_sweep`](crate::run_perturbation_sweep) or
/// [`PowerPlanningDl::run_sweep`](crate::PowerPlanningDl::run_sweep)
/// for parallel evaluation.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] if any γ is outside `(0, 1)`
/// or `repeats` is zero.
pub fn perturbation_grid(
    gammas: &[f64],
    kinds: &[PerturbationKind],
    base_seed: u64,
    repeats: u64,
) -> crate::Result<Vec<Perturbation>> {
    if repeats == 0 {
        return Err(CoreError::InvalidConfig {
            detail: "a perturbation grid needs at least one repeat per point".into(),
        });
    }
    let mut out = Vec::with_capacity(kinds.len() * gammas.len() * repeats as usize);
    for &kind in kinds {
        for (gi, &gamma) in gammas.iter().enumerate() {
            for rep in 0..repeats {
                let seed = base_seed
                    .wrapping_add(1 + gi as u64)
                    .wrapping_mul(101)
                    .wrapping_add(rep);
                out.push(Perturbation::new(gamma, kind, seed)?);
            }
        }
    }
    Ok(out)
}

/// The cacheable pipeline source for the standard experiment recipe:
/// generate at `scale`/`seed`, calibrate to
/// [`STANDARD_OVERDRIVE`] × the preset's Table III target.
#[must_use]
pub fn preset_source(preset: IbmPgPreset, scale: f64, seed: u64) -> BenchmarkSourceStage {
    BenchmarkSourceStage::preset(preset, scale, seed, STANDARD_OVERDRIVE)
}

/// Runs the full five-stage flow for one preset through the pipeline
/// engine, optionally against an artifact cache. This is the
/// pipeline-native equivalent of [`prepare`] + [`flow_config`] +
/// [`PowerPlanningDl::run`], and what the experiment registry calls.
///
/// # Errors
///
/// Propagates generation, calibration, sizing, training, and analysis
/// errors.
pub fn run_preset_cached(
    preset: IbmPgPreset,
    scale: f64,
    seed: u64,
    fast: bool,
    cache: Option<&ArtifactCache>,
) -> crate::Result<(DlOutcome, Vec<StageRecord>)> {
    let mut builder = DlFlowConfig::builder();
    if fast {
        builder = builder.fast();
    }
    PowerPlanningDl::new(builder.build())
        .run_source_cached(preset_source(preset, scale, seed), cache)
}

/// A [`DlFlowConfig`] builder matched to a prepared benchmark: the
/// conventional margin targets the preset's Table III drop. Chain
/// further knobs before `build()`.
#[must_use]
pub fn flow_builder(prepared: &PreparedBenchmark, fast: bool) -> DlFlowConfigBuilder {
    let mut builder = DlFlowConfig::builder().ir_margin_fraction(prepared.margin_fraction);
    if fast {
        builder = builder.fast();
    }
    builder
}

/// A [`DlFlowConfig`] matched to a prepared benchmark
/// ([`flow_builder`] with no extra knobs).
#[must_use]
pub fn flow_config(prepared: &PreparedBenchmark, fast: bool) -> DlFlowConfig {
    flow_builder(prepared, fast).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdl_analysis::StaticAnalysis;

    #[test]
    fn prepared_bench_violates_margin_by_overdrive() {
        let p = prepare(IbmPgPreset::Ibmpg2, 0.005, 3, 2.5).unwrap();
        let report = StaticAnalysis::default().solve(p.bench.network()).unwrap();
        let worst = report.worst_drop().unwrap().1;
        assert!((worst - 2.5 * p.target_worst_ir).abs() < 1e-5);
    }

    #[test]
    fn targets_cover_all_presets() {
        for preset in IbmPgPreset::ALL {
            let t = target_worst_ir(preset);
            assert!(t > 0.0 && t < 0.1, "{preset}: {t}");
        }
        assert!((target_worst_ir(IbmPgPreset::Ibmpg1) - 0.0698).abs() < 1e-12);
    }

    #[test]
    fn overdrive_validated() {
        assert!(prepare(IbmPgPreset::Ibmpg1, 0.01, 1, 1.0).is_err());
        assert!(prepare(IbmPgPreset::Ibmpg1, 0.01, 1, f64::NAN).is_err());
    }

    #[test]
    fn perturbation_grid_is_deterministic_and_ordered() {
        let gammas = [0.1, 0.2];
        let kinds = PerturbationKind::ALL;
        let a = perturbation_grid(&gammas, &kinds, 7, 2).unwrap();
        let b = perturbation_grid(&gammas, &kinds, 7, 2).unwrap();
        assert_eq!(a.len(), kinds.len() * gammas.len() * 2);
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.gamma(), pb.gamma());
            assert_eq!(pa.kind(), pb.kind());
            assert_eq!(pa.seed(), pb.seed());
        }
        // Kind-major ordering: the first gammas.len() * repeats points
        // share the first kind.
        assert!(a[..4].iter().all(|p| p.kind() == kinds[0]));
        assert_eq!(a[0].gamma(), 0.1);
        assert_eq!(a[2].gamma(), 0.2);
        assert!(perturbation_grid(&[0.0], &kinds, 7, 2).is_err());
        assert!(perturbation_grid(&gammas, &kinds, 7, 0).is_err());
    }

    #[test]
    fn flow_config_carries_margin() {
        let p = prepare(IbmPgPreset::Ibmpg1, 0.01, 1, 2.0).unwrap();
        let c = flow_config(&p, true);
        assert!((c.conventional.ir_margin_fraction - p.margin_fraction).abs() < 1e-15);
    }
}

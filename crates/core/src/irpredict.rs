//! Problem 2 / Algorithm 2: Kirchhoff-law IR-drop prediction.
//!
//! Given the predicted widths and the switching currents, the paper
//! estimates IR drop *without* running a full grid analysis: the
//! current each power-grid line must deliver to its blocks is
//! accumulated (eqs. 7–9) and Ohm's law is applied. This module
//! implements that idea at two granularities, both linear in grid
//! size:
//!
//! * [`IrPredictor::line_estimate`] — the paper's literal per-line
//!   calculation: a loaded 1-D ladder along one strap, fed at its
//!   supply crossings, solved in closed form.
//! * [`IrPredictor::predict`] — the whole-grid estimate: the same
//!   current-accumulation done on a small **coarse grid** (cells of
//!   several straps aggregated into one Kirchhoff node, solved
//!   directly — a few hundred unknowns regardless of benchmark size),
//!   followed by a *fixed* number of local KCL relaxation sweeps to
//!   restore per-node detail. No convergence-driven iteration happens;
//!   cost is `O(elements)` by construction, which is where the paper's
//!   ~6× speedup over the conventional analysis comes from.

// BTreeMap/BTreeSet, not HashMap: coordinate-keyed loads are summed
// while the map is built and looked up per node, and the deterministic
// key order keeps every float accumulation bitwise reproducible
// (DESIGN.md §12, determinism/hashmap-iter).
use std::collections::{BTreeMap, BTreeSet};

use ppdl_analysis::IrDropMap;
use ppdl_netlist::{NodeId, Orientation, SyntheticBenchmark};

use crate::CoreError;

/// The Kirchhoff-based IR-drop estimate for a benchmark.
#[derive(Debug, Clone)]
pub struct PredictedIr {
    /// Estimated drop per node (volts), indexed by `NodeId.0`; `NaN`
    /// where no estimate exists (isolated nodes).
    pub node_drops: Vec<f64>,
    /// The worst estimated drop (volts).
    pub worst: f64,
    /// Estimated drop across each segment (volts), parallel to
    /// [`SyntheticBenchmark::segments`].
    pub segment_drops: Vec<f64>,
}

impl PredictedIr {
    /// The worst estimated drop in millivolts (the Table III
    /// "PowerPlanningDL" column).
    #[must_use]
    pub fn worst_mv(&self) -> f64 {
        self.worst * 1e3
    }

    /// Rasterises the estimate into an IR-drop map (Fig. 8(b)/(d)).
    ///
    /// # Errors
    ///
    /// Propagates map-construction errors.
    pub fn to_map(
        &self,
        bench: &SyntheticBenchmark,
        resolution: usize,
    ) -> crate::Result<IrDropMap> {
        Ok(IrDropMap::from_node_drops(
            bench.network(),
            &self.node_drops,
            resolution,
        )?)
    }
}

/// The IR-drop predictor.
///
/// # Example
///
/// ```
/// use ppdl_core::IrPredictor;
/// use ppdl_netlist::{IbmPgPreset, SyntheticBenchmark};
///
/// let bench = SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg2, 0.005, 3).unwrap();
/// let widths = bench.strap_widths();
/// let predicted = IrPredictor::new().predict(&bench, &widths).unwrap();
/// assert!(predicted.worst > 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct IrPredictor {
    sweeps: usize,
    coarse_cells: usize,
}

impl Default for IrPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl IrPredictor {
    /// Creates a predictor with the default budget: an adaptive coarse
    /// grid (about half the strap count per side) and 15 smoothing
    /// sweeps.
    #[must_use]
    pub fn new() -> Self {
        Self {
            sweeps: 15,
            coarse_cells: 0,
        }
    }

    /// Creates a predictor with explicit budgets. `sweeps = 0` returns
    /// the raw coarse-grid interpolation; `coarse_cells = 0` selects
    /// the adaptive default.
    #[must_use]
    pub fn with_budget(coarse_cells: usize, sweeps: usize) -> Self {
        Self {
            sweeps,
            coarse_cells,
        }
    }

    /// The smoothing-sweep budget.
    #[must_use]
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// Estimates IR drop for `bench` assuming the straps have the
    /// given `widths` (one per strap, e.g. the DL-predicted widths).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `widths` does not have
    /// one positive entry per strap or the benchmark has no supply,
    /// and propagates solver errors from the (tiny) coarse solve.
    pub fn predict(
        &self,
        bench: &SyntheticBenchmark,
        widths: &[f64],
    ) -> crate::Result<PredictedIr> {
        validate_widths(bench, widths)?;
        let net = bench.network();
        if net.voltage_sources().is_empty() {
            return Err(CoreError::InvalidConfig {
                detail: "benchmark has no supply pins".into(),
            });
        }
        let n = net.node_count();

        // Per-resistor conductances under the proposed widths.
        let mut conductance: Vec<f64> = net
            .resistors()
            .iter()
            .map(|r| if r.is_short() { 0.0 } else { 1.0 / r.ohms })
            .collect();
        for seg in bench.segments() {
            let strap = &bench.straps()[seg.strap];
            let rho = bench.spec().sheet_resistance(strap.orientation);
            conductance[seg.resistor] = widths[seg.strap] / (rho * seg.length);
        }
        for via in bench.vias() {
            let ohms = bench.via_resistance_for_width(widths[via.lower_strap]);
            conductance[via.resistor] = 1.0 / ohms;
        }

        // --- Stage 1: coarse Kirchhoff solve -------------------------
        // Aggregate nodes into K x K die cells (both layers together —
        // vias are low-resistance) and solve the aggregated network
        // exactly. This is eqs. 7-9 applied at line-bundle granularity:
        // each coarse edge carries the accumulated current of the strap
        // bundle crossing the cell boundary.
        let ((min_x, min_y), (max_x, max_y)) =
            net.bounding_box().ok_or_else(|| CoreError::InvalidConfig {
                detail: "benchmark nodes carry no coordinates".into(),
            })?;
        let k = if self.coarse_cells >= 2 {
            self.coarse_cells
        } else {
            // Adaptive: one cell per strap crossing (both layers merged
            // into one Kirchhoff node) is near-exact; the reduction
            // comes from halving the unknowns, dropping the vias, and
            // the loose tolerance below. The cap bounds the coarse
            // system on full-size grids at a small accuracy cost.
            let max_dir = bench
                .straps()
                .iter()
                .filter(|s| s.orientation == Orientation::Vertical)
                .count()
                .max(
                    bench
                        .straps()
                        .iter()
                        .filter(|s| s.orientation == Orientation::Horizontal)
                        .count(),
                );
            max_dir.clamp(8, 256)
        };
        let wx = (max_x - min_x).max(1) as f64;
        let wy = (max_y - min_y).max(1) as f64;
        let cell_of = |id: usize| -> Option<usize> {
            net.node_names()[id].coordinates().map(|(x, y)| {
                let cx = (((x - min_x) as f64 / wx) * k as f64).min(k as f64 - 1.0) as usize;
                let cy = (((y - min_y) as f64 / wy) * k as f64).min(k as f64 - 1.0) as usize;
                cy * k + cx
            })
        };
        let cells: Vec<Option<usize>> = (0..n).map(cell_of).collect();

        // Homogenisation: a cell bundles several parallel straps, but a
        // cell-to-cell path also chains several segments in series.
        // Stamping each boundary-crossing segment with its full
        // conductance would make the coarse grid (cell/pitch)x too
        // conductive, so each segment is derated by its length relative
        // to the cell extent along its strap.
        let cell_wx = wx / 1000.0 / k as f64;
        let cell_wy = wy / 1000.0 / k as f64;
        let mut g_scale = vec![1.0; net.resistors().len()];
        for seg in bench.segments() {
            let extent = match bench.straps()[seg.strap].orientation {
                Orientation::Vertical => cell_wy,
                Orientation::Horizontal => cell_wx,
            };
            g_scale[seg.resistor] = (seg.length / extent).min(1.0);
        }

        let m = k * k;
        let mut coarse_diag_touch = vec![false; m];
        let mut coarse_load = vec![0.0; m];
        let mut coarse_pinned = vec![false; m];
        for r in net.resistors() {
            if let (Some(ca), Some(cb)) = (cells[r.a.0], cells[r.b.0]) {
                if ca != cb {
                    coarse_diag_touch[ca] = true;
                    coarse_diag_touch[cb] = true;
                }
            }
        }
        for l in net.current_loads() {
            if let Some(c) = cells[l.node.0] {
                coarse_load[c] += l.amps;
            }
        }
        for s in net.voltage_sources() {
            if let Some(c) = cells[s.node.0] {
                coarse_pinned[c] = true;
            }
        }
        // Unknowns: occupied, unpinned cells; pinned cells sit at drop 0.
        let mut index = vec![usize::MAX; m];
        let mut unknowns = Vec::new();
        for c in 0..m {
            if coarse_diag_touch[c] && !coarse_pinned[c] {
                index[c] = unknowns.len();
                unknowns.push(c);
            }
        }
        let u = unknowns.len();
        let mut reduced = ppdl_solver::TripletMatrix::new(u, u);
        let mut rhs = vec![0.0; u];
        for (ri, r) in net.resistors().iter().enumerate() {
            let g = conductance[ri] * g_scale[ri];
            if g <= 0.0 {
                continue;
            }
            let (Some(ca), Some(cb)) = (cells[r.a.0], cells[r.b.0]) else {
                continue;
            };
            if ca == cb {
                continue;
            }
            match (index[ca], index[cb]) {
                (usize::MAX, usize::MAX) => {}
                (ia, usize::MAX) => reduced.stamp_grounded_conductance(ia, g),
                (usize::MAX, ib) => reduced.stamp_grounded_conductance(ib, g),
                (ia, ib) => reduced.stamp_conductance(ia, ib, g),
            }
        }
        for (ui, &c) in unknowns.iter().enumerate() {
            rhs[ui] = coarse_load[c];
        }
        let mut coarse_drop = vec![0.0; m];
        if u > 0 {
            let reduced_csr = reduced.to_csr();
            let map_err = |e: ppdl_solver::SolverError| CoreError::Analysis(e.into());
            // Prediction-grade tolerance: well below the millivolt
            // resolution the estimate targets, far looser than the
            // conventional sign-off solve.
            let sol = ppdl_solver::ConjugateGradient::new(ppdl_solver::CgOptions {
                tolerance: 1e-3,
                precond: ppdl_solver::PrecondKind::Ic0,
                ..ppdl_solver::CgOptions::default()
            })
            .solve(&reduced_csr, &rhs)
            .map_err(map_err)?;
            for (ui, &c) in unknowns.iter().enumerate() {
                coarse_drop[c] = sol.x[ui];
            }
        }

        // --- Stage 2: interpolate + fixed local KCL sweeps -----------
        let mut neighbors: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut diag = vec![0.0; n];
        for (ri, r) in net.resistors().iter().enumerate() {
            let g = conductance[ri];
            if g <= 0.0 {
                continue;
            }
            neighbors[r.a.0].push((r.b.0, g));
            neighbors[r.b.0].push((r.a.0, g));
            diag[r.a.0] += g;
            diag[r.b.0] += g;
        }
        let mut loads = vec![0.0; n];
        for l in net.current_loads() {
            loads[l.node.0] += l.amps;
        }
        let vdd = net
            .supply_voltage()
            .ok_or(CoreError::Analysis(ppdl_analysis::AnalysisError::NoSupply))?;
        let mut pinned = vec![false; n];
        let mut d: Vec<f64> = (0..n)
            .map(|i| cells[i].map_or(0.0, |c| coarse_drop[c]))
            .collect();
        for s in net.voltage_sources() {
            pinned[s.node.0] = true;
            d[s.node.0] = vdd - s.volts;
        }
        for _ in 0..self.sweeps {
            for i in 0..n {
                if pinned[i] || diag[i] == 0.0 {
                    continue;
                }
                let mut acc = loads[i];
                for &(j, g) in &neighbors[i] {
                    acc += g * d[j];
                }
                d[i] = acc / diag[i];
            }
        }

        let mut node_drops = vec![f64::NAN; n];
        let mut worst = 0.0_f64;
        for i in 0..n {
            if diag[i] > 0.0 || pinned[i] {
                node_drops[i] = d[i];
                worst = worst.max(d[i]);
            }
        }
        let segment_drops = bench
            .segments()
            .iter()
            .map(|seg| {
                let r = &net.resistors()[seg.resistor];
                (d[r.a.0] - d[r.b.0]).abs()
            })
            .collect();

        Ok(PredictedIr {
            node_drops,
            worst,
            segment_drops,
        })
    }

    /// The paper's literal per-line estimate (eqs. 7–9) for one strap:
    /// the strap is treated as a loaded 1-D ladder fed at its supply
    /// crossings, and the drop at each of its nodes is returned in
    /// along-axis order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a bad strap index or
    /// width vector, or a supply-less benchmark.
    pub fn line_estimate(
        &self,
        bench: &SyntheticBenchmark,
        widths: &[f64],
        strap_id: usize,
    ) -> crate::Result<Vec<(NodeId, f64)>> {
        validate_widths(bench, widths)?;
        if strap_id >= bench.straps().len() {
            return Err(CoreError::InvalidConfig {
                detail: format!(
                    "strap index {strap_id} out of range for {} straps",
                    bench.straps().len()
                ),
            });
        }
        let net = bench.network();
        if net.voltage_sources().is_empty() {
            return Err(CoreError::InvalidConfig {
                detail: "benchmark has no supply pins".into(),
            });
        }
        let strap = &bench.straps()[strap_id];
        let rho = bench.spec().sheet_resistance(strap.orientation);
        let width = widths[strap_id];

        let coord = |id: NodeId| -> Option<(f64, f64)> {
            net.node_name(id)
                .coordinates()
                .map(|(x, y)| (x as f64 / 1000.0, y as f64 / 1000.0))
        };
        let axis = |p: (f64, f64)| match strap.orientation {
            Orientation::Vertical => p.1,
            Orientation::Horizontal => p.0,
        };

        // Loads indexed by coordinates so a strap sees via-injected
        // current regardless of which layer the load card names.
        let mut coord_load: BTreeMap<(i64, i64), f64> = BTreeMap::new();
        for l in net.current_loads() {
            if let Some(xy) = net.node_name(l.node).coordinates() {
                *coord_load.entry(xy).or_insert(0.0) += l.amps;
            }
        }
        let mut source_nodes: BTreeSet<usize> = BTreeSet::new();
        let mut source_coords: BTreeSet<(i64, i64)> = BTreeSet::new();
        let mut source_points: Vec<(f64, f64)> = Vec::new();
        for s in net.voltage_sources() {
            source_nodes.insert(s.node.0);
            if let Some(xy) = net.node_name(s.node).coordinates() {
                source_coords.insert(xy);
                source_points.push((xy.0 as f64 / 1000.0, xy.1 as f64 / 1000.0));
            }
        }
        let nearest_source_dist = |p: (f64, f64)| -> f64 {
            source_points
                .iter()
                .map(|s| ((s.0 - p.0).powi(2) + (s.1 - p.1).powi(2)).sqrt())
                .fold(f64::INFINITY, f64::min)
        };

        // Collect the strap's nodes ordered along its axis.
        let mut nodes: Vec<(usize, f64)> = Vec::new();
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        for seg in bench.segments().iter().filter(|s| s.strap == strap_id) {
            let r = &net.resistors()[seg.resistor];
            for id in [r.a, r.b] {
                if seen.insert(id.0) {
                    if let Some(p) = coord(id) {
                        nodes.push((id.0, axis(p)));
                    }
                }
            }
        }
        nodes.sort_by(|a, b| a.1.total_cmp(&b.1));
        let m = nodes.len();
        if m < 2 {
            return Ok(nodes.into_iter().map(|(id, _)| (NodeId(id), 0.0)).collect());
        }
        let loads: Vec<f64> = nodes
            .iter()
            .map(|(id, _)| {
                net.node_name(NodeId(*id))
                    .coordinates()
                    .and_then(|xy| coord_load.get(&xy).copied())
                    .unwrap_or(0.0)
            })
            .collect();
        let total: f64 = loads.iter().sum();
        let res: Vec<f64> = (0..m - 1)
            .map(|j| rho * (nodes[j + 1].1 - nodes[j].1) / width)
            .collect();

        // Feed detection: a direct pin, or a pin across the via.
        let mut feeds: Vec<(usize, f64)> = Vec::new();
        for (j, (id, _)) in nodes.iter().enumerate() {
            if source_nodes.contains(id) {
                feeds.push((j, 0.0));
            } else if let Some(xy) = net.node_name(NodeId(*id)).coordinates() {
                if source_coords.contains(&xy) {
                    feeds.push((j, f64::NAN));
                }
            }
        }
        let via_base = total * bench.spec().via_resistance / feeds.len().max(1) as f64;
        for f in &mut feeds {
            if f.1.is_nan() {
                f.1 = via_base;
            }
        }
        if feeds.is_empty() {
            // Fallback: the node nearest a pin, with the via plus the
            // orthogonal-layer return run. Strap nodes without grid
            // coordinates cannot anchor the fallback, so they are
            // skipped rather than panicking the serving process; a
            // strap with *no* locatable node is a malformed design and
            // surfaces as a typed wire error.
            let (j, p) = nodes
                .iter()
                .enumerate()
                .filter_map(|(j, (id, _))| coord(NodeId(*id)).map(|p| (j, p)))
                .min_by(|(_, a), (_, b)| {
                    nearest_source_dist(*a).total_cmp(&nearest_source_dist(*b))
                })
                .ok_or_else(|| CoreError::InvalidConfig {
                    detail: format!(
                        "strap {strap_id} has no node with grid coordinates to anchor a feed"
                    ),
                })?;
            let other = match strap.orientation {
                Orientation::Vertical => Orientation::Horizontal,
                Orientation::Horizontal => Orientation::Vertical,
            };
            let rho_other = bench.spec().sheet_resistance(other);
            let other_width = widths
                .iter()
                .zip(bench.straps())
                .filter(|(_, s)| s.orientation == other)
                .map(|(w, _)| *w)
                .fold(0.1_f64, f64::max);
            let base = total
                * (bench.spec().via_resistance + rho_other * nearest_source_dist(p) / other_width);
            feeds.push((j, base));
        }

        let drops = solve_strap_ladder(&loads, &res, &feeds);
        Ok(nodes
            .into_iter()
            .zip(drops)
            .map(|((id, _), drop)| (NodeId(id), drop))
            .collect())
    }
}

fn validate_widths(bench: &SyntheticBenchmark, widths: &[f64]) -> crate::Result<()> {
    if widths.len() != bench.straps().len() {
        return Err(CoreError::InvalidConfig {
            detail: format!(
                "{} widths for {} straps",
                widths.len(),
                bench.straps().len()
            ),
        });
    }
    if let Some(w) = widths.iter().find(|w| !(w.is_finite() && **w > 0.0)) {
        return Err(CoreError::InvalidConfig {
            detail: format!("strap width {w} must be positive"),
        });
    }
    Ok(())
}

/// Solves a loaded 1-D resistor ladder with Dirichlet values at the
/// feed indices, in closed form per interval (eqs. 7–9 applied along
/// one power-grid line).
///
/// `loads[k]` is the current drawn at node `k`; `res[k]` the resistance
/// between nodes `k` and `k+1`; `feeds` a non-empty list of
/// `(index, drop)` pins. Returns the drop at every node.
fn solve_strap_ladder(loads: &[f64], res: &[f64], feeds: &[(usize, f64)]) -> Vec<f64> {
    let m = loads.len();
    let mut feeds: Vec<(usize, f64)> = feeds.to_vec();
    feeds.sort_by_key(|(k, _)| *k);
    feeds.dedup_by_key(|(k, _)| *k);
    let mut drops = vec![0.0; m];
    for &(k, base) in &feeds {
        drops[k] = base;
    }

    // Tail before the first feed: all current flows toward it.
    let (first, _) = feeds[0];
    for k in (0..first).rev() {
        let upstream: f64 = loads[..=k].iter().sum();
        drops[k] = drops[k + 1] + res[k] * upstream;
    }

    // Tail after the last feed.
    let (last, _) = feeds[feeds.len() - 1];
    for k in (last + 1)..m {
        let downstream: f64 = loads[k..].iter().sum();
        drops[k] = drops[k - 1] + res[k - 1] * downstream;
    }

    // Intervals between consecutive feeds: both ends pinned. Let `c`
    // be the current entering rightward from the left feed; after the
    // interior loads S_j (at nodes a+1..=j) segment j carries c − S_j,
    // and drops accumulate as d_{j+1} = d_j + R_j (c − S_j). The right
    // boundary value fixes c in closed form.
    for w in feeds.windows(2) {
        let (a, da) = w[0];
        let (b, db) = w[1];
        if b <= a + 1 {
            continue;
        }
        let mut r_total = 0.0;
        let mut rs_total = 0.0;
        let mut s = 0.0;
        for j in a..b {
            if j > a {
                s += loads[j];
            }
            r_total += res[j];
            rs_total += res[j] * s;
        }
        let c = (db - da + rs_total) / r_total;
        let mut d = da;
        let mut s = 0.0;
        for j in a..b - 1 {
            if j > a {
                s += loads[j];
            }
            d += res[j] * (c - s);
            drops[j + 1] = d;
        }
    }
    drops
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdl_analysis::StaticAnalysis;
    use ppdl_netlist::IbmPgPreset;

    fn bench_perimeter() -> SyntheticBenchmark {
        SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg2, 0.005, 21).unwrap()
    }

    fn bench_flipchip() -> SyntheticBenchmark {
        SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg5, 0.001, 21).unwrap()
    }

    #[test]
    fn ladder_single_feed_matches_hand_calc() {
        // 3 nodes, feed at 0 with base 0, loads 0/1/1, R = 1 each.
        // Segment (0,1) carries 2 A -> d1 = 2; segment (1,2) carries 1 A
        // -> d2 = 3.
        let drops = solve_strap_ladder(&[0.0, 1.0, 1.0], &[1.0, 1.0], &[(0, 0.0)]);
        assert_eq!(drops, vec![0.0, 2.0, 3.0]);
    }

    #[test]
    fn ladder_feed_at_right_end() {
        let drops = solve_strap_ladder(&[1.0, 1.0, 0.0], &[1.0, 1.0], &[(2, 0.5)]);
        assert_eq!(drops, vec![3.5, 2.5, 0.5]);
    }

    #[test]
    fn ladder_two_feeds_splits_current() {
        // Symmetric: feeds at both ends (base 0), unit load in the
        // middle, R = 1 per segment: the middle node sits at 0.5.
        let drops = solve_strap_ladder(&[0.0, 1.0, 0.0], &[1.0, 1.0], &[(0, 0.0), (2, 0.0)]);
        assert!((drops[1] - 0.5).abs() < 1e-12, "{drops:?}");
        assert_eq!(drops[0], 0.0);
        assert_eq!(drops[2], 0.0);
    }

    #[test]
    fn ladder_matches_dense_solve() {
        // Ladder with feeds at 1 and 4 — compare against a dense nodal
        // solve of the same 1-D network.
        let loads = [0.3, 0.0, 0.7, 0.2, 0.0, 0.4];
        let res = [0.5, 1.0, 0.25, 2.0, 1.5];
        let feeds = [(1usize, 0.1), (4usize, 0.2)];
        let drops = solve_strap_ladder(&loads, &res, &feeds);

        use ppdl_solver::DenseMatrix;
        let unknowns = [0usize, 2, 3, 5];
        let pinned: std::collections::HashMap<usize, f64> = feeds.iter().copied().collect();
        let idx: std::collections::HashMap<usize, usize> =
            unknowns.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut a = DenseMatrix::zeros(4, 4);
        let mut b = vec![0.0; 4];
        for (j, &r) in res.iter().enumerate() {
            let g = 1.0 / r;
            let (u, v) = (j, j + 1);
            for (p, q) in [(u, v), (v, u)] {
                if let Some(&ip) = idx.get(&p) {
                    a.add_to(ip, ip, g);
                    if let Some(&iq) = idx.get(&q) {
                        a.add_to(ip, iq, -g);
                    } else {
                        b[ip] += g * pinned[&q];
                    }
                }
            }
        }
        for (&node, &i) in &idx {
            b[i] += loads[node];
        }
        let x = a.cholesky().unwrap().solve(&b).unwrap();
        for (&node, &i) in &idx {
            assert!(
                (drops[node] - x[i]).abs() < 1e-10,
                "node {node}: ladder {} vs dense {}",
                drops[node],
                x[i]
            );
        }
    }

    #[test]
    fn width_count_validated() {
        let b = bench_perimeter();
        let p = IrPredictor::new();
        assert!(p.predict(&b, &[1.0]).is_err());
        let mut w = b.strap_widths();
        w[0] = -1.0;
        assert!(p.predict(&b, &w).is_err());
        assert!(p.line_estimate(&b, &b.strap_widths(), 9999).is_err());
    }

    #[test]
    fn estimate_positive_and_bounded() {
        let b = bench_perimeter();
        let est = IrPredictor::new().predict(&b, &b.strap_widths()).unwrap();
        assert!(est.worst > 0.0);
        assert!(est.worst < b.network().supply_voltage().unwrap());
        assert_eq!(est.segment_drops.len(), b.segments().len());
        assert!(est.segment_drops.iter().all(|d| *d >= 0.0));
    }

    #[test]
    fn tracks_conventional_analysis_perimeter() {
        let b = bench_perimeter();
        let est = IrPredictor::new().predict(&b, &b.strap_widths()).unwrap();
        let truth = StaticAnalysis::default()
            .solve(b.network())
            .unwrap()
            .worst_drop()
            .unwrap()
            .1;
        let err = (est.worst - truth).abs() / truth;
        assert!(
            err < 0.35,
            "estimate {} vs truth {} ({}% off)",
            est.worst,
            truth,
            100.0 * err
        );
    }

    #[test]
    fn tracks_conventional_analysis_flipchip() {
        let b = bench_flipchip();
        let est = IrPredictor::new().predict(&b, &b.strap_widths()).unwrap();
        let truth = StaticAnalysis::default()
            .solve(b.network())
            .unwrap()
            .worst_drop()
            .unwrap()
            .1;
        let err = (est.worst - truth).abs() / truth;
        assert!(
            err < 0.35,
            "estimate {} vs truth {} ({}% off)",
            est.worst,
            truth,
            100.0 * err
        );
    }

    #[test]
    fn smoothing_improves_on_raw_coarse() {
        let b = bench_perimeter();
        let truth = StaticAnalysis::default()
            .solve(b.network())
            .unwrap()
            .worst_drop()
            .unwrap()
            .1;
        let raw = IrPredictor::with_budget(16, 0)
            .predict(&b, &b.strap_widths())
            .unwrap();
        let smoothed = IrPredictor::with_budget(16, 15)
            .predict(&b, &b.strap_widths())
            .unwrap();
        let raw_err = (raw.worst - truth).abs();
        let smooth_err = (smoothed.worst - truth).abs();
        assert!(
            smooth_err <= raw_err + 1e-12,
            "smoothing should not hurt: {smooth_err} vs {raw_err}"
        );
    }

    #[test]
    fn wider_straps_lower_the_estimate() {
        let b = bench_perimeter();
        let w1 = b.strap_widths();
        let w2: Vec<f64> = w1.iter().map(|w| w * 3.0).collect();
        let p = IrPredictor::new();
        let e1 = p.predict(&b, &w1).unwrap();
        let e2 = p.predict(&b, &w2).unwrap();
        assert!(e2.worst < e1.worst);
    }

    #[test]
    fn map_is_buildable() {
        let b = bench_perimeter();
        let est = IrPredictor::new().predict(&b, &b.strap_widths()).unwrap();
        let map = est.to_map(&b, 10).unwrap();
        assert_eq!(map.resolution(), 10);
        assert!(map.max_mv() > 0.0);
    }

    #[test]
    fn scaling_loads_scales_estimate() {
        let mut b = bench_perimeter();
        let p = IrPredictor::new();
        let w = b.strap_widths();
        let e1 = p.predict(&b, &w).unwrap();
        let loads: Vec<f64> = b
            .network()
            .current_loads()
            .iter()
            .map(|l| l.amps * 2.0)
            .collect();
        for (i, a) in loads.iter().enumerate() {
            b.network_mut().set_load_current(i, *a).unwrap();
        }
        let e2 = p.predict(&b, &w).unwrap();
        assert!((e2.worst - 2.0 * e1.worst).abs() < 1e-9 * e1.worst.max(1e-12));
    }

    #[test]
    fn line_estimate_returns_ordered_nodes() {
        let b = bench_perimeter();
        let line = IrPredictor::new()
            .line_estimate(&b, &b.strap_widths(), 0)
            .unwrap();
        assert!(line.len() >= 2);
        assert!(line.iter().all(|(_, d)| d.is_finite() && *d >= 0.0));
    }
}

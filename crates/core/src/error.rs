use std::fmt;

/// Errors raised by the PowerPlanningDL framework.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A netlist-layer error.
    Netlist(ppdl_netlist::NetlistError),
    /// An analysis-layer error.
    Analysis(ppdl_analysis::AnalysisError),
    /// A neural-network-layer error.
    Nn(ppdl_nn::NnError),
    /// A floorplan-layer error.
    Floorplan(ppdl_floorplan::FloorplanError),
    /// The conventional sizing loop failed to satisfy the margins
    /// within its iteration budget.
    SizingDidNotConverge {
        /// Iterations performed.
        iterations: usize,
        /// Worst IR drop at the end, in volts.
        worst_ir: f64,
        /// The IR margin that was requested, in volts.
        margin: f64,
    },
    /// Load-current calibration could not drive the verified worst-case
    /// IR drop onto the requested target within its iteration budget
    /// (degenerate grid or numerically unreachable target).
    CalibrationDidNotConverge {
        /// Requested worst-case IR drop, in volts.
        target_volts: f64,
        /// Verified worst-case IR drop actually achieved, in volts.
        achieved_volts: f64,
        /// Rescale-and-verify iterations performed.
        iterations: usize,
    },
    /// A framework configuration is invalid.
    InvalidConfig {
        /// Description of what is invalid.
        detail: String,
    },
    /// A persisted model bundle does not match the shapes its own
    /// metadata promises (wrong version, feature-dimension mismatch,
    /// scaler length inconsistent with the model's input layer, …).
    BundleMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// A persisted bundle's schema disagrees with what the loader can
    /// accept: the error names the offending field and reports the
    /// *found vs expected* values so operators can tell a stale file
    /// from a corrupt one at a glance.
    BundleSchema {
        /// Which schema field disagrees (`version`, `backend`,
        /// `input_spec`, …).
        field: String,
        /// The value found in the bundle text.
        found: String,
        /// The value (or set of values) the loader accepts.
        expected: String,
    },
    /// An I/O failure while reading or writing a persisted artifact.
    Io {
        /// The file involved.
        path: String,
        /// The operating-system error text.
        detail: String,
    },
}

impl CoreError {
    /// A stable, machine-readable error code.
    ///
    /// The code is part of the service wire protocol: a
    /// `PredictResponse` error carries it verbatim, so clients can
    /// branch on failures without parsing display strings. Codes are
    /// `layer/kind` pairs; the layer prefix identifies which crate the
    /// error originated in, the kind names the variant. Codes are
    /// append-only — existing values never change meaning.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            CoreError::Netlist(e) => netlist_code(e),
            CoreError::Analysis(e) => analysis_code(e),
            CoreError::Nn(e) => nn_code(e),
            CoreError::Floorplan(e) => floorplan_code(e),
            CoreError::SizingDidNotConverge { .. } => "core/sizing_did_not_converge",
            CoreError::CalibrationDidNotConverge { .. } => "core/calibration_did_not_converge",
            CoreError::InvalidConfig { .. } => "core/invalid_config",
            CoreError::BundleMismatch { .. } => "core/bundle_mismatch",
            CoreError::BundleSchema { .. } => "core/bundle_schema",
            CoreError::Io { .. } => "core/io",
        }
    }
}

fn netlist_code(e: &ppdl_netlist::NetlistError) -> &'static str {
    use ppdl_netlist::NetlistError as E;
    match e {
        E::Parse { .. } => "netlist/parse",
        E::InvalidValue { .. } => "netlist/invalid_value",
        E::InvalidElement { .. } => "netlist/invalid_element",
        E::UnknownNode { .. } => "netlist/unknown_node",
        E::InfeasibleGrid { .. } => "netlist/infeasible_grid",
        E::Floorplan(f) => floorplan_code(f),
        _ => "netlist/other",
    }
}

fn analysis_code(e: &ppdl_analysis::AnalysisError) -> &'static str {
    use ppdl_analysis::AnalysisError as E;
    match e {
        E::NoSupply => "analysis/no_supply",
        E::FloatingNodes { .. } => "analysis/floating_nodes",
        E::Solver(s) => solver_code(s),
        E::Netlist(n) => netlist_code(n),
        E::Undefined { .. } => "analysis/undefined",
        _ => "analysis/other",
    }
}

fn solver_code(e: &ppdl_solver::SolverError) -> &'static str {
    use ppdl_solver::SolverError as E;
    match e {
        E::DimensionMismatch { .. } => "solver/dimension_mismatch",
        E::IndexOutOfBounds { .. } => "solver/index_out_of_bounds",
        E::NotPositiveDefinite { .. } => "solver/not_positive_definite",
        E::SingularMatrix { .. } => "solver/singular_matrix",
        E::DidNotConverge { .. } => "solver/did_not_converge",
        _ => "solver/other",
    }
}

fn nn_code(e: &ppdl_nn::NnError) -> &'static str {
    use ppdl_nn::NnError as E;
    match e {
        E::ShapeMismatch { .. } => "nn/shape_mismatch",
        E::InvalidConfig { .. } => "nn/invalid_config",
        E::EmptyDataset => "nn/empty_dataset",
        E::Decode { .. } => "nn/decode",
        E::Diverged { .. } => "nn/diverged",
        _ => "nn/other",
    }
}

fn floorplan_code(e: &ppdl_floorplan::FloorplanError) -> &'static str {
    use ppdl_floorplan::FloorplanError as E;
    match e {
        E::InvalidDimension { .. } => "floorplan/invalid_dimension",
        E::OutsideDie { .. } => "floorplan/outside_die",
        E::BlockOverlap { .. } => "floorplan/block_overlap",
        E::DuplicateName { .. } => "floorplan/duplicate_name",
        E::RingWidthViolation { .. } => "floorplan/ring_width_violation",
        _ => "floorplan/other",
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Netlist(e) => write!(f, "netlist error: {e}"),
            CoreError::Analysis(e) => write!(f, "analysis error: {e}"),
            CoreError::Nn(e) => write!(f, "neural network error: {e}"),
            CoreError::Floorplan(e) => write!(f, "floorplan error: {e}"),
            CoreError::SizingDidNotConverge {
                iterations,
                worst_ir,
                margin,
            } => write!(
                f,
                "conventional sizing did not converge after {iterations} iterations: \
                 worst IR drop {:.3} mV > margin {:.3} mV",
                worst_ir * 1e3,
                margin * 1e3
            ),
            CoreError::CalibrationDidNotConverge {
                target_volts,
                achieved_volts,
                iterations,
            } => write!(
                f,
                "IR-drop calibration did not converge after {iterations} iterations: \
                 achieved {:.6} mV vs target {:.6} mV",
                achieved_volts * 1e3,
                target_volts * 1e3
            ),
            CoreError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
            CoreError::BundleMismatch { detail } => write!(f, "bundle mismatch: {detail}"),
            CoreError::BundleSchema {
                field,
                found,
                expected,
            } => write!(
                f,
                "bundle schema mismatch in {field}: found {found}, expected {expected}"
            ),
            CoreError::Io { path, detail } => write!(f, "i/o error on {path}: {detail}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Netlist(e) => Some(e),
            CoreError::Analysis(e) => Some(e),
            CoreError::Nn(e) => Some(e),
            CoreError::Floorplan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ppdl_netlist::NetlistError> for CoreError {
    fn from(e: ppdl_netlist::NetlistError) -> Self {
        CoreError::Netlist(e)
    }
}

impl From<ppdl_analysis::AnalysisError> for CoreError {
    fn from(e: ppdl_analysis::AnalysisError) -> Self {
        CoreError::Analysis(e)
    }
}

impl From<ppdl_nn::NnError> for CoreError {
    fn from(e: ppdl_nn::NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<ppdl_floorplan::FloorplanError> for CoreError {
    fn from(e: ppdl_floorplan::FloorplanError) -> Self {
        CoreError::Floorplan(e)
    }
}

impl From<ppdl_solver::SolverError> for CoreError {
    fn from(e: ppdl_solver::SolverError) -> Self {
        CoreError::Analysis(e.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_converts_units_to_mv() {
        let e = CoreError::SizingDidNotConverge {
            iterations: 5,
            worst_ir: 0.1234,
            margin: 0.1,
        };
        let s = e.to_string();
        assert!(s.contains("123.4"), "{s}");
        assert!(s.contains("100.0"), "{s}");
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e = CoreError::from(ppdl_nn::NnError::EmptyDataset);
        assert!(e.source().is_some());
    }

    #[test]
    fn is_std_error() {
        fn check<T: std::error::Error + Send + Sync + 'static>() {}
        check::<CoreError>();
    }

    #[test]
    fn codes_are_stable_and_nested() {
        assert_eq!(
            CoreError::InvalidConfig { detail: "x".into() }.code(),
            "core/invalid_config"
        );
        assert_eq!(
            CoreError::BundleMismatch { detail: "x".into() }.code(),
            "core/bundle_mismatch"
        );
        assert_eq!(
            CoreError::BundleSchema {
                field: "version".into(),
                found: "v9".into(),
                expected: "v1 or v2".into(),
            }
            .code(),
            "core/bundle_schema"
        );
        assert_eq!(
            CoreError::from(ppdl_nn::NnError::EmptyDataset).code(),
            "nn/empty_dataset"
        );
        // Nested errors surface the innermost layer's code, not a
        // stringified wrapper.
        assert_eq!(
            CoreError::from(ppdl_analysis::AnalysisError::NoSupply).code(),
            "analysis/no_supply"
        );
        assert_eq!(
            CoreError::from(ppdl_solver::SolverError::SingularMatrix { pivot: 0 }).code(),
            "solver/singular_matrix"
        );
        assert_eq!(
            CoreError::from(ppdl_netlist::NetlistError::InvalidValue { token: "z".into() }).code(),
            "netlist/invalid_value"
        );
    }
}

use std::fmt;

/// Errors raised by the PowerPlanningDL framework.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A netlist-layer error.
    Netlist(ppdl_netlist::NetlistError),
    /// An analysis-layer error.
    Analysis(ppdl_analysis::AnalysisError),
    /// A neural-network-layer error.
    Nn(ppdl_nn::NnError),
    /// A floorplan-layer error.
    Floorplan(ppdl_floorplan::FloorplanError),
    /// The conventional sizing loop failed to satisfy the margins
    /// within its iteration budget.
    SizingDidNotConverge {
        /// Iterations performed.
        iterations: usize,
        /// Worst IR drop at the end, in volts.
        worst_ir: f64,
        /// The IR margin that was requested, in volts.
        margin: f64,
    },
    /// Load-current calibration could not drive the verified worst-case
    /// IR drop onto the requested target within its iteration budget
    /// (degenerate grid or numerically unreachable target).
    CalibrationDidNotConverge {
        /// Requested worst-case IR drop, in volts.
        target_volts: f64,
        /// Verified worst-case IR drop actually achieved, in volts.
        achieved_volts: f64,
        /// Rescale-and-verify iterations performed.
        iterations: usize,
    },
    /// A framework configuration is invalid.
    InvalidConfig {
        /// Description of what is invalid.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Netlist(e) => write!(f, "netlist error: {e}"),
            CoreError::Analysis(e) => write!(f, "analysis error: {e}"),
            CoreError::Nn(e) => write!(f, "neural network error: {e}"),
            CoreError::Floorplan(e) => write!(f, "floorplan error: {e}"),
            CoreError::SizingDidNotConverge {
                iterations,
                worst_ir,
                margin,
            } => write!(
                f,
                "conventional sizing did not converge after {iterations} iterations: \
                 worst IR drop {:.3} mV > margin {:.3} mV",
                worst_ir * 1e3,
                margin * 1e3
            ),
            CoreError::CalibrationDidNotConverge {
                target_volts,
                achieved_volts,
                iterations,
            } => write!(
                f,
                "IR-drop calibration did not converge after {iterations} iterations: \
                 achieved {:.6} mV vs target {:.6} mV",
                achieved_volts * 1e3,
                target_volts * 1e3
            ),
            CoreError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Netlist(e) => Some(e),
            CoreError::Analysis(e) => Some(e),
            CoreError::Nn(e) => Some(e),
            CoreError::Floorplan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ppdl_netlist::NetlistError> for CoreError {
    fn from(e: ppdl_netlist::NetlistError) -> Self {
        CoreError::Netlist(e)
    }
}

impl From<ppdl_analysis::AnalysisError> for CoreError {
    fn from(e: ppdl_analysis::AnalysisError) -> Self {
        CoreError::Analysis(e)
    }
}

impl From<ppdl_nn::NnError> for CoreError {
    fn from(e: ppdl_nn::NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<ppdl_floorplan::FloorplanError> for CoreError {
    fn from(e: ppdl_floorplan::FloorplanError) -> Self {
        CoreError::Floorplan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_converts_units_to_mv() {
        let e = CoreError::SizingDidNotConverge {
            iterations: 5,
            worst_ir: 0.1234,
            margin: 0.1,
        };
        let s = e.to_string();
        assert!(s.contains("123.4"), "{s}");
        assert!(s.contains("100.0"), "{s}");
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e = CoreError::from(ppdl_nn::NnError::EmptyDataset);
        assert!(e.source().is_some());
    }

    #[test]
    fn is_std_error() {
        fn check<T: std::error::Error + Send + Sync + 'static>() {}
        check::<CoreError>();
    }
}

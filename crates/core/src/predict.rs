//! The redesigned prediction API: train once, predict many.
//!
//! The paper's economics only work if a trained model is an *asset*:
//! the conventional sizing loop and MLP training run once, and every
//! subsequent ECO question ("what widths / worst IR drop if these loads
//! change?") is answered by inference alone. This module is the single
//! inference entry point behind that idea:
//!
//! * [`TrainedBundle`] — the persisted asset: the trained
//!   [`BackendModel`] (of any backend kind — MLP rows, CNN or
//!   encoder-decoder maps — models + fitted scalers), the calibrated
//!   base design recipe, and the golden widths, serialised as one
//!   versioned text artifact tagged with its backend and input spec.
//! * [`PredictRequest`] / [`PredictResponse`] — the typed query pair
//!   shared by the pipeline's Predict stage, the `ppdl serve` CLI, and
//!   the batched [`PredictionService`](../../ppdl_service) engine.
//! * [`predict`] — the one function that turns a request into a
//!   response; everything else routes through it.

use std::path::Path;
use std::time::Instant;

use ppdl_netlist::{IbmPgPreset, SyntheticBenchmark};

use crate::pipeline::{
    run_stage, ArtifactCache, FeatureExtractStage, PipelineCtx, StableHasher, TrainStage,
};
use crate::{
    BackendKind, BackendModel, CoreError, DlFlowConfig, InputSpec, IrPredictor, Perturbation,
    PerturbationKind, PredictedIr,
};

// ---------------------------------------------------------------------
// Wire tags
// ---------------------------------------------------------------------

/// The wire tag of a perturbation kind (`voltages` / `loads` / `both`),
/// used by the bundle format and the service's NDJSON protocol.
#[must_use]
pub fn kind_tag(kind: PerturbationKind) -> &'static str {
    match kind {
        PerturbationKind::NodeVoltages => "voltages",
        PerturbationKind::CurrentWorkloads => "loads",
        PerturbationKind::Both => "both",
    }
}

/// Parses a [`kind_tag`] back into a [`PerturbationKind`].
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for an unknown tag.
pub fn parse_kind(tag: &str) -> crate::Result<PerturbationKind> {
    match tag {
        "voltages" => Ok(PerturbationKind::NodeVoltages),
        "loads" => Ok(PerturbationKind::CurrentWorkloads),
        "both" => Ok(PerturbationKind::Both),
        other => Err(CoreError::InvalidConfig {
            detail: format!("unknown perturbation kind '{other}' (voltages|loads|both)"),
        }),
    }
}

// ---------------------------------------------------------------------
// Request / response
// ---------------------------------------------------------------------

/// One ECO query against a bundle's base design: an optional §IV-D
/// perturbation plus explicit per-load current overrides, answered by
/// width inference and Kirchhoff IR estimation — never a grid solve.
#[derive(Debug, Clone)]
pub struct PredictRequest {
    /// Caller-chosen identifier, echoed verbatim in the response so
    /// batched replies can be matched to their queries.
    pub id: String,
    /// Optional perturbation of the base design.
    pub perturbation: Option<Perturbation>,
    /// `(load index, amps)` overrides applied after the perturbation.
    pub load_overrides: Vec<(usize, f64)>,
    /// Explicit per-strap widths to evaluate instead of the model's
    /// inference (one entry per strap). When set, [`predict`] skips the
    /// width network and scores exactly these widths with the Kirchhoff
    /// IR estimator — the synthesis optimizer's cost-oracle mode.
    pub width_overrides: Option<Vec<f64>>,
    /// Segment-sampling stride override; `None` uses the bundle's
    /// configured stride.
    pub stride: Option<usize>,
}

impl PredictRequest {
    /// An identity request: predict on the unmodified base design.
    #[must_use]
    pub fn new(id: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            perturbation: None,
            load_overrides: Vec::new(),
            width_overrides: None,
            stride: None,
        }
    }

    /// Adds a perturbation.
    #[must_use]
    pub fn with_perturbation(mut self, perturbation: Perturbation) -> Self {
        self.perturbation = Some(perturbation);
        self
    }

    /// Adds one `(load index, amps)` override.
    #[must_use]
    pub fn with_load_override(mut self, index: usize, amps: f64) -> Self {
        self.load_overrides.push((index, amps));
        self
    }

    /// Overrides the inference stride.
    #[must_use]
    pub fn with_stride(mut self, stride: usize) -> Self {
        self.stride = Some(stride);
        self
    }

    /// Asks for these exact per-strap widths to be scored instead of
    /// running width inference (the synthesis oracle mode).
    #[must_use]
    pub fn with_widths(mut self, widths: Vec<f64>) -> Self {
        self.width_overrides = Some(widths);
        self
    }

    /// Validates the request's own fields (overrides finite and
    /// non-negative, stride non-zero when given).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] describing the bad field.
    pub fn validate(&self) -> crate::Result<()> {
        for &(index, amps) in &self.load_overrides {
            if !(amps.is_finite() && amps >= 0.0) {
                return Err(CoreError::InvalidConfig {
                    detail: format!("load override ({index}, {amps}) must be finite and >= 0"),
                });
            }
        }
        if self.stride == Some(0) {
            return Err(CoreError::InvalidConfig {
                detail: "inference stride must be at least 1".into(),
            });
        }
        if let Some(widths) = &self.width_overrides {
            if widths.is_empty() {
                return Err(CoreError::InvalidConfig {
                    detail: "width overrides must name at least one strap".into(),
                });
            }
            for (i, &w) in widths.iter().enumerate() {
                if !(w.is_finite() && w > 0.0) {
                    return Err(CoreError::InvalidConfig {
                        detail: format!("width override [{i}] = {w} must be finite and > 0"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Materialises the test design this request describes: perturb a
    /// copy of `base`, then apply the explicit load overrides.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range override indices with
    /// [`CoreError::InvalidConfig`] and propagates netlist errors.
    pub fn apply(&self, base: &SyntheticBenchmark) -> crate::Result<SyntheticBenchmark> {
        let mut bench = match &self.perturbation {
            Some(p) => p.apply(base)?,
            None => base.clone(),
        };
        let n_loads = bench.network().current_loads().len();
        for &(index, amps) in &self.load_overrides {
            if index >= n_loads {
                return Err(CoreError::InvalidConfig {
                    detail: format!("load override index {index} out of range ({n_loads} loads)"),
                });
            }
            bench.network_mut().set_load_current(index, amps)?;
        }
        if let Some(widths) = &self.width_overrides {
            // set_strap_widths enforces the one-entry-per-strap length
            // contract and re-derives every segment/via resistance.
            bench.set_strap_widths(widths)?;
        }
        Ok(bench)
    }

    /// Whether two requests ask the same question: every payload field
    /// compared, the `id` ignored — the equality the response cache
    /// verifies on a fingerprint hit, because a 64-bit
    /// [`fingerprint`](Self::fingerprint) can collide for distinct
    /// payloads. Floats compare by bit pattern (via `==` on finite
    /// values the validators admit), matching the fingerprint's own
    /// bit-level hashing.
    #[must_use]
    pub fn payload_eq(&self, other: &Self) -> bool {
        let perturbation_eq = match (&self.perturbation, &other.perturbation) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                a.gamma() == b.gamma() && a.kind() == b.kind() && a.seed() == b.seed()
            }
            _ => false,
        };
        perturbation_eq
            && self.load_overrides == other.load_overrides
            && self.width_overrides == other.width_overrides
            && self.stride == other.stride
    }

    /// A stable content fingerprint of the request *payload* (the `id`
    /// is excluded: two requests asking the same question share a
    /// fingerprint, which is what a response cache wants). Fingerprints
    /// are 64-bit hashes, so distinct payloads *can* collide — anything
    /// keyed by fingerprint must confirm with
    /// [`payload_eq`](Self::payload_eq) before trusting a hit.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new("predict-request");
        match &self.perturbation {
            Some(p) => {
                h.write_f64("gamma", p.gamma());
                h.write_str("kind", kind_tag(p.kind()));
                h.write_u64("perturbation_seed", p.seed());
            }
            None => h.write_str("perturbation", "none"),
        }
        h.write_u64("overrides", self.load_overrides.len() as u64);
        for &(index, amps) in &self.load_overrides {
            h.write_u64("index", index as u64);
            h.write_f64("amps", amps);
        }
        match &self.width_overrides {
            Some(widths) => {
                h.write_u64("widths", widths.len() as u64);
                for &w in widths {
                    h.write_f64("width", w);
                }
            }
            None => h.write_str("widths", "inferred"),
        }
        match self.stride {
            Some(s) => h.write_u64("stride", s as u64),
            None => h.write_str("stride", "default"),
        }
        h.finish().value()
    }
}

/// What a prediction query returns over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictResponse {
    /// The request's `id`, echoed.
    pub id: String,
    /// DL-predicted per-strap widths, in µm.
    pub widths: Vec<f64>,
    /// Kirchhoff-estimated worst-case IR drop, in mV.
    pub worst_ir_mv: f64,
    /// Milliseconds the inference path took.
    pub dl_ms: f64,
}

/// A full prediction: the wire response plus the in-process artifacts
/// (test design, per-node IR estimate) the pipeline stages consume.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// The wire-friendly summary.
    pub response: PredictResponse,
    /// The materialised test design the request described.
    pub test_bench: SyntheticBenchmark,
    /// The full Kirchhoff IR estimate (Algorithm 2).
    pub ir: PredictedIr,
    /// Seconds the inference path took (the response carries the same
    /// figure in milliseconds).
    pub dl_secs: f64,
}

/// The one inference entry point: answers `request` against `base`
/// with `predictor` — perturb/override, infer strap widths, estimate
/// IR drop by Kirchhoff accumulation. The pipeline's Predict stage,
/// the `ppdl serve` CLI, and the batched service all call this.
///
/// `default_stride` is used when the request does not override the
/// segment-sampling stride.
///
/// # Errors
///
/// Propagates request validation, netlist, and inference errors.
pub fn predict(
    predictor: &BackendModel,
    base: &SyntheticBenchmark,
    request: &PredictRequest,
    default_stride: usize,
) -> crate::Result<Prediction> {
    request.validate()?;
    let test_bench = request.apply(base)?;
    let stride = request.stride.unwrap_or(default_stride).max(1);
    // ppdl-lint: allow(determinism/wall-clock) -- reports dl_ms latency alongside the prediction; the widths themselves are deterministic
    let t0 = Instant::now();
    // Width overrides short-circuit inference: the request names the
    // exact widths to score (already applied to `test_bench` by
    // `apply`), so only the Kirchhoff IR estimate runs — the cheap
    // cost-oracle path the synthesis optimizer hammers.
    let widths = match &request.width_overrides {
        Some(w) => w.clone(),
        None => predictor.predict_strap_widths_sampled(&test_bench, stride)?,
    };
    let ir = IrPredictor::new().predict(&test_bench, &widths)?;
    let dl_secs = t0.elapsed().as_secs_f64();
    Ok(Prediction {
        response: PredictResponse {
            id: request.id.clone(),
            widths,
            worst_ir_mv: ir.worst_mv(),
            dl_ms: dl_secs * 1e3,
        },
        test_bench,
        ir,
        dl_secs,
    })
}

// ---------------------------------------------------------------------
// TrainedBundle
// ---------------------------------------------------------------------

/// Provenance of a trained bundle: everything needed to regenerate the
/// calibrated base design deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct BundleMeta {
    /// The IBM PG preset the model was trained on.
    pub preset: IbmPgPreset,
    /// Fraction of the published Table II size.
    pub scale: f64,
    /// Generation seed.
    pub seed: u64,
    /// IR margin (fraction of Vdd) the conventional sizing targeted.
    pub margin_fraction: f64,
    /// Default segment-sampling stride for inference.
    pub inference_stride: usize,
}

impl BundleMeta {
    /// A short human-readable provenance label
    /// (`preset@scale/seed/stride`), used by the serving registry's
    /// stats and log lines to tell resident bundles apart.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}@{}/s{}/k{}",
            self.preset.name(),
            self.scale,
            self.seed,
            self.inference_stride
        )
    }
}

/// The persisted prediction asset: a trained [`BackendModel`] (with
/// its fitted scalers), the provenance [`BundleMeta`], the calibrated
/// load currents, and the golden (conventionally sized) strap widths
/// of the base design.
///
/// The v2 text format tags the bundle with its [`BackendKind`] and
/// [`InputSpec`]; v1 bundles (which predate backend selection) still
/// load, as the MLP backend they always were.
///
/// A bundle is self-contained: [`instantiate_base`] regenerates the
/// exact sized benchmark the model was trained on — bit for bit,
/// because generation is deterministic in `(preset, scale, seed)` and
/// loads/widths round-trip through shortest-representation floats — so
/// a service process answers ECO queries without ever re-running the
/// conventional flow.
///
/// [`instantiate_base`]: TrainedBundle::instantiate_base
#[derive(Debug, Clone)]
pub struct TrainedBundle {
    /// The trained width surrogate, of any backend kind.
    pub predictor: BackendModel,
    /// Provenance: how to regenerate the base design.
    pub meta: BundleMeta,
    /// Calibrated load currents of the base design, in amps.
    pub loads: Vec<f64>,
    /// Golden per-strap widths from the conventional sizing, in µm.
    pub golden_widths: Vec<f64>,
}

impl TrainedBundle {
    /// The version header the encoder writes.
    pub const HEADER: &'static str = "ppdl-bundle v2";
    /// The legacy pre-backend header the loader still accepts (always
    /// an MLP body).
    pub const HEADER_V1: &'static str = "ppdl-bundle v1";

    /// The bundle's backend kind (derived from the model).
    #[must_use]
    pub fn backend(&self) -> BackendKind {
        self.predictor.kind()
    }

    /// The input geometry the bundle's model consumes.
    #[must_use]
    pub fn input_spec(&self) -> InputSpec {
        self.predictor.input_spec()
    }

    /// Trains a bundle by running the pipeline's train prefix
    /// (benchmark source → conventional sizing → backend training) for the
    /// standard experiment recipe, optionally against an artifact cache
    /// so a repeated training run decodes everything from disk.
    ///
    /// # Errors
    ///
    /// Propagates generation, calibration, sizing, and training errors.
    pub fn train(
        preset: IbmPgPreset,
        scale: f64,
        seed: u64,
        config: DlFlowConfig,
        cache: Option<&ArtifactCache>,
    ) -> crate::Result<Self> {
        let mut ctx = PipelineCtx::new(config, cache);
        run_stage(
            &crate::experiment::preset_source(preset, scale, seed),
            &mut ctx,
        )?;
        run_stage(&FeatureExtractStage, &mut ctx)?;
        run_stage(&TrainStage, &mut ctx)?;
        let loads: Vec<f64> = ctx
            .bench()?
            .bench
            .network()
            .current_loads()
            .iter()
            .map(|l| l.amps)
            .collect();
        let bundle = Self {
            predictor: ctx.trained()?.predictor.clone(),
            meta: BundleMeta {
                preset,
                scale,
                seed,
                margin_fraction: ctx.bench()?.margin_fraction,
                inference_stride: ctx.config.inference_stride,
            },
            loads,
            golden_widths: ctx.sizing()?.golden_widths.clone(),
        };
        bundle.validate()?;
        Ok(bundle)
    }

    /// Validates internal consistency: model shapes against scalers and
    /// feature set, plus sane metadata.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BundleMismatch`].
    pub fn validate(&self) -> crate::Result<()> {
        self.predictor.validate_shapes()?;
        if !(self.meta.scale > 0.0 && self.meta.scale.is_finite()) {
            return Err(CoreError::BundleMismatch {
                detail: format!("scale {} must be positive and finite", self.meta.scale),
            });
        }
        if self.meta.inference_stride == 0 {
            return Err(CoreError::BundleMismatch {
                detail: "inference stride must be at least 1".into(),
            });
        }
        if self.golden_widths.is_empty() {
            return Err(CoreError::BundleMismatch {
                detail: "bundle carries no golden widths".into(),
            });
        }
        Ok(())
    }

    /// Regenerates the sized base design the bundle was trained on:
    /// deterministic grid generation, then the calibrated loads and
    /// golden widths are restored — the same recipe the pipeline's
    /// warm-cache path uses, so the result is bit-identical to the
    /// original sized benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BundleMismatch`] when the stored vectors do
    /// not fit the regenerated grid (e.g. a bundle from a different
    /// build of the generator).
    pub fn instantiate_base(&self) -> crate::Result<SyntheticBenchmark> {
        let mut bench =
            SyntheticBenchmark::from_preset(self.meta.preset, self.meta.scale, self.meta.seed)?;
        let n_loads = bench.network().current_loads().len();
        if n_loads != self.loads.len() {
            return Err(CoreError::BundleMismatch {
                detail: format!(
                    "bundle stores {} load currents for a grid with {n_loads}",
                    self.loads.len()
                ),
            });
        }
        if bench.straps().len() != self.golden_widths.len() {
            return Err(CoreError::BundleMismatch {
                detail: format!(
                    "bundle stores {} golden widths for a grid with {} straps",
                    self.golden_widths.len(),
                    bench.straps().len()
                ),
            });
        }
        bench.set_load_currents(&self.loads)?;
        bench.set_strap_widths(&self.golden_widths)?;
        Ok(bench)
    }

    /// Answers one request against the bundle's base design, using the
    /// bundle's configured stride as the default.
    ///
    /// For a stream of requests, instantiate the base once and call
    /// [`predict`] directly (or use `ppdl_service::PredictionService`,
    /// which also batches) — this convenience regenerates the base per
    /// call.
    ///
    /// # Errors
    ///
    /// Propagates [`instantiate_base`](Self::instantiate_base) and
    /// [`predict`] errors.
    pub fn predict(&self, request: &PredictRequest) -> crate::Result<Prediction> {
        let base = self.instantiate_base()?;
        predict(&self.predictor, &base, request, self.meta.inference_stride)
    }

    /// Serialises the bundle as one versioned text artifact.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let join = |v: &[f64]| {
            v.iter()
                .map(|x| format!("{x}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        let mut out = String::new();
        let _ = writeln!(out, "{}", Self::HEADER);
        let _ = writeln!(out, "backend {}", self.backend().tag());
        let _ = writeln!(out, "input_spec {}", self.input_spec().encode());
        let _ = writeln!(out, "preset {}", self.meta.preset.name());
        let _ = writeln!(out, "scale {}", self.meta.scale);
        let _ = writeln!(out, "seed {}", self.meta.seed);
        let _ = writeln!(out, "margin_fraction {}", self.meta.margin_fraction);
        let _ = writeln!(out, "inference_stride {}", self.meta.inference_stride);
        let _ = writeln!(out, "loads {}", self.loads.len());
        let _ = writeln!(out, "{}", join(&self.loads));
        let _ = writeln!(out, "golden_widths {}", self.golden_widths.len());
        let _ = writeln!(out, "{}", join(&self.golden_widths));
        out.push_str(&self.predictor.to_text());
        out.push_str("end-bundle\n");
        out
    }

    /// Reconstructs a bundle from [`to_text`](Self::to_text) output,
    /// validating the version header, the backend/input-spec tags, and
    /// every shape invariant before returning. Legacy
    /// [`HEADER_V1`](Self::HEADER_V1) bundles (which predate backend
    /// tagging) load as the MLP backend.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BundleSchema`] — reporting what was found
    /// versus what was expected — for an unknown version, backend tag,
    /// or input spec; [`CoreError::BundleMismatch`] for truncation or
    /// inconsistent shapes; and [`CoreError::InvalidConfig`] (via the
    /// model codecs) for malformed bodies.
    pub fn from_text(text: &str) -> crate::Result<Self> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| mismatch("empty bundle file"))?
            .trim();
        let legacy = header == Self::HEADER_V1;
        if !legacy && header != Self::HEADER {
            return Err(CoreError::BundleSchema {
                field: "version".into(),
                found: header.to_string(),
                expected: format!("{} or {}", Self::HEADER_V1, Self::HEADER),
            });
        }
        let declared = if legacy {
            None
        } else {
            let tag = tagged(&mut lines, "backend")?;
            let kind = BackendKind::parse(tag).map_err(|_| CoreError::BundleSchema {
                field: "backend".into(),
                found: tag.to_string(),
                expected: "mlp, cnn, or encdec".into(),
            })?;
            let spec_text = tagged(&mut lines, "input_spec")?;
            let spec = InputSpec::parse(spec_text).map_err(|_| CoreError::BundleSchema {
                field: "input_spec".into(),
                found: spec_text.to_string(),
                expected: "'rows <n>' or 'maps <c> <h> <w>'".into(),
            })?;
            Some((kind, spec))
        };
        let preset: IbmPgPreset = tagged(&mut lines, "preset")?
            .parse()
            .map_err(|e| mismatch(format!("bad preset: {e}")))?;
        let scale: f64 = tagged(&mut lines, "scale")?
            .parse()
            .map_err(|_| mismatch("bad scale"))?;
        let seed: u64 = tagged(&mut lines, "seed")?
            .parse()
            .map_err(|_| mismatch("bad seed"))?;
        let margin_fraction: f64 = tagged(&mut lines, "margin_fraction")?
            .parse()
            .map_err(|_| mismatch("bad margin_fraction"))?;
        let inference_stride: usize = tagged(&mut lines, "inference_stride")?
            .parse()
            .map_err(|_| mismatch("bad inference_stride"))?;
        let loads = vec_field(&mut lines, "loads")?;
        let golden_widths = vec_field(&mut lines, "golden_widths")?;
        let body_start = ["ppdl-width-predictor v1", "ppdl-spatial v1"]
            .iter()
            .filter_map(|h| text.find(h))
            .min()
            .ok_or_else(|| mismatch("bundle missing predictor body"))?;
        if !text.trim_end().ends_with("end-bundle") {
            return Err(mismatch("bundle missing end-bundle trailer"));
        }
        let predictor = BackendModel::from_text(&text[body_start..])?;
        match declared {
            Some((kind, spec)) => {
                if predictor.kind() != kind {
                    return Err(CoreError::BundleSchema {
                        field: "backend".into(),
                        found: predictor.kind().tag().to_string(),
                        expected: kind.tag().to_string(),
                    });
                }
                if predictor.input_spec() != spec {
                    return Err(CoreError::BundleSchema {
                        field: "input_spec".into(),
                        found: predictor.input_spec().to_string(),
                        expected: spec.to_string(),
                    });
                }
            }
            // v1 bundles predate spatial backends; a spatial body under
            // a v1 header is a hand-edited or corrupted file.
            None => {
                if predictor.kind() != BackendKind::Mlp {
                    return Err(CoreError::BundleSchema {
                        field: "backend".into(),
                        found: predictor.kind().tag().to_string(),
                        expected: BackendKind::Mlp.tag().to_string(),
                    });
                }
            }
        }
        let bundle = Self {
            predictor,
            meta: BundleMeta {
                preset,
                scale,
                seed,
                margin_fraction,
                inference_stride,
            },
            loads,
            golden_widths,
        };
        bundle.validate()?;
        Ok(bundle)
    }

    /// Writes the bundle to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> crate::Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_text()).map_err(|e| CoreError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })
    }

    /// Reads and validates a bundle from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] on filesystem failure and
    /// [`from_text`](Self::from_text) errors on bad content.
    pub fn load(path: impl AsRef<Path>) -> crate::Result<Self> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| CoreError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        Self::from_text(&text)
    }
}

fn mismatch(detail: impl Into<String>) -> CoreError {
    CoreError::BundleMismatch {
        detail: detail.into(),
    }
}

fn tagged<'a>(lines: &mut std::str::Lines<'a>, tag: &str) -> crate::Result<&'a str> {
    let line = lines
        .next()
        .ok_or_else(|| mismatch(format!("truncated bundle, wanted {tag}")))?;
    line.trim_end()
        .strip_prefix(tag)
        .and_then(|rest| rest.strip_prefix(' '))
        .ok_or_else(|| mismatch(format!("expected '{tag} <value>', found '{line}'")))
}

fn vec_field(lines: &mut std::str::Lines<'_>, tag: &str) -> crate::Result<Vec<f64>> {
    let n: usize = tagged(lines, tag)?
        .parse()
        .map_err(|_| mismatch(format!("bad {tag} count")))?;
    let row = lines
        .next()
        .ok_or_else(|| mismatch(format!("truncated bundle, wanted {tag} values")))?;
    let values: Vec<f64> = row
        .split_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|_| mismatch(format!("bad float '{t}' in {tag}")))
        })
        .collect::<crate::Result<_>>()?;
    if values.len() != n {
        return Err(mismatch(format!(
            "{tag} declared {n} values, found {}",
            values.len()
        )));
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_bundle() -> TrainedBundle {
        TrainedBundle::train(IbmPgPreset::Ibmpg2, 0.006, 7, DlFlowConfig::fast(), None).unwrap()
    }

    #[test]
    fn bundle_round_trips_bitwise() {
        let bundle = fast_bundle();
        let text = bundle.to_text();
        let back = TrainedBundle::from_text(&text).unwrap();
        assert_eq!(back.to_text(), text, "re-encode must be bit-identical");
        assert_eq!(back.meta, bundle.meta);
        assert_eq!(back.loads, bundle.loads);
        assert_eq!(back.golden_widths, bundle.golden_widths);
    }

    #[test]
    fn base_instantiation_matches_training_substrate() {
        let bundle = fast_bundle();
        let base = bundle.instantiate_base().unwrap();
        assert_eq!(base.strap_widths(), bundle.golden_widths);
        let loads: Vec<f64> = base
            .network()
            .current_loads()
            .iter()
            .map(|l| l.amps)
            .collect();
        assert_eq!(loads, bundle.loads);
    }

    #[test]
    fn load_rejects_version_and_shape_mismatch() {
        let bundle = fast_bundle();
        let text = bundle.to_text();
        // Shrinking the declared feature set makes the 3-input models
        // inconsistent with it: a typed mismatch, not a panic.
        let narrowed = text.replace("feature_set combined", "feature_set x");
        let err = TrainedBundle::from_text(&narrowed).unwrap_err();
        assert_eq!(err.code(), "core/bundle_mismatch");
        // Truncation fails typed too.
        assert!(TrainedBundle::from_text(&text[..text.len() / 2]).is_err());
    }

    #[test]
    fn schema_error_reports_version_found_vs_expected() {
        let text = fast_bundle()
            .to_text()
            .replace("ppdl-bundle v2", "ppdl-bundle v9");
        match TrainedBundle::from_text(&text).unwrap_err() {
            CoreError::BundleSchema {
                field,
                found,
                expected,
            } => {
                assert_eq!(field, "version");
                assert_eq!(found, "ppdl-bundle v9");
                assert!(expected.contains("ppdl-bundle v1") && expected.contains("ppdl-bundle v2"));
            }
            other => panic!("wanted BundleSchema, got {other:?}"),
        }
    }

    #[test]
    fn schema_error_reports_backend_found_vs_expected() {
        let bundle = fast_bundle();
        // An unknown backend tag names the accepted set.
        let unknown = bundle
            .to_text()
            .replace("backend mlp", "backend transformer");
        match TrainedBundle::from_text(&unknown).unwrap_err() {
            CoreError::BundleSchema {
                field,
                found,
                expected,
            } => {
                assert_eq!(field, "backend");
                assert_eq!(found, "transformer");
                assert!(expected.contains("mlp"));
            }
            other => panic!("wanted BundleSchema, got {other:?}"),
        }
        // A known tag that disagrees with the model body reports both
        // sides (body says mlp, header says cnn).
        let lied = bundle.to_text().replace("backend mlp", "backend cnn");
        let lied = lied.replace("input_spec rows 3", "input_spec maps 2 8 8");
        match TrainedBundle::from_text(&lied).unwrap_err() {
            CoreError::BundleSchema {
                field,
                found,
                expected,
            } => {
                assert_eq!(field, "backend");
                assert_eq!(found, "mlp");
                assert_eq!(expected, "cnn");
            }
            other => panic!("wanted BundleSchema, got {other:?}"),
        }
    }

    #[test]
    fn schema_error_reports_input_spec_found_vs_expected() {
        let bundle = fast_bundle();
        // Unparseable spec text.
        let garbled = bundle
            .to_text()
            .replace("input_spec rows 3", "input_spec cols 3");
        match TrainedBundle::from_text(&garbled).unwrap_err() {
            CoreError::BundleSchema {
                field,
                found,
                expected,
            } => {
                assert_eq!(field, "input_spec");
                assert_eq!(found, "cols 3");
                assert!(expected.contains("rows") && expected.contains("maps"));
            }
            other => panic!("wanted BundleSchema, got {other:?}"),
        }
        // A well-formed spec that disagrees with the model body reports
        // found (the body's real geometry) vs expected (the declaration).
        let lied = bundle
            .to_text()
            .replace("input_spec rows 3", "input_spec rows 7");
        match TrainedBundle::from_text(&lied).unwrap_err() {
            CoreError::BundleSchema {
                field,
                found,
                expected,
            } => {
                assert_eq!(field, "input_spec");
                assert_eq!(found, "rows(3)");
                assert_eq!(expected, "rows(7)");
            }
            other => panic!("wanted BundleSchema, got {other:?}"),
        }
    }

    #[test]
    fn v1_text_loads_as_mlp_and_predicts_identically() {
        let bundle = fast_bundle();
        assert_eq!(bundle.backend(), BackendKind::Mlp);
        // Derive the legacy v1 encoding: old header, no backend or
        // input_spec lines.
        let v2 = bundle.to_text();
        let v1 = v2
            .replace("ppdl-bundle v2\n", "ppdl-bundle v1\n")
            .replace("backend mlp\n", "")
            .replace("input_spec rows 3\n", "");
        let legacy = TrainedBundle::from_text(&v1).unwrap();
        assert_eq!(legacy.backend(), BackendKind::Mlp);
        // Re-encoding a legacy bundle upgrades it to v2, bit-identically
        // to the original v2 encoding.
        assert_eq!(legacy.to_text(), v2);
        let p = Perturbation::new(0.1, PerturbationKind::Both, 5).unwrap();
        let request = PredictRequest::new("compat").with_perturbation(p);
        let a = bundle.predict(&request).unwrap();
        let b = legacy.predict(&request).unwrap();
        assert_eq!(a.response.widths, b.response.widths);
        assert_eq!(a.response.worst_ir_mv, b.response.worst_ir_mv);
        // A spatial body under a v1 header is rejected as malformed.
        let forged = v1.replace("ppdl-width-predictor v1", "ppdl-spatial v1");
        assert!(TrainedBundle::from_text(&forged).is_err());
    }

    #[test]
    fn bundle_predict_matches_direct_inference() {
        let bundle = fast_bundle();
        let base = bundle.instantiate_base().unwrap();
        let p = Perturbation::new(0.1, PerturbationKind::Both, 5).unwrap();
        let request = PredictRequest::new("q").with_perturbation(p);
        let via_bundle = bundle.predict(&request).unwrap();
        let direct = predict(
            &bundle.predictor,
            &base,
            &request,
            bundle.meta.inference_stride,
        )
        .unwrap();
        assert_eq!(via_bundle.response.widths, direct.response.widths);
        assert_eq!(via_bundle.response.worst_ir_mv, direct.response.worst_ir_mv);
        assert_eq!(via_bundle.ir.node_drops, direct.ir.node_drops);
    }

    #[test]
    fn request_apply_and_validation() {
        let bundle = fast_bundle();
        let base = bundle.instantiate_base().unwrap();
        let n_loads = base.network().current_loads().len();
        let modified = PredictRequest::new("eco")
            .with_load_override(0, 123e-6)
            .apply(&base)
            .unwrap();
        assert_eq!(modified.network().current_loads()[0].amps, 123e-6);
        assert_eq!(
            modified.network().current_loads()[1].amps,
            base.network().current_loads()[1].amps
        );
        assert!(PredictRequest::new("x")
            .with_load_override(n_loads, 1e-6)
            .apply(&base)
            .is_err());
        assert!(PredictRequest::new("x")
            .with_load_override(0, f64::NAN)
            .validate()
            .is_err());
        assert!(PredictRequest::new("x").with_stride(0).validate().is_err());
    }

    #[test]
    fn width_overrides_bypass_inference_and_score_exact_widths() {
        let bundle = fast_bundle();
        let base = bundle.instantiate_base().unwrap();
        let widths = vec![2.5; base.straps().len()];
        let request = PredictRequest::new("oracle").with_widths(widths.clone());
        let p = predict(
            &bundle.predictor,
            &base,
            &request,
            bundle.meta.inference_stride,
        )
        .unwrap();
        assert_eq!(p.response.widths, widths);
        assert_eq!(p.test_bench.strap_widths(), widths);
        // The score is the IR estimate for exactly those widths on the
        // overridden design.
        let direct = IrPredictor::new().predict(&p.test_bench, &widths).unwrap();
        assert_eq!(p.response.worst_ir_mv, direct.worst_mv());
        // Wrong length and non-positive widths are typed errors.
        assert!(PredictRequest::new("x")
            .with_widths(vec![1.0; 3])
            .apply(&base)
            .is_err());
        assert!(PredictRequest::new("x")
            .with_widths(vec![0.0])
            .validate()
            .is_err());
        assert!(PredictRequest::new("x")
            .with_widths(Vec::new())
            .validate()
            .is_err());
    }

    #[test]
    fn fingerprint_ignores_id_and_tracks_payload() {
        let p = Perturbation::new(0.1, PerturbationKind::Both, 5).unwrap();
        let a = PredictRequest::new("a").with_perturbation(p);
        let b = PredictRequest::new("b").with_perturbation(p);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let other = Perturbation::new(0.2, PerturbationKind::Both, 5).unwrap();
        assert_ne!(
            a.fingerprint(),
            PredictRequest::new("a")
                .with_perturbation(other)
                .fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            PredictRequest::new("a")
                .with_perturbation(p)
                .with_stride(2)
                .fingerprint()
        );
        let widened = PredictRequest::new("a")
            .with_perturbation(p)
            .with_widths(vec![1.5, 2.0]);
        assert_ne!(a.fingerprint(), widened.fingerprint());
        assert!(!a.payload_eq(&widened));
        assert!(widened.payload_eq(&widened.clone()));
    }

    #[test]
    fn kind_tags_round_trip() {
        for kind in PerturbationKind::ALL {
            assert_eq!(parse_kind(kind_tag(kind)).unwrap(), kind);
        }
        assert!(parse_kind("sideways").is_err());
    }
}

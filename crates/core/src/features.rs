//! Feature extraction (§IV-B of the paper).
//!
//! Each power-grid interconnect (wire segment) contributes one training
//! sample: the quadruple `(X, Y, Id, wᵢ)` where `(X, Y)` is the
//! segment's location on the floorplan, `Id` is the switching current
//! of the functional block under it (from the front-end activity data),
//! and `wᵢ` is the golden width produced by the conventional flow.

use ppdl_netlist::SyntheticBenchmark;
use ppdl_nn::{Dataset, Matrix, StandardScaler};

use crate::CoreError;

/// Which input features the model sees — the Table I / Fig. 4(b)
/// ablation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FeatureSet {
    /// X coordinate only.
    X,
    /// Y coordinate only.
    Y,
    /// Switching current only.
    Id,
    /// All three (the paper's choice: highest r²).
    #[default]
    Combined,
}

impl FeatureSet {
    /// All variants, in Table I column order.
    pub const ALL: [FeatureSet; 4] = [
        FeatureSet::X,
        FeatureSet::Y,
        FeatureSet::Id,
        FeatureSet::Combined,
    ];

    /// Number of feature columns.
    #[must_use]
    pub fn width(self) -> usize {
        match self {
            FeatureSet::Combined => 3,
            _ => 1,
        }
    }

    /// Table-friendly label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FeatureSet::X => "X coordinate",
            FeatureSet::Y => "Y coordinate",
            FeatureSet::Id => "Id",
            FeatureSet::Combined => "Combined",
        }
    }
}

/// A prepared width-regression dataset: standardised features and
/// targets plus the scalers needed to undo the standardisation at
/// prediction time.
#[derive(Debug, Clone)]
pub struct WidthDataset {
    /// The standardised (features, widths) pairs.
    pub data: Dataset,
    /// Scaler fitted on the raw features.
    pub feature_scaler: StandardScaler,
    /// Scaler fitted on the raw widths.
    pub target_scaler: StandardScaler,
    /// Which features the columns hold.
    pub feature_set: FeatureSet,
}

/// Extracts `(X, Y, Id)` features from a benchmark's segments.
///
/// # Example
///
/// ```
/// use ppdl_core::{FeatureExtractor, FeatureSet};
/// use ppdl_netlist::{IbmPgPreset, SyntheticBenchmark};
///
/// let bench = SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg1, 0.01, 3).unwrap();
/// let raw = FeatureExtractor::new(FeatureSet::Combined).raw_features(&bench);
/// assert_eq!(raw.rows(), bench.segments().len());
/// assert_eq!(raw.cols(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FeatureExtractor {
    feature_set: FeatureSet,
}

impl FeatureExtractor {
    /// Creates an extractor for the given feature subset.
    #[must_use]
    pub fn new(feature_set: FeatureSet) -> Self {
        Self { feature_set }
    }

    /// The configured feature subset.
    #[must_use]
    pub fn feature_set(&self) -> FeatureSet {
        self.feature_set
    }

    /// The raw (unscaled) feature matrix, one row per segment.
    ///
    /// `Id` for a segment is the switching current of the functional
    /// block covering its midpoint, `0` over whitespace — exactly the
    /// per-location activity the paper reads from the VCD file.
    #[must_use]
    pub fn raw_features(&self, bench: &SyntheticBenchmark) -> Matrix {
        let segs = bench.segments();
        let fp = bench.floorplan();
        let fs = self.feature_set;
        Matrix::from_fn(segs.len(), fs.width(), |r, c| {
            let seg = &segs[r];
            let id_current = fp
                .block_at(seg.x, seg.y)
                .map_or(0.0, ppdl_floorplan::FunctionalBlock::switching_current);
            match (fs, c) {
                (FeatureSet::X, 0) => seg.x,
                (FeatureSet::Y, 0) => seg.y,
                (FeatureSet::Id, 0) => id_current,
                (FeatureSet::Combined, 0) => seg.x,
                (FeatureSet::Combined, 1) => seg.y,
                (FeatureSet::Combined, 2) => id_current,
                _ => unreachable!("feature width bounded by FeatureSet::width"),
            }
        })
    }

    /// Raw features for a subset of segments (by index), one row per
    /// entry of `indices`, in order.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn raw_features_for(&self, bench: &SyntheticBenchmark, indices: &[usize]) -> Matrix {
        let segs = bench.segments();
        let fp = bench.floorplan();
        let fs = self.feature_set;
        Matrix::from_fn(indices.len(), fs.width(), |r, c| {
            let seg = &segs[indices[r]];
            let id_current = fp
                .block_at(seg.x, seg.y)
                .map_or(0.0, ppdl_floorplan::FunctionalBlock::switching_current);
            match (fs, c) {
                (FeatureSet::X, 0) => seg.x,
                (FeatureSet::Y, 0) => seg.y,
                (FeatureSet::Id, 0) => id_current,
                (FeatureSet::Combined, 0) => seg.x,
                (FeatureSet::Combined, 1) => seg.y,
                (FeatureSet::Combined, 2) => id_current,
                // ppdl-lint: allow(robustness/panic-reachable) -- Matrix::from_fn only passes c < fs.width(), and every (set, column) pair below that bound is matched above; this arm cannot execute for any request
                _ => unreachable!("feature width bounded by FeatureSet::width"),
            }
        })
    }

    /// The raw width-target column: each segment's golden strap width.
    /// `golden_widths` is indexed by strap id (as produced by the
    /// conventional flow).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `golden_widths` does not
    /// have one entry per strap.
    pub fn raw_targets(
        &self,
        bench: &SyntheticBenchmark,
        golden_widths: &[f64],
    ) -> crate::Result<Matrix> {
        if golden_widths.len() != bench.straps().len() {
            return Err(CoreError::InvalidConfig {
                detail: format!(
                    "{} golden widths for {} straps",
                    golden_widths.len(),
                    bench.straps().len()
                ),
            });
        }
        let segs = bench.segments();
        Ok(Matrix::from_fn(segs.len(), 1, |r, _| {
            golden_widths[segs[r].strap]
        }))
    }

    /// Builds the standardised training dataset (features and targets
    /// scaled to zero mean / unit variance).
    ///
    /// # Errors
    ///
    /// Propagates dataset/scaler construction errors, e.g. for a
    /// benchmark with no segments.
    pub fn dataset(
        &self,
        bench: &SyntheticBenchmark,
        golden_widths: &[f64],
    ) -> crate::Result<WidthDataset> {
        let raw_x = self.raw_features(bench);
        let raw_y = self.raw_targets(bench, golden_widths)?;
        let feature_scaler = StandardScaler::fit(&raw_x)?;
        let target_scaler = StandardScaler::fit(&raw_y)?;
        let data = Dataset::new(
            feature_scaler.transform(&raw_x)?,
            target_scaler.transform(&raw_y)?,
        )?;
        Ok(WidthDataset {
            data,
            feature_scaler,
            target_scaler,
            feature_set: self.feature_set,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdl_netlist::{GridSpec, IbmPgPreset};

    fn bench() -> SyntheticBenchmark {
        SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg1, 0.01, 5).unwrap()
    }

    #[test]
    fn feature_widths() {
        assert_eq!(FeatureSet::X.width(), 1);
        assert_eq!(FeatureSet::Combined.width(), 3);
        assert_eq!(FeatureSet::ALL.len(), 4);
    }

    #[test]
    fn combined_columns_are_x_y_id() {
        let b = bench();
        let combined = FeatureExtractor::new(FeatureSet::Combined).raw_features(&b);
        let x = FeatureExtractor::new(FeatureSet::X).raw_features(&b);
        let y = FeatureExtractor::new(FeatureSet::Y).raw_features(&b);
        let id = FeatureExtractor::new(FeatureSet::Id).raw_features(&b);
        for r in 0..combined.rows() {
            assert_eq!(combined.get(r, 0), x.get(r, 0));
            assert_eq!(combined.get(r, 1), y.get(r, 0));
            assert_eq!(combined.get(r, 2), id.get(r, 0));
        }
    }

    #[test]
    fn features_match_segment_midpoints() {
        let b = bench();
        let m = FeatureExtractor::new(FeatureSet::Combined).raw_features(&b);
        for (r, seg) in b.segments().iter().enumerate() {
            assert_eq!(m.get(r, 0), seg.x);
            assert_eq!(m.get(r, 1), seg.y);
        }
    }

    #[test]
    fn id_zero_over_whitespace() {
        // A floorplan with a single small block: most segments see Id=0.
        let spec = GridSpec {
            die_width: 400.0,
            die_height: 400.0,
            v_straps: 8,
            h_straps: 8,
            ..GridSpec::default()
        };
        let mut fp = ppdl_floorplan::Floorplan::new(400.0, 400.0).unwrap();
        fp.add_block(ppdl_floorplan::FunctionalBlock::new("b", 0.0, 0.0, 60.0, 60.0, 0.7).unwrap())
            .unwrap();
        let b = SyntheticBenchmark::generate("t", spec, fp).unwrap();
        let id = FeatureExtractor::new(FeatureSet::Id).raw_features(&b);
        let nonzero = id.as_slice().iter().filter(|v| **v > 0.0).count();
        assert!(nonzero > 0);
        assert!(nonzero < id.rows() / 2);
        // Non-zero entries equal the block current exactly.
        for v in id.as_slice() {
            assert!(*v == 0.0 || (*v - 0.7).abs() < 1e-12);
        }
    }

    #[test]
    fn targets_follow_strap_ids() {
        let b = bench();
        let widths: Vec<f64> = (0..b.straps().len()).map(|i| 1.0 + i as f64).collect();
        let t = FeatureExtractor::default()
            .raw_targets(&b, &widths)
            .unwrap();
        for (r, seg) in b.segments().iter().enumerate() {
            assert_eq!(t.get(r, 0), widths[seg.strap]);
        }
    }

    #[test]
    fn wrong_width_count_rejected() {
        let b = bench();
        let err = FeatureExtractor::default()
            .raw_targets(&b, &[1.0, 2.0])
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { .. }));
    }

    #[test]
    fn dataset_is_standardised() {
        let b = bench();
        let widths: Vec<f64> = b.strap_widths().iter().map(|w| w * 1.3).collect();
        let ds = FeatureExtractor::default().dataset(&b, &widths).unwrap();
        assert_eq!(ds.data.len(), b.segments().len());
        // Standardised features: overall mean near zero.
        assert!(ds.data.x().mean().abs() < 1e-9);
        // Scalers invert.
        let back = ds.target_scaler.inverse_transform(ds.data.y()).unwrap();
        for (v, seg) in back.as_slice().iter().zip(b.segments()) {
            assert!((v - widths[seg.strap]).abs() < 1e-9);
        }
    }
}

//! Structured run manifests.
//!
//! Every experiment run writes a `RunManifest` JSON file next to its
//! CSV artefacts: which stages ran, which were served from the artifact
//! cache, how long each took, the headline metrics, and enough
//! environment (git describe, thread count) to reproduce the run. The
//! JSON is hand-rolled — the workspace is dependency-free by design —
//! and uses only scalars, strings, and flat arrays, so any consumer
//! can parse it.

use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use super::cache::CacheKey;

/// What happened to one pipeline stage during a run.
#[derive(Debug, Clone)]
pub struct StageRecord {
    /// Stage name (`bench-source`, `feature-extract`, `train`,
    /// `predict`, `validate`).
    pub name: String,
    /// The content-address of the stage's artifact, if cacheable.
    pub key: Option<CacheKey>,
    /// Whether the artifact was served from the cache.
    pub cache_hit: bool,
    /// Wall-clock time the stage took (decode time on a hit).
    pub wall: Duration,
}

/// A structured record of one experiment run.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Registry name of the experiment (e.g. `table4_speedup`).
    pub experiment: String,
    /// Configuration echoes (`scale`, `seed`, …), in insertion order.
    pub config: Vec<(String, String)>,
    /// Per-stage outcomes, in execution order.
    pub stages: Vec<StageRecord>,
    /// Headline numeric metrics, in insertion order.
    pub metrics: Vec<(String, f64)>,
    /// Output files the run produced (CSV paths etc.).
    pub outputs: Vec<String>,
    /// `git describe --always --dirty` at run time, or `unknown`.
    pub git_describe: String,
    /// Worker threads the solver/NN pool was configured with.
    pub threads: usize,
    /// Seconds since the Unix epoch when the run started.
    pub started_unix: u64,
    /// Total wall-clock time of the run.
    pub wall: Duration,
    /// A pre-serialised telemetry snapshot
    /// (`ppdl_obs::Registry::snapshot_json`), embedded verbatim in the
    /// manifest JSON when telemetry collection was on for the run.
    pub telemetry: Option<String>,
}

impl RunManifest {
    /// Starts a manifest for the named experiment, capturing the
    /// environment (git describe, thread count, start time).
    #[must_use]
    pub fn new(experiment: &str) -> Self {
        Self {
            experiment: experiment.to_string(),
            config: Vec::new(),
            stages: Vec::new(),
            metrics: Vec::new(),
            outputs: Vec::new(),
            git_describe: git_describe(),
            threads: ppdl_solver::parallel::current_threads(),
            // ppdl-lint: allow(determinism/wall-clock) -- manifest provenance timestamp; excluded from cache keys and result comparison
            started_unix: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| d.as_secs()),
            wall: Duration::ZERO,
            telemetry: None,
        }
    }

    /// Echoes a configuration value.
    pub fn set_config(&mut self, key: &str, value: impl std::fmt::Display) {
        self.config.push((key.to_string(), value.to_string()));
    }

    /// Records a headline metric.
    pub fn add_metric(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_string(), value));
    }

    /// Records an output file path.
    pub fn add_output(&mut self, path: impl AsRef<Path>) {
        self.outputs.push(path.as_ref().display().to_string());
    }

    /// Appends stage records, namespacing them (`prefix/stage`) so an
    /// experiment that runs the pipeline per preset keeps them apart.
    pub fn record_stages(&mut self, prefix: &str, records: &[StageRecord]) {
        for r in records {
            let mut r = r.clone();
            if !prefix.is_empty() {
                r.name = format!("{prefix}/{}", r.name);
            }
            self.stages.push(r);
        }
    }

    /// Number of stages served from the artifact cache.
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.stages.iter().filter(|s| s.cache_hit).count()
    }

    /// `true` when every recorded stage was a cache hit — the warm-run
    /// condition the CI smoke job asserts.
    #[must_use]
    pub fn full_cache_hit(&self) -> bool {
        !self.stages.is_empty() && self.cache_hits() == self.stages.len()
    }

    /// Serialises the manifest to pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        push_field(&mut out, "experiment", &json_string(&self.experiment));
        push_field(&mut out, "git_describe", &json_string(&self.git_describe));
        push_field(&mut out, "threads", &self.threads.to_string());
        push_field(&mut out, "started_unix", &self.started_unix.to_string());
        push_field(
            &mut out,
            "wall_ms",
            &format!("{:.3}", self.wall.as_secs_f64() * 1e3),
        );
        push_field(&mut out, "stage_count", &self.stages.len().to_string());
        push_field(&mut out, "cache_hits", &self.cache_hits().to_string());
        push_field(
            &mut out,
            "full_cache_hit",
            if self.full_cache_hit() {
                "true"
            } else {
                "false"
            },
        );

        out.push_str("  \"config\": {\n");
        for (i, (k, v)) in self.config.iter().enumerate() {
            let comma = if i + 1 < self.config.len() { "," } else { "" };
            out.push_str(&format!(
                "    {}: {}{comma}\n",
                json_string(k),
                json_string(v)
            ));
        }
        out.push_str("  },\n");

        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            let comma = if i + 1 < self.stages.len() { "," } else { "" };
            let key = s
                .key
                .map_or_else(|| "null".to_string(), |k| json_string(&k.hex()));
            out.push_str(&format!(
                "    {{\"name\": {}, \"key\": {key}, \"cache_hit\": {}, \"wall_ms\": {:.3}}}{comma}\n",
                json_string(&s.name),
                s.cache_hit,
                s.wall.as_secs_f64() * 1e3,
            ));
        }
        out.push_str("  ],\n");

        out.push_str("  \"metrics\": {\n");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            out.push_str(&format!(
                "    {}: {}{comma}\n",
                json_string(k),
                json_number(*v)
            ));
        }
        out.push_str("  },\n");

        if let Some(snapshot) = &self.telemetry {
            out.push_str("  \"telemetry\": ");
            out.push_str(snapshot);
            out.push_str(",\n");
        }

        out.push_str("  \"outputs\": [\n");
        for (i, o) in self.outputs.iter().enumerate() {
            let comma = if i + 1 < self.outputs.len() { "," } else { "" };
            out.push_str(&format!("    {}{comma}\n", json_string(o)));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `<experiment>_manifest.json` into `dir`, returning the
    /// path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or file.
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}_manifest.json", self.experiment));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

fn push_field(out: &mut String, key: &str, value: &str) {
    out.push_str(&format!("  {}: {value},\n", json_string(key)));
}

/// JSON-escapes a string (quotes, backslashes, control characters).
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (`null` for non-finite values,
/// which JSON cannot represent).
#[must_use]
pub fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map_or_else(|| "unknown".to_string(), |s| s.trim().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(1.5), "1.5");
    }

    #[test]
    fn manifest_counts_hits_and_serialises() {
        let mut m = RunManifest::new("unit_test");
        m.set_config("scale", 0.02);
        m.add_metric("r2", 0.93);
        m.record_stages(
            "ibmpg1",
            &[
                StageRecord {
                    name: "train".into(),
                    key: None,
                    cache_hit: true,
                    wall: Duration::from_millis(5),
                },
                StageRecord {
                    name: "validate".into(),
                    key: None,
                    cache_hit: false,
                    wall: Duration::from_millis(7),
                },
            ],
        );
        assert_eq!(m.cache_hits(), 1);
        assert!(!m.full_cache_hit());
        let json = m.to_json();
        assert!(json.contains("\"experiment\": \"unit_test\""));
        assert!(json.contains("\"ibmpg1/train\""));
        assert!(json.contains("\"full_cache_hit\": false"));
        assert!(json.contains("\"r2\": 0.93"));
    }

    #[test]
    fn telemetry_snapshot_embeds_verbatim() {
        let mut m = RunManifest::new("telemetry_unit");
        assert!(!m.to_json().contains("\"telemetry\""));
        m.telemetry = Some("{\"counters\":{},\"histograms\":{},\"spans\":{}}".into());
        let json = m.to_json();
        assert!(json.contains("\"telemetry\": {\"counters\":{}"));
    }

    #[test]
    fn empty_manifest_is_not_full_hit() {
        let m = RunManifest::new("empty");
        assert!(!m.full_cache_hit());
    }

    #[test]
    fn manifest_write_creates_file() {
        let dir = std::env::temp_dir().join("ppdl_manifest_unit");
        let _ = std::fs::remove_dir_all(&dir);
        let m = RunManifest::new("unit_write");
        let p = m.write(&dir).unwrap();
        assert!(p.ends_with("unit_write_manifest.json"));
        assert!(std::fs::read_to_string(p).unwrap().starts_with('{'));
    }
}

//! Content-addressed artifact cache for pipeline stages.
//!
//! Every stage output that is expensive to recompute — calibrated load
//! currents, golden strap widths, trained predictor weights, solver
//! ground-truth voltages — is stored under a [`CacheKey`]: a stable
//! 64-bit hash of everything that went into producing it (preset,
//! scale, seed, every hyperparameter, and the key of the upstream
//! stage). Identical configuration therefore maps to identical keys
//! across processes and sessions, and any field change maps to a new
//! key, so stale artifacts can never be served.
//!
//! The hash is FNV-1a over tagged field encodings (floats contribute
//! their IEEE-754 bit patterns), *not* Rust's `DefaultHasher`, whose
//! output is explicitly unstable across releases. Artifacts are
//! versioned text files — the same philosophy as [`ppdl_nn`]'s model
//! persistence — so a corrupt or stale-format file fails decoding and
//! the stage transparently recomputes.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A stable content-address for one stage artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(u64);

impl CacheKey {
    /// The key as a fixed-width hex string (the artifact's file stem).
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// The raw 64-bit value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

/// FNV-1a hasher over tagged field encodings.
///
/// Each write mixes the field tag before the value, so two configs
/// that happen to serialise the same bytes in different fields still
/// hash apart, and reordering fields changes the key.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// Starts a hash for the given domain (usually the stage name).
    #[must_use]
    pub fn new(domain: &str) -> Self {
        let mut h = Self { state: FNV_OFFSET };
        h.write_bytes(domain.as_bytes());
        h
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Mixes a tagged string field.
    pub fn write_str(&mut self, tag: &str, value: &str) {
        self.write_bytes(tag.as_bytes());
        self.write_bytes(&[0x1f]);
        self.write_bytes(value.as_bytes());
        self.write_bytes(&[0x1e]);
    }

    /// Mixes a tagged integer field.
    pub fn write_u64(&mut self, tag: &str, value: u64) {
        self.write_bytes(tag.as_bytes());
        self.write_bytes(&[0x1f]);
        self.write_bytes(&value.to_le_bytes());
        self.write_bytes(&[0x1e]);
    }

    /// Mixes a tagged float field through its IEEE-754 bit pattern, so
    /// `0.1 + 0.2` and `0.3` hash apart just as they compare apart.
    pub fn write_f64(&mut self, tag: &str, value: f64) {
        self.write_u64(tag, value.to_bits());
    }

    /// Mixes a whole float slice (e.g. a width vector fingerprint).
    pub fn write_f64_slice(&mut self, tag: &str, values: &[f64]) {
        self.write_u64(tag, values.len() as u64);
        for v in values {
            self.write_bytes(&v.to_bits().to_le_bytes());
        }
        self.write_bytes(&[0x1e]);
    }

    /// Chains an upstream stage's key into this one.
    pub fn write_key(&mut self, tag: &str, key: CacheKey) {
        self.write_u64(tag, key.0);
    }

    /// Finalises the key.
    #[must_use]
    pub fn finish(self) -> CacheKey {
        CacheKey(self.state)
    }
}

/// Hit/miss/store counters, total and per stage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Artifacts served from disk.
    pub hits: usize,
    /// Lookups that found nothing (or an undecodable artifact).
    pub misses: usize,
    /// Artifacts written after a stage executed.
    pub stores: usize,
    /// The same counters broken down by stage name.
    pub per_stage: BTreeMap<String, (usize, usize, usize)>,
}

impl CacheStats {
    /// How many times the named stage actually *executed* (stored a
    /// fresh artifact) — the counter the train-once sweep assertion
    /// checks.
    #[must_use]
    pub fn executions(&self, stage: &str) -> usize {
        self.per_stage.get(stage).map_or(0, |&(_, _, s)| s)
    }

    /// Hits recorded for the named stage.
    #[must_use]
    pub fn hits_for(&self, stage: &str) -> usize {
        self.per_stage.get(stage).map_or(0, |&(h, _, _)| h)
    }
}

/// A directory of content-addressed stage artifacts.
///
/// Layout: `<root>/<stage>-<key>.art`, one versioned text file per
/// artifact. The cache never invalidates by time — a key embeds every
/// input, so an artifact is valid for exactly as long as its key is
/// asked for.
#[derive(Debug)]
pub struct ArtifactCache {
    root: PathBuf,
    stats: Mutex<CacheStats>,
}

impl ArtifactCache {
    /// Opens (lazily creating) a cache rooted at `root`.
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self {
            root: root.into(),
            stats: Mutex::new(CacheStats::default()),
        }
    }

    /// The cache directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_for(&self, stage: &str, key: CacheKey) -> PathBuf {
        self.root.join(format!("{stage}-{}.art", key.hex()))
    }

    /// Loads the artifact text for `(stage, key)`, if present.
    ///
    /// A missing file counts as a miss; the caller records a hit via
    /// [`note_hit`](Self::note_hit) only after the text also decodes,
    /// so corrupt artifacts are counted as misses and recomputed.
    #[must_use]
    pub fn load(&self, stage: &str, key: CacheKey) -> Option<String> {
        std::fs::read_to_string(self.path_for(stage, key)).ok()
    }

    /// Counters stay usable even if a panicking thread poisoned the
    /// mutex: the stats are plain counters with no invariant to
    /// protect, so recover the guard (robustness/unwrap-in-lib).
    fn stats_guard(&self) -> std::sync::MutexGuard<'_, CacheStats> {
        self.stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records a successful artifact decode.
    pub fn note_hit(&self, stage: &str) {
        let mut s = self.stats_guard();
        s.hits += 1;
        s.per_stage.entry(stage.to_string()).or_default().0 += 1;
    }

    /// Records a lookup that found nothing usable.
    pub fn note_miss(&self, stage: &str) {
        let mut s = self.stats_guard();
        s.misses += 1;
        s.per_stage.entry(stage.to_string()).or_default().1 += 1;
    }

    /// Stores an artifact, creating the cache directory on first use.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or file.
    pub fn store(&self, stage: &str, key: CacheKey, text: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.root)?;
        let path = self.path_for(stage, key);
        std::fs::write(&path, text)?;
        let mut s = self.stats_guard();
        s.stores += 1;
        s.per_stage.entry(stage.to_string()).or_default().2 += 1;
        Ok(path)
    }

    /// A snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats_guard().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_sensitive() {
        let key = |scale: f64, seed: u64| {
            let mut h = StableHasher::new("bench");
            h.write_str("preset", "ibmpg2");
            h.write_f64("scale", scale);
            h.write_u64("seed", seed);
            h.finish()
        };
        assert_eq!(key(0.02, 7), key(0.02, 7));
        assert_ne!(key(0.02, 7), key(0.02, 8));
        assert_ne!(key(0.02, 7), key(0.021, 7));
    }

    #[test]
    fn tag_separation_prevents_field_bleed() {
        let mut a = StableHasher::new("d");
        a.write_str("x", "ab");
        a.write_str("y", "c");
        let mut b = StableHasher::new("d");
        b.write_str("x", "a");
        b.write_str("y", "bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn store_load_round_trip_and_stats() {
        let dir = std::env::temp_dir().join("ppdl_cache_unit");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ArtifactCache::new(&dir);
        let key = StableHasher::new("t").finish();
        assert!(cache.load("train", key).is_none());
        cache.note_miss("train");
        cache.store("train", key, "payload v1\n").unwrap();
        assert_eq!(cache.load("train", key).unwrap(), "payload v1\n");
        cache.note_hit("train");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.stores), (1, 1, 1));
        assert_eq!(s.executions("train"), 1);
        assert_eq!(s.hits_for("train"), 1);
    }
}

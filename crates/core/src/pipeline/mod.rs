//! Staged experiment pipeline with content-addressed artifact caching.
//!
//! The paper's whole argument is *train once, predict many*; this
//! module makes the reproduction actually work that way. Every
//! experiment is the same five-stage pipeline,
//!
//! ```text
//! BenchmarkSource → FeatureExtract → Train → Predict → Validate
//!      │                  │            │        │          │
//!  calibrated         golden widths  trained  predicted  solver
//!  loads (artifact)   (artifact)     weights  widths+IR  voltages
//!                                    (artifact) (artifact) (artifact)
//! ```
//!
//! where each stage is a [`Stage`] trait object that reads its inputs
//! from the shared [`PipelineCtx`], writes one typed artifact slot, and
//! exposes a stable [`CacheKey`] derived from every input that affects
//! its output (preset, scale, seed, hyperparameters, and the upstream
//! stage's key). Give the pipeline an [`ArtifactCache`] and a repeated
//! run with identical configuration decodes every artifact from disk —
//! bitwise-identically, because artifacts round-trip through Rust's
//! shortest-round-trip float formatting — instead of re-running
//! benchmark generation, conventional sizing, model training, and
//! ground-truth solves. A [`RunManifest`] records what happened:
//! per-stage timings, cache hits, metrics, `git describe`, and the
//! thread count.
//!
//! The stage names map onto the paper (and onto the legacy modules)
//! as follows: `BenchmarkSource` wraps generation plus
//! [`calibrate_to_worst_ir`](crate::calibrate_to_worst_ir);
//! `FeatureExtract` wraps the conventional sizing loop that
//! manufactures the golden labels the features are extracted against
//! (§IV-B); `Train` wraps [`BackendModel::train`]; `Predict` wraps
//! the perturb → width-inference → Kirchhoff-IR path (§IV-D,
//! Algorithm 2); `Validate` wraps the conventional ground-truth
//! analysis and the quality metrics.

mod cache;
mod manifest;
mod stages;

pub use cache::{ArtifactCache, CacheKey, CacheStats, StableHasher};
pub use manifest::{json_number, json_string, RunManifest, StageRecord};
pub use stages::{
    BenchmarkSourceStage, FeatureExtractStage, PredictStage, TrainStage, ValidateStage,
};

use std::time::Instant;

use ppdl_netlist::SyntheticBenchmark;

use crate::{BackendModel, DlFlowConfig, PredictedIr, TrainSummary, WidthMetrics};
use ppdl_analysis::IrDropReport;

/// The benchmark-source artifact slot: a calibrated benchmark plus the
/// margin the conventional flow should target.
#[derive(Debug, Clone)]
pub struct BenchSlot {
    /// The calibrated benchmark.
    pub bench: SyntheticBenchmark,
    /// IR margin as a fraction of Vdd.
    pub margin_fraction: f64,
    /// The margin in volts (the Table III target), when preset-derived.
    pub target_worst_ir: f64,
    /// Total load-scaling factor calibration applied (1.0 when the
    /// bench was provided pre-calibrated).
    pub calibration_factor: f64,
}

/// The feature-extraction artifact slot: the conventionally sized
/// design and its golden widths (the training labels).
#[derive(Debug, Clone)]
pub struct SizingSlot {
    /// The sized benchmark (training substrate).
    pub sized: SyntheticBenchmark,
    /// Converged per-strap widths — the golden labels.
    pub golden_widths: Vec<f64>,
    /// Design-loop iterations the sizing needed.
    pub iterations: usize,
    /// Final worst-case IR drop (volts).
    pub worst_ir: f64,
    /// Seconds spent in power-grid analysis during sizing.
    pub analysis_secs: f64,
    /// Seconds of the final single analysis solve.
    pub single_secs: f64,
}

/// The train artifact slot: the fitted predictor and its report.
#[derive(Debug, Clone)]
pub struct TrainSlot {
    /// The trained width surrogate, of whichever backend the config
    /// selected.
    pub predictor: BackendModel,
    /// Per-direction training reports (spatial backends report in the
    /// `vertical` slot only).
    pub summary: TrainSummary,
}

/// The predict artifact slot: the perturbed test design and the DL
/// path's outputs on it.
#[derive(Debug, Clone)]
pub struct PredictSlot {
    /// The perturbed test benchmark (§IV-D).
    pub test_bench: SyntheticBenchmark,
    /// DL-predicted per-strap widths.
    pub predicted_widths: Vec<f64>,
    /// Kirchhoff IR-drop estimate.
    pub predicted_ir: PredictedIr,
    /// Seconds the width-inference + IR-prediction path took when it
    /// actually executed (restored from the artifact on a hit, so the
    /// Table IV numbers survive caching).
    pub dl_secs: f64,
}

/// The validate artifact slot: ground-truth analysis and metrics.
#[derive(Debug, Clone)]
pub struct ValidateSlot {
    /// Conventional analysis report of the test design.
    pub report: IrDropReport,
    /// Seconds the ground-truth solve took when it executed.
    pub conv_secs: f64,
    /// Width-prediction quality on the test design.
    pub metrics: WidthMetrics,
}

/// Shared state threaded through the stages: configuration in, one
/// typed artifact slot per stage out.
#[derive(Debug, Clone)]
pub struct PipelineCtx<'a> {
    /// The flow configuration (the bench-source stage may override the
    /// conventional margin with the preset's Table III target).
    pub config: DlFlowConfig,
    /// Artifact cache, if caching is enabled.
    pub cache: Option<&'a ArtifactCache>,
    /// Rolling key: each stage chains its own key onto its
    /// predecessor's, so downstream keys change whenever any upstream
    /// input does.
    pub chain: Option<CacheKey>,
    /// Benchmark-source output.
    pub bench: Option<BenchSlot>,
    /// Feature-extraction (conventional sizing) output.
    pub sizing: Option<SizingSlot>,
    /// Training output.
    pub trained: Option<TrainSlot>,
    /// Prediction output.
    pub predicted: Option<PredictSlot>,
    /// Validation output.
    pub validated: Option<ValidateSlot>,
    /// What happened to each stage, in execution order.
    pub records: Vec<StageRecord>,
}

impl<'a> PipelineCtx<'a> {
    /// Creates an empty context.
    #[must_use]
    pub fn new(config: DlFlowConfig, cache: Option<&'a ArtifactCache>) -> Self {
        Self {
            config,
            cache,
            chain: None,
            bench: None,
            sizing: None,
            trained: None,
            predicted: None,
            validated: None,
            records: Vec::new(),
        }
    }

    fn missing(slot: &str) -> crate::CoreError {
        crate::CoreError::InvalidConfig {
            detail: format!("pipeline stage ordering bug: {slot} slot not populated"),
        }
    }

    /// The benchmark slot, or a typed error if the source stage has not
    /// run.
    pub fn bench(&self) -> crate::Result<&BenchSlot> {
        self.bench.as_ref().ok_or_else(|| Self::missing("bench"))
    }

    /// The sizing slot.
    pub fn sizing(&self) -> crate::Result<&SizingSlot> {
        self.sizing.as_ref().ok_or_else(|| Self::missing("sizing"))
    }

    /// The train slot.
    pub fn trained(&self) -> crate::Result<&TrainSlot> {
        self.trained.as_ref().ok_or_else(|| Self::missing("train"))
    }

    /// The predict slot.
    pub fn predicted(&self) -> crate::Result<&PredictSlot> {
        self.predicted
            .as_ref()
            .ok_or_else(|| Self::missing("predict"))
    }

    /// The validate slot.
    pub fn validated(&self) -> crate::Result<&ValidateSlot> {
        self.validated
            .as_ref()
            .ok_or_else(|| Self::missing("validate"))
    }
}

/// One experiment stage: computes a cache key from its inputs, and
/// either decodes a cached artifact into its slot or executes and
/// encodes the slot for storage.
pub trait Stage {
    /// Stable stage name (used in manifests and artifact file names).
    fn name(&self) -> &'static str;

    /// The content-address of this stage's output given the context so
    /// far, or `None` when the stage is not cacheable (e.g. a
    /// caller-provided benchmark object).
    fn cache_key(&self, ctx: &PipelineCtx) -> Option<CacheKey>;

    /// Decodes a cached artifact into the context slot. Errors mean
    /// "artifact unusable, recompute" — they are counted as misses,
    /// not failures.
    fn decode(&self, ctx: &mut PipelineCtx, text: &str) -> crate::Result<()>;

    /// Computes the stage output from the context.
    fn execute(&self, ctx: &mut PipelineCtx) -> crate::Result<()>;

    /// Encodes the slot for cache storage (`None` = don't store).
    fn encode(&self, ctx: &PipelineCtx) -> Option<String>;
}

/// A sequence of stages run against one context.
pub struct Pipeline {
    stages: Vec<Box<dyn Stage>>,
}

impl Pipeline {
    /// Builds a pipeline from an explicit stage list.
    #[must_use]
    pub fn new(stages: Vec<Box<dyn Stage>>) -> Self {
        Self { stages }
    }

    /// The full five-stage experiment pipeline for a preset benchmark.
    #[must_use]
    pub fn standard(source: BenchmarkSourceStage) -> Self {
        Self::new(vec![
            Box::new(source),
            Box::new(FeatureExtractStage),
            Box::new(TrainStage),
            Box::new(PredictStage::from_config()),
            Box::new(ValidateStage),
        ])
    }

    /// Runs every stage in order, consulting the cache around each.
    ///
    /// # Errors
    ///
    /// Propagates the first stage execution error. Cache *decode*
    /// errors never fail a run — the stage recomputes instead.
    pub fn run(&self, ctx: &mut PipelineCtx) -> crate::Result<()> {
        for stage in &self.stages {
            run_stage(stage.as_ref(), ctx)?;
        }
        Ok(())
    }
}

/// Runs a single stage against a context: key → cache probe → decode
/// or execute → store → record. Exposed so composite flows (sweeps)
/// can run stage subsets without duplicating the bookkeeping.
pub fn run_stage(stage: &dyn Stage, ctx: &mut PipelineCtx) -> crate::Result<()> {
    // The span wraps the whole probe/decode/execute/store sequence, so
    // solver/NN spans opened inside a stage nest under
    // `pipeline/<stage>/…` in the telemetry snapshot.
    let _stage_span = ppdl_obs::span(&format!("pipeline/{}", stage.name()));
    let key = stage.cache_key(ctx);
    // ppdl-lint: allow(determinism/wall-clock) -- measures pipeline wall time for the manifest; artifacts and cache keys never depend on it
    let t0 = Instant::now();
    let mut hit = false;
    if let (Some(cache), Some(key)) = (ctx.cache, key) {
        if let Some(text) = cache.load(stage.name(), key) {
            hit = stage.decode(ctx, &text).is_ok();
        }
        if hit {
            cache.note_hit(stage.name());
        } else {
            cache.note_miss(stage.name());
        }
    }
    if !hit {
        stage.execute(ctx)?;
        if let (Some(cache), Some(key)) = (ctx.cache, key) {
            if let Some(text) = stage.encode(ctx) {
                // Failing to persist is not a pipeline failure; the
                // next run simply recomputes.
                let _ = cache.store(stage.name(), key, &text);
            }
        }
    }
    ppdl_obs::counter_add("pipeline/stages", 1);
    if hit {
        ppdl_obs::counter_add("pipeline/cache_hits", 1);
    }
    ctx.chain = key.or(ctx.chain);
    ctx.records.push(StageRecord {
        name: stage.name().to_string(),
        key,
        cache_hit: hit,
        wall: t0.elapsed(),
    });
    Ok(())
}

//! The five standard pipeline stages and their artifact codecs.
//!
//! Artifacts are versioned, line-oriented text (the same format family
//! as [`ppdl_nn`]'s model persistence): floats are written with Rust's
//! shortest-round-trip formatting, so decode → re-encode is lossless
//! and a warm run reproduces the cold run's numbers bit for bit.

use std::time::Instant;

use ppdl_analysis::{AnalysisOptions, IrDropReport, StaticAnalysis};
use ppdl_netlist::{IbmPgPreset, SyntheticBenchmark};
use ppdl_nn::TrainReport;

use super::cache::{CacheKey, StableHasher};
use super::{BenchSlot, PipelineCtx, PredictSlot, SizingSlot, Stage, TrainSlot, ValidateSlot};
use crate::{
    calibrate_to_worst_ir, BackendModel, ConventionalFlow, CoreError, Perturbation, PredictedIr,
    PredictorConfig, TrainSummary,
};

// ---------------------------------------------------------------------
// Codec helpers
// ---------------------------------------------------------------------

fn decode_err(detail: impl Into<String>) -> CoreError {
    CoreError::InvalidConfig {
        detail: detail.into(),
    }
}

fn fmt_vec(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Line-oriented artifact reader with tagged fields.
struct Reader<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str, header: &str) -> crate::Result<Self> {
        let mut r = Self {
            lines: text.lines(),
        };
        let first = r.line("header")?;
        if first != header {
            return Err(decode_err(format!("bad artifact header '{first}'")));
        }
        Ok(r)
    }

    fn line(&mut self, what: &str) -> crate::Result<&'a str> {
        self.lines
            .next()
            .map(str::trim_end)
            .ok_or_else(|| decode_err(format!("truncated artifact, wanted {what}")))
    }

    fn tagged(&mut self, tag: &str) -> crate::Result<&'a str> {
        let line = self.line(tag)?;
        line.strip_prefix(tag)
            .and_then(|rest| rest.strip_prefix(' '))
            .ok_or_else(|| decode_err(format!("expected '{tag} <value>', found '{line}'")))
    }

    fn tagged_f64(&mut self, tag: &str) -> crate::Result<f64> {
        let raw = self.tagged(tag)?;
        raw.parse()
            .map_err(|_| decode_err(format!("bad float '{raw}' for {tag}")))
    }

    fn tagged_usize(&mut self, tag: &str) -> crate::Result<usize> {
        let raw = self.tagged(tag)?;
        raw.parse()
            .map_err(|_| decode_err(format!("bad integer '{raw}' for {tag}")))
    }

    /// Reads `tag <n>` followed by one line of `n` floats.
    fn vec(&mut self, tag: &str) -> crate::Result<Vec<f64>> {
        let n = self.tagged_usize(tag)?;
        // Encoders always emit the values line, even when empty.
        let row = self.line(tag)?;
        let values: Vec<f64> = row
            .split_whitespace()
            .map(|t| {
                t.parse()
                    .map_err(|_| decode_err(format!("bad float '{t}' in {tag}")))
            })
            .collect::<crate::Result<_>>()?;
        if values.len() != n {
            return Err(decode_err(format!(
                "{tag} declared {n} values, found {}",
                values.len()
            )));
        }
        Ok(values)
    }

    fn expect_end(&mut self) -> crate::Result<()> {
        match self.line("end")? {
            "end" => Ok(()),
            other => Err(decode_err(format!("expected 'end', found '{other}'"))),
        }
    }
}

fn hash_analysis(h: &mut StableHasher, a: &AnalysisOptions) {
    h.write_f64("tolerance", a.tolerance);
    h.write_u64("max_iterations", a.max_iterations as u64);
    h.write_str("preconditioner", &format!("{:?}", a.preconditioner));
}

fn hash_predictor_config(h: &mut StableHasher, c: &PredictorConfig) {
    h.write_str("feature_set", &format!("{:?}", c.feature_set));
    h.write_u64("hidden_layers", c.hidden_layers as u64);
    h.write_u64("hidden_width", c.hidden_width as u64);
    h.write_str("activation", &format!("{:?}", c.activation));
    h.write_u64("epochs", c.train.epochs as u64);
    h.write_u64("batch_size", c.train.batch_size as u64);
    h.write_f64("learning_rate", c.train.learning_rate);
    h.write_str("loss", &format!("{:?}", c.train.loss));
    h.write_f64("weight_decay", c.train.weight_decay);
    h.write_u64("shuffle_seed", c.train.shuffle_seed);
    h.write_f64("validation_split", c.train.validation_split);
    h.write_u64("patience", c.train.patience as u64);
    h.write_u64("seed", c.seed);
    h.write_f64("min_width", c.min_width);
    h.write_u64("map_size", c.map_size as u64);
    h.write_u64("conv_channels", c.conv_channels as u64);
}

// ---------------------------------------------------------------------
// BenchmarkSource
// ---------------------------------------------------------------------

/// Stage 1: produce the (calibrated) benchmark under test.
///
/// `Preset` generates an IBM PG preset at a scale/seed and — unless
/// `overdrive` is `None` — calibrates its loads so the initial design
/// violates the preset's Table III margin by the overdrive factor,
/// then overrides the conventional margin in the context config, the
/// same recipe as [`experiment::prepare`](crate::experiment::prepare).
/// The cached artifact is the post-calibration load-current vector:
/// a warm run regenerates the deterministic grid and restores the
/// loads, skipping every calibration solve.
///
/// `Provided` wraps a caller-supplied benchmark; its key is a content
/// fingerprint (widths, loads, supply, element counts), so downstream
/// stages still cache correctly.
#[derive(Debug, Clone)]
pub enum BenchmarkSourceStage {
    /// Generate (and optionally calibrate) a preset benchmark.
    Preset {
        /// Which IBM PG benchmark to synthesise.
        preset: IbmPgPreset,
        /// Fraction of the published Table II size.
        scale: f64,
        /// Generation seed.
        seed: u64,
        /// Margin-violation factor for load calibration; `None` skips
        /// calibration (generation-only experiments).
        overdrive: Option<f64>,
    },
    /// Use a benchmark object the caller already holds.
    Provided(Box<SyntheticBenchmark>),
}

impl BenchmarkSourceStage {
    /// A calibrated preset source — the standard experiment recipe.
    #[must_use]
    pub fn preset(preset: IbmPgPreset, scale: f64, seed: u64, overdrive: f64) -> Self {
        Self::Preset {
            preset,
            scale,
            seed,
            overdrive: Some(overdrive),
        }
    }

    /// An uncalibrated preset source (generation-only experiments).
    #[must_use]
    pub fn uncalibrated(preset: IbmPgPreset, scale: f64, seed: u64) -> Self {
        Self::Preset {
            preset,
            scale,
            seed,
            overdrive: None,
        }
    }

    /// A caller-provided benchmark.
    #[must_use]
    pub fn provided(bench: SyntheticBenchmark) -> Self {
        Self::Provided(Box::new(bench))
    }

    const HEADER: &'static str = "ppdl-art bench-source v1";

    fn slot_from_bench(
        ctx: &PipelineCtx,
        bench: SyntheticBenchmark,
        target: Option<f64>,
        factor: f64,
    ) -> crate::Result<BenchSlot> {
        let vdd = bench
            .network()
            .supply_voltage()
            .ok_or(CoreError::Analysis(ppdl_analysis::AnalysisError::NoSupply))?;
        let margin_fraction = match target {
            Some(t) => t / vdd,
            None => ctx.config.conventional.ir_margin_fraction,
        };
        Ok(BenchSlot {
            bench,
            margin_fraction,
            target_worst_ir: target.unwrap_or(margin_fraction * vdd),
            calibration_factor: factor,
        })
    }
}

impl Stage for BenchmarkSourceStage {
    fn name(&self) -> &'static str {
        "bench-source"
    }

    fn cache_key(&self, _ctx: &PipelineCtx) -> Option<CacheKey> {
        let mut h = StableHasher::new("bench-source");
        match self {
            Self::Preset {
                preset,
                scale,
                seed,
                overdrive,
            } => {
                h.write_str("preset", preset.name());
                h.write_f64("scale", *scale);
                h.write_u64("seed", *seed);
                match overdrive {
                    Some(o) => h.write_f64("overdrive", *o),
                    None => h.write_str("overdrive", "none"),
                }
            }
            Self::Provided(bench) => {
                h.write_str("source", "provided");
                h.write_str("name", bench.name());
                let stats = bench.network().stats();
                h.write_u64("nodes", stats.nodes as u64);
                h.write_u64("resistors", stats.resistors as u64);
                h.write_f64("vdd", bench.network().supply_voltage().unwrap_or(f64::NAN));
                h.write_f64_slice("widths", &bench.strap_widths());
                let loads: Vec<f64> = bench
                    .network()
                    .current_loads()
                    .iter()
                    .map(|l| l.amps)
                    .collect();
                h.write_f64_slice("loads", &loads);
            }
        }
        Some(h.finish())
    }

    fn decode(&self, ctx: &mut PipelineCtx, text: &str) -> crate::Result<()> {
        let mut r = Reader::new(text, Self::HEADER)?;
        let margin_fraction = r.tagged_f64("margin_fraction")?;
        let target = r.tagged_f64("target_worst_ir")?;
        let factor = r.tagged_f64("calibration_factor")?;
        let loads = r.vec("loads")?;
        r.expect_end()?;
        let (bench, calibrated) = match self {
            Self::Preset {
                preset,
                scale,
                seed,
                overdrive,
            } => {
                let mut bench = SyntheticBenchmark::from_preset(*preset, *scale, *seed)?;
                if bench.network().current_loads().len() != loads.len() {
                    return Err(decode_err("cached load vector does not match grid"));
                }
                bench.set_load_currents(&loads)?;
                (bench, overdrive.is_some())
            }
            Self::Provided(bench) => (bench.as_ref().clone(), false),
        };
        if calibrated {
            ctx.config.conventional.ir_margin_fraction = margin_fraction;
        }
        ctx.bench = Some(BenchSlot {
            bench,
            margin_fraction,
            target_worst_ir: target,
            calibration_factor: factor,
        });
        Ok(())
    }

    fn execute(&self, ctx: &mut PipelineCtx) -> crate::Result<()> {
        let slot = match self {
            Self::Preset {
                preset,
                scale,
                seed,
                overdrive,
            } => {
                let mut bench = SyntheticBenchmark::from_preset(*preset, *scale, *seed)?;
                let target = crate::experiment::target_worst_ir(*preset);
                let factor = match overdrive {
                    Some(overdrive) => {
                        if !(*overdrive > 1.0 && overdrive.is_finite()) {
                            return Err(CoreError::InvalidConfig {
                                detail: format!("overdrive {overdrive} must exceed 1"),
                            });
                        }
                        calibrate_to_worst_ir(&mut bench, overdrive * target)?
                    }
                    None => 1.0,
                };
                let slot = Self::slot_from_bench(ctx, bench, overdrive.map(|_| target), factor)?;
                if overdrive.is_some() {
                    ctx.config.conventional.ir_margin_fraction = slot.margin_fraction;
                }
                slot
            }
            Self::Provided(bench) => Self::slot_from_bench(ctx, bench.as_ref().clone(), None, 1.0)?,
        };
        ctx.bench = Some(slot);
        Ok(())
    }

    fn encode(&self, ctx: &PipelineCtx) -> Option<String> {
        let slot = ctx.bench.as_ref()?;
        let loads: Vec<f64> = slot
            .bench
            .network()
            .current_loads()
            .iter()
            .map(|l| l.amps)
            .collect();
        let mut out = String::new();
        out.push_str(Self::HEADER);
        out.push('\n');
        out.push_str(&format!("margin_fraction {}\n", slot.margin_fraction));
        out.push_str(&format!("target_worst_ir {}\n", slot.target_worst_ir));
        out.push_str(&format!("calibration_factor {}\n", slot.calibration_factor));
        out.push_str(&format!("loads {}\n{}\n", loads.len(), fmt_vec(&loads)));
        out.push_str("end\n");
        Some(out)
    }
}

// ---------------------------------------------------------------------
// FeatureExtract
// ---------------------------------------------------------------------

/// Stage 2: manufacture the golden labels the features are extracted
/// against (§IV-B) by running the conventional iterative sizing loop.
///
/// The cached artifact is the converged width vector (plus the loop's
/// bookkeeping); a warm run applies the widths to the source benchmark
/// and skips every sizing-loop analysis solve — the single most
/// expensive part of a cold experiment.
#[derive(Debug, Clone, Copy)]
pub struct FeatureExtractStage;

impl FeatureExtractStage {
    const HEADER: &'static str = "ppdl-art feature-extract v1";
}

impl Stage for FeatureExtractStage {
    fn name(&self) -> &'static str {
        "feature-extract"
    }

    fn cache_key(&self, ctx: &PipelineCtx) -> Option<CacheKey> {
        let chain = ctx.chain?;
        let c = &ctx.config.conventional;
        let mut h = StableHasher::new("feature-extract");
        h.write_key("chain", chain);
        h.write_f64("ir_margin_fraction", c.ir_margin_fraction);
        h.write_f64("jmax", c.jmax);
        h.write_f64("widen_factor", c.widen_factor);
        h.write_u64("max_iterations", c.max_iterations as u64);
        h.write_f64("max_width", c.max_width);
        hash_analysis(&mut h, &c.analysis);
        Some(h.finish())
    }

    fn decode(&self, ctx: &mut PipelineCtx, text: &str) -> crate::Result<()> {
        let mut r = Reader::new(text, Self::HEADER)?;
        let iterations = r.tagged_usize("iterations")?;
        let worst_ir = r.tagged_f64("worst_ir")?;
        let analysis_secs = r.tagged_f64("analysis_secs")?;
        let single_secs = r.tagged_f64("single_secs")?;
        let widths = r.vec("widths")?;
        r.expect_end()?;
        let mut sized = ctx.bench()?.bench.clone();
        sized.set_strap_widths(&widths)?;
        ctx.sizing = Some(SizingSlot {
            sized,
            golden_widths: widths,
            iterations,
            worst_ir,
            analysis_secs,
            single_secs,
        });
        Ok(())
    }

    fn execute(&self, ctx: &mut PipelineCtx) -> crate::Result<()> {
        let flow = ConventionalFlow::new(ctx.config.conventional.clone());
        let (sized, result) = flow.run(&ctx.bench()?.bench)?;
        ctx.sizing = Some(SizingSlot {
            sized,
            golden_widths: result.widths,
            iterations: result.iterations,
            worst_ir: result.worst_ir,
            analysis_secs: result.analysis_time.as_secs_f64(),
            single_secs: result.single_analysis_time.as_secs_f64(),
        });
        Ok(())
    }

    fn encode(&self, ctx: &PipelineCtx) -> Option<String> {
        let s = ctx.sizing.as_ref()?;
        let mut out = String::new();
        out.push_str(Self::HEADER);
        out.push('\n');
        out.push_str(&format!("iterations {}\n", s.iterations));
        out.push_str(&format!("worst_ir {}\n", s.worst_ir));
        out.push_str(&format!("analysis_secs {}\n", s.analysis_secs));
        out.push_str(&format!("single_secs {}\n", s.single_secs));
        out.push_str(&format!(
            "widths {}\n{}\n",
            s.golden_widths.len(),
            fmt_vec(&s.golden_widths)
        ));
        out.push_str("end\n");
        Some(out)
    }
}

// ---------------------------------------------------------------------
// Train
// ---------------------------------------------------------------------

/// Stage 3: fit the configured surrogate backend on the sized design.
///
/// The cached artifact is the full model — tagged with its backend
/// kind, via the lossless [`ppdl_nn`]-family text persistence — plus
/// the training reports, so a warm run restores a bit-identical model
/// without touching the optimizer. The cache key covers the backend
/// selection, so switching backends never aliases artifacts.
#[derive(Debug, Clone, Copy)]
pub struct TrainStage;

impl TrainStage {
    const HEADER: &'static str = "ppdl-art train v2";

    fn encode_report(out: &mut String, tag: &str, r: &TrainReport) {
        out.push_str(&format!(
            "report {tag} {} {}\n",
            r.epochs_run,
            u8::from(r.early_stopped)
        ));
        out.push_str(&format!(
            "train_losses {}\n{}\n",
            r.train_losses.len(),
            fmt_vec(&r.train_losses)
        ));
        out.push_str(&format!(
            "val_losses {}\n{}\n",
            r.val_losses.len(),
            fmt_vec(&r.val_losses)
        ));
    }

    fn decode_report(r: &mut Reader, tag: &str) -> crate::Result<TrainReport> {
        let decl = r.tagged("report")?;
        let mut fields = decl.split_whitespace();
        if fields.next() != Some(tag) {
            return Err(decode_err(format!("expected report {tag}, found '{decl}'")));
        }
        let epochs_run: usize = fields
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| decode_err("bad epochs_run"))?;
        let early_stopped = fields.next() == Some("1");
        let train_losses = r.vec("train_losses")?;
        let val_losses = r.vec("val_losses")?;
        Ok(TrainReport {
            train_losses,
            val_losses,
            epochs_run,
            early_stopped,
        })
    }
}

impl Stage for TrainStage {
    fn name(&self) -> &'static str {
        "train"
    }

    fn cache_key(&self, ctx: &PipelineCtx) -> Option<CacheKey> {
        let chain = ctx.chain?;
        let mut h = StableHasher::new("train");
        h.write_key("chain", chain);
        h.write_str("backend", ctx.config.backend.tag());
        hash_predictor_config(&mut h, &ctx.config.predictor);
        Some(h.finish())
    }

    fn decode(&self, ctx: &mut PipelineCtx, text: &str) -> crate::Result<()> {
        let mut r = Reader::new(text, Self::HEADER)?;
        let backend = crate::BackendKind::parse(r.tagged("backend")?)?;
        let vertical = Self::decode_report(&mut r, "vertical")?;
        let horizontal = Self::decode_report(&mut r, "horizontal")?;
        // The model body follows the reports, starting at its own
        // versioned header.
        let body_header = match backend {
            crate::BackendKind::Mlp => "ppdl-width-predictor v1",
            crate::BackendKind::Cnn | crate::BackendKind::EncoderDecoder => "ppdl-spatial v1",
        };
        let body_start = text
            .find(body_header)
            .ok_or_else(|| decode_err("train artifact missing model body"))?;
        let predictor = BackendModel::from_text(&text[body_start..])?;
        if predictor.kind() != backend {
            return Err(decode_err(format!(
                "train artifact tagged {} but body decodes as {}",
                backend.tag(),
                predictor.kind().tag()
            )));
        }
        ctx.trained = Some(TrainSlot {
            predictor,
            summary: TrainSummary {
                vertical,
                horizontal,
            },
        });
        Ok(())
    }

    fn execute(&self, ctx: &mut PipelineCtx) -> crate::Result<()> {
        let sizing = ctx.sizing()?;
        let (predictor, summary) = BackendModel::train(
            &sizing.sized,
            &sizing.golden_widths,
            ctx.config.backend,
            &ctx.config.predictor,
        )?;
        ctx.trained = Some(TrainSlot { predictor, summary });
        Ok(())
    }

    fn encode(&self, ctx: &PipelineCtx) -> Option<String> {
        let t = ctx.trained.as_ref()?;
        let mut out = String::new();
        out.push_str(Self::HEADER);
        out.push('\n');
        out.push_str(&format!("backend {}\n", t.predictor.kind().tag()));
        Self::encode_report(&mut out, "vertical", &t.summary.vertical);
        Self::encode_report(&mut out, "horizontal", &t.summary.horizontal);
        out.push_str(&t.predictor.to_text());
        Some(out)
    }
}

// ---------------------------------------------------------------------
// Predict
// ---------------------------------------------------------------------

/// Stage 4: the PowerPlanningDL fast path — perturb the sized design
/// (§IV-D), infer widths with the trained model, and estimate IR drop
/// with Kirchhoff accumulation (Algorithm 2).
///
/// The perturbed test bench itself is *recomputed* on a warm run (it
/// is a cheap deterministic transform of the cached sized design);
/// the cached artifact carries the predicted widths, the IR estimate,
/// and the cold run's inference wall-time so Table IV survives caching.
#[derive(Debug, Clone)]
pub struct PredictStage {
    perturbation: Option<Perturbation>,
}

impl PredictStage {
    const HEADER: &'static str = "ppdl-art predict v1";

    /// Perturb according to the context's [`DlFlowConfig`]
    /// (`perturbation_gamma` / `perturbation_kind` / `seed`).
    #[must_use]
    pub fn from_config() -> Self {
        Self { perturbation: None }
    }

    /// Perturb with an explicit point (sweep usage).
    #[must_use]
    pub fn with_perturbation(perturbation: Perturbation) -> Self {
        Self {
            perturbation: Some(perturbation),
        }
    }

    fn perturbation(&self, ctx: &PipelineCtx) -> crate::Result<Perturbation> {
        match &self.perturbation {
            Some(p) => Ok(*p),
            None => Perturbation::new(
                ctx.config.perturbation_gamma,
                ctx.config.perturbation_kind,
                ctx.config.seed,
            ),
        }
    }
}

impl Stage for PredictStage {
    fn name(&self) -> &'static str {
        "predict"
    }

    fn cache_key(&self, ctx: &PipelineCtx) -> Option<CacheKey> {
        let chain = ctx.chain?;
        let p = self.perturbation(ctx).ok()?;
        let mut h = StableHasher::new("predict");
        h.write_key("chain", chain);
        h.write_f64("gamma", p.gamma());
        h.write_str("kind", &format!("{:?}", p.kind()));
        h.write_u64("seed", p.seed());
        h.write_u64("inference_stride", ctx.config.inference_stride as u64);
        Some(h.finish())
    }

    fn decode(&self, ctx: &mut PipelineCtx, text: &str) -> crate::Result<()> {
        let mut r = Reader::new(text, Self::HEADER)?;
        let dl_secs = r.tagged_f64("dl_secs")?;
        let worst = r.tagged_f64("ir_worst")?;
        let predicted_widths = r.vec("strap_widths")?;
        let node_drops = r.vec("node_drops")?;
        let segment_drops = r.vec("segment_drops")?;
        r.expect_end()?;
        let test_bench = self.perturbation(ctx)?.apply(&ctx.sizing()?.sized)?;
        ctx.predicted = Some(PredictSlot {
            test_bench,
            predicted_widths,
            predicted_ir: PredictedIr {
                node_drops,
                worst,
                segment_drops,
            },
            dl_secs,
        });
        Ok(())
    }

    fn execute(&self, ctx: &mut PipelineCtx) -> crate::Result<()> {
        // The stage is a thin adapter over the shared inference entry
        // point, so the pipeline, the CLI, and the batched service all
        // answer queries through exactly the same code path.
        let request = crate::predict::PredictRequest::new("pipeline")
            .with_perturbation(self.perturbation(ctx)?);
        let prediction = crate::predict::predict(
            &ctx.trained()?.predictor,
            &ctx.sizing()?.sized,
            &request,
            ctx.config.inference_stride,
        )?;
        ctx.predicted = Some(PredictSlot {
            test_bench: prediction.test_bench,
            predicted_widths: prediction.response.widths,
            predicted_ir: prediction.ir,
            dl_secs: prediction.dl_secs,
        });
        Ok(())
    }

    fn encode(&self, ctx: &PipelineCtx) -> Option<String> {
        let p = ctx.predicted.as_ref()?;
        let mut out = String::new();
        out.push_str(Self::HEADER);
        out.push('\n');
        out.push_str(&format!("dl_secs {}\n", p.dl_secs));
        out.push_str(&format!("ir_worst {}\n", p.predicted_ir.worst));
        out.push_str(&format!(
            "strap_widths {}\n{}\n",
            p.predicted_widths.len(),
            fmt_vec(&p.predicted_widths)
        ));
        out.push_str(&format!(
            "node_drops {}\n{}\n",
            p.predicted_ir.node_drops.len(),
            fmt_vec(&p.predicted_ir.node_drops)
        ));
        out.push_str(&format!(
            "segment_drops {}\n{}\n",
            p.predicted_ir.segment_drops.len(),
            fmt_vec(&p.predicted_ir.segment_drops)
        ));
        out.push_str("end\n");
        Some(out)
    }
}

// ---------------------------------------------------------------------
// Validate
// ---------------------------------------------------------------------

/// Stage 5: the conventional ground truth on the same test design — a
/// full power-grid analysis — plus the width-quality metrics
/// (Table III / IV / V).
///
/// The cached artifact is the solver's node-voltage vector; the width
/// metrics are recomputed from the (cached, bit-identical) predictor,
/// which is cheap and keeps a single source of truth.
#[derive(Debug, Clone, Copy)]
pub struct ValidateStage;

impl ValidateStage {
    const HEADER: &'static str = "ppdl-art validate v1";
}

impl Stage for ValidateStage {
    fn name(&self) -> &'static str {
        "validate"
    }

    fn cache_key(&self, ctx: &PipelineCtx) -> Option<CacheKey> {
        let chain = ctx.chain?;
        let mut h = StableHasher::new("validate");
        h.write_key("chain", chain);
        hash_analysis(&mut h, &ctx.config.conventional.analysis);
        Some(h.finish())
    }

    fn decode(&self, ctx: &mut PipelineCtx, text: &str) -> crate::Result<()> {
        let mut r = Reader::new(text, Self::HEADER)?;
        let conv_secs = r.tagged_f64("conv_secs")?;
        let vdd = r.tagged_f64("vdd")?;
        let unknowns = r.tagged_usize("unknowns")?;
        let iterations = r.tagged_usize("iterations")?;
        let voltages = r.vec("voltages")?;
        let ground_bits = r.vec("ground")?;
        r.expect_end()?;
        let is_ground: Vec<bool> = ground_bits.iter().map(|&b| b != 0.0).collect();
        let report = IrDropReport::from_parts(vdd, voltages, is_ground, unknowns, iterations)?;
        let metrics = ctx
            .trained()?
            .predictor
            .evaluate(&ctx.predicted()?.test_bench, &ctx.sizing()?.golden_widths)?;
        ctx.validated = Some(ValidateSlot {
            report,
            conv_secs,
            metrics,
        });
        Ok(())
    }

    fn execute(&self, ctx: &mut PipelineCtx) -> crate::Result<()> {
        let analyzer = StaticAnalysis::new(ctx.config.conventional.analysis.clone());
        let test_bench = &ctx.predicted()?.test_bench;
        // ppdl-lint: allow(determinism/wall-clock) -- stage wall-time goes to the run manifest and spans; stage outputs are pure functions of their inputs
        let t0 = Instant::now();
        let report = analyzer.solve(test_bench.network())?;
        let conv_secs = t0.elapsed().as_secs_f64();
        let metrics = ctx
            .trained()?
            .predictor
            .evaluate(test_bench, &ctx.sizing()?.golden_widths)?;
        ctx.validated = Some(ValidateSlot {
            report,
            conv_secs,
            metrics,
        });
        Ok(())
    }

    fn encode(&self, ctx: &PipelineCtx) -> Option<String> {
        let v = ctx.validated.as_ref()?;
        let ground: Vec<f64> = v
            .report
            .ground_mask()
            .iter()
            .map(|&g| f64::from(u8::from(g)))
            .collect();
        let mut out = String::new();
        out.push_str(Self::HEADER);
        out.push('\n');
        out.push_str(&format!("conv_secs {}\n", v.conv_secs));
        out.push_str(&format!("vdd {}\n", v.report.vdd()));
        out.push_str(&format!("unknowns {}\n", v.report.unknowns()));
        out.push_str(&format!("iterations {}\n", v.report.iterations()));
        out.push_str(&format!(
            "voltages {}\n{}\n",
            v.report.voltages().len(),
            fmt_vec(v.report.voltages())
        ));
        out.push_str(&format!("ground {}\n{}\n", ground.len(), fmt_vec(&ground)));
        out.push_str("end\n");
        Some(out)
    }
}

//! Pipeline engine integration tests: cache correctness, warm-run
//! bitwise reproducibility, the sweep train-once guarantee, and
//! corrupt-artifact fallback.

use ppdl_core::pipeline::{ArtifactCache, BenchmarkSourceStage, PipelineCtx, Stage};
use ppdl_core::{experiment, DlFlowConfig, DlOutcome, PowerPlanningDl};
use ppdl_netlist::IbmPgPreset;

/// A fresh, empty cache directory unique to one test.
fn cache_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ppdl_pipeline_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_bitwise_equal(a: &DlOutcome, b: &DlOutcome) {
    assert_eq!(a.golden_widths, b.golden_widths, "golden widths drifted");
    assert_eq!(
        a.predicted_widths, b.predicted_widths,
        "predicted widths drifted"
    );
    assert_eq!(a.width_metrics.r2, b.width_metrics.r2, "r2 drifted");
    assert_eq!(
        a.width_metrics.mse_um2, b.width_metrics.mse_um2,
        "mse drifted"
    );
    assert_eq!(
        a.conventional_worst_ir_mv, b.conventional_worst_ir_mv,
        "conventional worst IR drifted"
    );
    assert_eq!(
        a.predicted_worst_ir_mv, b.predicted_worst_ir_mv,
        "predicted worst IR drifted"
    );
    assert_eq!(
        a.test_report.voltages(),
        b.test_report.voltages(),
        "ground-truth voltages drifted"
    );
    assert_eq!(
        a.train_report.final_loss(),
        b.train_report.final_loss(),
        "training loss drifted"
    );
}

#[test]
fn warm_run_hits_every_stage_bitwise() {
    let cache = ArtifactCache::new(cache_dir("warm"));
    let (cold, cold_records) =
        experiment::run_preset_cached(IbmPgPreset::Ibmpg2, 0.006, 3, true, Some(&cache)).unwrap();
    assert_eq!(cold_records.len(), 5);
    assert!(
        cold_records.iter().all(|r| !r.cache_hit),
        "first run must execute every stage"
    );
    assert_eq!(cache.stats().stores, 5, "every stage stores its artifact");

    let (warm, warm_records) =
        experiment::run_preset_cached(IbmPgPreset::Ibmpg2, 0.006, 3, true, Some(&cache)).unwrap();
    assert_eq!(warm_records.len(), 5);
    for r in &warm_records {
        assert!(r.cache_hit, "stage '{}' missed on the warm run", r.name);
    }
    assert_bitwise_equal(&cold, &warm);

    // The chained keys are reproducible across runs.
    for (c, w) in cold_records.iter().zip(&warm_records) {
        assert_eq!(c.key, w.key, "key of stage '{}' is unstable", c.name);
    }
}

#[test]
fn cache_keys_stable_and_sensitive_to_every_field() {
    let ctx = PipelineCtx::new(DlFlowConfig::fast(), None);
    let key = |s: &BenchmarkSourceStage| s.cache_key(&ctx).unwrap();

    let base = BenchmarkSourceStage::preset(IbmPgPreset::Ibmpg2, 0.01, 7, 2.5);
    assert_eq!(
        key(&base),
        key(&BenchmarkSourceStage::preset(
            IbmPgPreset::Ibmpg2,
            0.01,
            7,
            2.5
        )),
        "identical config must map to an identical key"
    );
    for changed in [
        BenchmarkSourceStage::preset(IbmPgPreset::Ibmpg1, 0.01, 7, 2.5),
        BenchmarkSourceStage::preset(IbmPgPreset::Ibmpg2, 0.011, 7, 2.5),
        BenchmarkSourceStage::preset(IbmPgPreset::Ibmpg2, 0.01, 8, 2.5),
        BenchmarkSourceStage::preset(IbmPgPreset::Ibmpg2, 0.01, 7, 2.4),
        BenchmarkSourceStage::uncalibrated(IbmPgPreset::Ibmpg2, 0.01, 7),
    ] {
        assert_ne!(
            key(&base),
            key(&changed),
            "field change must change the key"
        );
    }
}

#[test]
fn downstream_keys_chain_on_upstream_inputs() {
    // Changing only the *source* seed must change every downstream key,
    // even though the downstream stages' own configs are identical.
    let cache = ArtifactCache::new(cache_dir("chain"));
    let (_, records_a) =
        experiment::run_preset_cached(IbmPgPreset::Ibmpg2, 0.005, 2, true, Some(&cache)).unwrap();
    let (_, records_b) =
        experiment::run_preset_cached(IbmPgPreset::Ibmpg2, 0.005, 4, true, Some(&cache)).unwrap();
    for (a, b) in records_a.iter().zip(&records_b) {
        assert!(!b.cache_hit, "seed change must not hit stage '{}'", b.name);
        assert_ne!(a.key, b.key, "stage '{}' key did not chain", a.name);
    }
}

#[test]
fn sweep_trains_exactly_once_per_config() {
    let dir = cache_dir("sweep");
    let points =
        experiment::perturbation_grid(&[0.1, 0.2, 0.3], &[ppdl_core::PerturbationKind::Both], 5, 1)
            .unwrap();
    let flow = PowerPlanningDl::new(DlFlowConfig::fast());
    let source = || experiment::preset_source(IbmPgPreset::Ibmpg2, 0.006, 5);

    let cache = ArtifactCache::new(&dir);
    let sweep = flow
        .run_sweep_cached(source(), &points, Some(&cache))
        .unwrap();
    assert_eq!(sweep.points.len(), points.len());
    for p in &sweep.points {
        assert!(p.outcome.is_ok());
        assert_eq!(p.records.len(), 2, "predict + validate per point");
    }
    // The regression the cache layer pins down: one (preset, hyperparams)
    // key trains exactly once, no matter how many sweep points follow.
    assert_eq!(cache.stats().executions("train"), 1);
    assert_eq!(cache.stats().executions("predict"), points.len());

    // A repeated sweep with identical config trains zero times.
    let cache2 = ArtifactCache::new(&dir);
    let again = flow
        .run_sweep_cached(source(), &points, Some(&cache2))
        .unwrap();
    assert_eq!(cache2.stats().executions("train"), 0);
    assert_eq!(cache2.stats().hits_for("train"), 1);
    assert!(again.shared_records.iter().all(|r| r.cache_hit));
    for (a, b) in sweep.points.iter().zip(&again.points) {
        assert_bitwise_equal(a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
    }
}

#[test]
fn corrupt_artifacts_fall_back_to_recompute() {
    let dir = cache_dir("corrupt");
    let cache = ArtifactCache::new(&dir);
    let (cold, _) =
        experiment::run_preset_cached(IbmPgPreset::Ibmpg2, 0.005, 9, true, Some(&cache)).unwrap();

    for entry in std::fs::read_dir(&dir).unwrap() {
        std::fs::write(entry.unwrap().path(), "not an artifact\n").unwrap();
    }

    let cache2 = ArtifactCache::new(&dir);
    let (recomputed, records) =
        experiment::run_preset_cached(IbmPgPreset::Ibmpg2, 0.005, 9, true, Some(&cache2)).unwrap();
    assert!(
        records.iter().all(|r| !r.cache_hit),
        "corrupt artifacts must not be served"
    );
    assert_eq!(cache2.stats().hits, 0);
    assert_eq!(cache2.stats().misses, 5);
    // The recompute is deterministic, so the outcome still matches.
    assert_bitwise_equal(&cold, &recomputed);
}

//! Thread-count determinism: `PPDL_THREADS=1` and `PPDL_THREADS=4`
//! must produce bitwise-identical results everywhere.
//!
//! The parallel layer promises that work decomposition depends only on
//! problem size and that reductions fold fixed chunks in a fixed order
//! (see `ppdl_solver::parallel`). These tests pin the promise end to
//! end on the ibmpg2 preset: the static IR-drop solve and a full
//! training run must not change by a single bit when the thread count
//! changes. The tests drive the thread count through
//! `ppdl_solver::set_threads`, the in-process equivalent of the
//! `PPDL_THREADS` environment variable.

use ppdl_analysis::StaticAnalysis;
use ppdl_core::{FeatureExtractor, IrPredictor, PredictorConfig, WidthPredictor};
use ppdl_netlist::{IbmPgPreset, SyntheticBenchmark};
use ppdl_nn::{Activation, Adam, Loss, Matrix, Mlp, MlpBuilder};
use ppdl_solver::parallel::DEFAULT_PAR_THRESHOLD;
use ppdl_solver::{set_par_threshold, set_threads};

fn ibmpg2() -> SyntheticBenchmark {
    SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg2, 0.01, 3).unwrap()
}

/// Runs `f` under `threads` threads with a tiny parallel threshold so
/// even this test-sized grid takes the chunked code paths, restoring
/// the global defaults afterwards.
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    set_threads(threads);
    set_par_threshold(64);
    let out = f();
    set_threads(0);
    set_par_threshold(DEFAULT_PAR_THRESHOLD);
    out
}

#[test]
fn static_solve_is_bitwise_stable_across_thread_counts() {
    let bench = ibmpg2();
    let solve = |threads: usize| {
        with_threads(threads, || {
            StaticAnalysis::default().solve(bench.network()).unwrap()
        })
    };
    let one = solve(1);
    let four = solve(4);
    assert_eq!(one.voltages().len(), four.voltages().len());
    for (a, b) in one.voltages().iter().zip(four.voltages()) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "node voltage differs between 1 and 4 threads: {a} vs {b}"
        );
    }
    assert_eq!(one.iterations(), four.iterations());
}

#[test]
fn training_on_ibmpg2_features_is_bitwise_stable() {
    // One sample per wire segment of the ibmpg2 grid, exactly as the
    // width predictor sees it; a synthetic smooth target stands in for
    // the golden widths so the test needs no conventional sizing run.
    let bench = ibmpg2();
    let x = FeatureExtractor::default().raw_features(&bench);
    assert!(
        x.rows() >= 512,
        "need enough segments to engage the chunked minibatch path, got {}",
        x.rows()
    );
    let y = Matrix::from_fn(x.rows(), 1, |r, _| {
        let f = x.row(r);
        0.3 * f[0] - 0.2 * f[1] + 5.0 * f[2]
    });

    let train = |threads: usize| -> (Vec<f64>, Mlp) {
        with_threads(threads, || {
            let mut model = MlpBuilder::new(x.cols())
                .hidden_stack(3, 16, Activation::Relu)
                .output(1)
                .seed(42)
                .build()
                .unwrap();
            let mut opt = Adam::new(1e-3).unwrap();
            let mut losses = Vec::new();
            for _ in 0..5 {
                losses.push(model.train_batch(&x, &y, Loss::Mse, &mut opt).unwrap());
            }
            (losses, model)
        })
    };

    let (loss_one, model_one) = train(1);
    let (loss_four, model_four) = train(4);
    assert_eq!(
        loss_one, loss_four,
        "loss trajectories must be bitwise identical"
    );
    for (la, lb) in model_one.layers().iter().zip(model_four.layers()) {
        for (a, b) in la.weights().as_slice().iter().zip(lb.weights().as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "weight differs: {a} vs {b}");
        }
        for (a, b) in la.bias().iter().zip(lb.bias()) {
            assert_eq!(a.to_bits(), b.to_bits(), "bias differs: {a} vs {b}");
        }
    }
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}[{i}] differs between 1 and 4 threads: {x} vs {y}"
        );
    }
}

/// The fast IR estimate accumulates per-coordinate load currents into a
/// map before feeding the coarse grid. That accumulation must iterate
/// in a deterministic key order (`BTreeMap`, not `HashMap` — see
/// `determinism/hashmap-iter` in DESIGN.md §12), or the float sums —
/// and every drop downstream of them — drift with the hasher.
#[test]
fn ir_prediction_is_bitwise_stable_across_thread_counts() {
    let bench = ibmpg2();
    let widths = bench.strap_widths();
    let predict = |threads: usize| {
        with_threads(threads, || {
            IrPredictor::new().predict(&bench, &widths).unwrap()
        })
    };
    let one = predict(1);
    let four = predict(4);
    assert_eq!(one.worst.to_bits(), four.worst.to_bits());
    assert_bits_eq(&one.node_drops, &four.node_drops, "node_drops");
    assert_bits_eq(&one.segment_drops, &four.segment_drops, "segment_drops");

    // Repeated runs in one process must agree too — the old HashMap
    // accumulation was stable per-process (fixed RandomState per map
    // creation differs across maps, not runs), so the cross-process
    // hazard is what the BTreeMap conversion removes; this guards the
    // in-process half.
    let again = predict(4);
    assert_bits_eq(&four.node_drops, &again.node_drops, "repeat node_drops");
}

/// The EM-safe width projection charges each strap for the current its
/// vias inject, accumulated through a coordinate-keyed map — same
/// hazard, same fix (`determinism/hashmap-iter`).
#[test]
fn em_safe_widths_are_bitwise_stable_across_thread_counts() {
    let bench = ibmpg2();
    // A tiny model is enough: the hazard is in the post-prediction
    // current accumulation, not the network itself.
    let config = PredictorConfig {
        hidden_layers: 2,
        hidden_width: 8,
        train: ppdl_nn::TrainConfig {
            epochs: 3,
            ..PredictorConfig::default().train
        },
        ..PredictorConfig::default()
    };
    let (predictor, _) = WidthPredictor::train(&bench, &bench.strap_widths(), config).unwrap();
    let run = |threads: usize| {
        with_threads(threads, || {
            predictor
                .predict_strap_widths_em_safe(&bench, 0.05)
                .unwrap()
        })
    };
    let one = run(1);
    let four = run(4);
    assert_bits_eq(&one, &four, "em_safe_widths");
}

//! Property-based tests for the PowerPlanningDL framework.

use ppdl_analysis::StaticAnalysis;
use ppdl_core::{
    calibrate_to_worst_ir, FeatureExtractor, FeatureSet, IrPredictor, Perturbation,
    PerturbationKind,
};
use ppdl_netlist::{IbmPgPreset, SyntheticBenchmark};
use proptest::prelude::*;

fn bench(seed: u64) -> SyntheticBenchmark {
    SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg2, 0.003, seed).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Calibration hits any positive target exactly (linearity of the
    /// resistive grid).
    #[test]
    fn calibration_is_exact(target_mv in 1.0_f64..100.0, seed in 0u64..20) {
        let mut b = bench(seed);
        let target = target_mv / 1e3;
        calibrate_to_worst_ir(&mut b, target).unwrap();
        let worst = StaticAnalysis::default()
            .solve(b.network())
            .unwrap()
            .worst_drop()
            .unwrap()
            .1;
        // Tolerance: the verifying solve runs at relative residual
        // 1e-8 on a ~1.8 V solution, so sub-microvolt agreement cannot
        // be demanded of millivolt-scale drops.
        prop_assert!(
            (worst - target).abs() < 1e-3 * target + 1e-6,
            "worst {worst} vs target {target}"
        );
    }

    /// Perturbation factors are exactly 1 ± gamma and the perturbation
    /// never mutates its input.
    #[test]
    fn perturbation_moves_by_exactly_gamma(gamma in 0.01_f64..0.9, seed in 0u64..50) {
        let b = bench(3);
        let before: Vec<f64> = b.network().current_loads().iter().map(|l| l.amps).collect();
        let out = Perturbation::new(gamma, PerturbationKind::CurrentWorkloads, seed)
            .unwrap()
            .apply(&b)
            .unwrap();
        for (new, old) in out.network().current_loads().iter().zip(&before) {
            let f = new.amps / old;
            let dev = (f - (1.0 + gamma)).abs().min((f - (1.0 - gamma)).abs());
            prop_assert!(dev < 1e-12, "factor {f} not 1 +/- {gamma}");
        }
        let after: Vec<f64> = b.network().current_loads().iter().map(|l| l.amps).collect();
        prop_assert_eq!(before, after);
    }

    /// The IR estimate is homogeneous of degree -1 in a uniform width
    /// scaling... not exactly (vias scale too), but it must be strictly
    /// monotone: wider grids never drop more.
    #[test]
    fn ir_estimate_monotone_in_width(factor in 1.1_f64..4.0, seed in 0u64..10) {
        let b = bench(seed);
        let w1 = b.strap_widths();
        let w2: Vec<f64> = w1.iter().map(|w| w * factor).collect();
        let p = IrPredictor::new();
        let e1 = p.predict(&b, &w1).unwrap();
        let e2 = p.predict(&b, &w2).unwrap();
        prop_assert!(e2.worst < e1.worst);
    }

    /// Feature extraction is pure: identical benchmarks give identical
    /// features, and every row matches its segment's midpoint.
    #[test]
    fn features_are_pure_and_positional(seed in 0u64..20) {
        let b = bench(seed);
        let fx = FeatureExtractor::new(FeatureSet::Combined);
        let a = fx.raw_features(&b);
        let c = fx.raw_features(&b);
        prop_assert_eq!(&a, &c);
        for (r, seg) in b.segments().iter().enumerate() {
            prop_assert_eq!(a.get(r, 0), seg.x);
            prop_assert_eq!(a.get(r, 1), seg.y);
            prop_assert!(a.get(r, 2) >= 0.0);
        }
    }

    /// The sampled strap-width prediction converges to the full one.
    #[test]
    fn sampled_prediction_close_to_full(seed in 0u64..6) {
        use ppdl_core::{experiment, ConventionalConfig, ConventionalFlow, PredictorConfig, WidthPredictor};
        let prepared = experiment::prepare(IbmPgPreset::Ibmpg2, 0.004, seed, 2.5).unwrap();
        let (sized, res) = ConventionalFlow::new(ConventionalConfig {
            ir_margin_fraction: prepared.margin_fraction,
            ..ConventionalConfig::default()
        })
        .run(&prepared.bench)
        .unwrap();
        let (p, _) = WidthPredictor::train(&sized, &res.widths, PredictorConfig::fast()).unwrap();
        let full = p.predict_strap_widths(&sized).unwrap();
        let sampled = p.predict_strap_widths_sampled(&sized, 4).unwrap();
        for (f, s) in full.iter().zip(&sampled) {
            prop_assert!((f - s).abs() < 0.25 * f.max(0.1), "{f} vs {s}");
        }
    }
}

//! Workspace-wide telemetry: hierarchical spans, monotonic counters,
//! and fixed-bucket histograms, collected into thread-safe registries
//! with a JSON snapshot that is deterministic in *structure* (keys and
//! their order never vary; values may).
//!
//! The crate sits below every other workspace crate (it depends on
//! nothing but `std`), so the solver, NN trainer, pipeline, and service
//! all report through the same vocabulary:
//!
//! * [`Counter`] — a monotonic `u64` (`solver/spmv/elements`).
//! * [`HistogramHandle`] — fixed-bucket distribution with lock-free
//!   recording and prometheus-style p50/p95/p99 estimates
//!   (`service/batch_ms`).
//! * Spans — wall-time accumulators keyed by a hierarchical `a/b/c`
//!   path built from a thread-local stack of open [`Span`]s
//!   (`pipeline/train/nn/fit`).
//!
//! # Global vs. per-instance collection
//!
//! Fine-grained instrumentation in hot paths (SpMV element counts, CG
//! iterations, per-epoch losses, per-stage spans) records into the
//! process-wide [`global`] registry and is **off by default**: every
//! such site is guarded by [`enabled`], a single relaxed atomic load,
//! so the disabled cost is unmeasurable (<2% on the `parallel_scaling`
//! bench; see DESIGN.md §11). [`set_enabled`] turns collection on —
//! `ppdl serve --telemetry` and `ppdl-bench run --telemetry` do.
//!
//! Long-lived components that already pay per-batch bookkeeping (the
//! prediction service) own a private [`Registry`] instead, which is
//! always on and isolated per instance.
//!
//! # Snapshot format
//!
//! [`Registry::snapshot_json`] emits one compact line:
//!
//! ```json
//! {"counters":{"name":123},
//!  "histograms":{"name":{"count":2,"sum":3.5,"min":1.0,"max":2.5,
//!                        "p50":2.0,"p95":4.0,"p99":4.0,
//!                        "buckets":[[1.0,1],[2.0,0],[4.0,1]]}},
//!  "spans":{"a/b":{"count":1,"wall_ms":0.42}}}
//! ```
//!
//! Maps are `BTreeMap`s, so keys appear in sorted order; non-finite
//! values serialise as `null`, never as invalid JSON tokens.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns process-wide collection into the [`global`] registry on or
/// off. Disabled (the default) reduces every global instrumentation
/// site to one relaxed atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether global collection is on. Instrumentation sites check this
/// before touching the registry.
#[must_use]
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide registry fine-grained instrumentation records into
/// (when [`enabled`]).
#[must_use]
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A monotonic counter handle; cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Atomic f64 accumulator cell (bit-cast through `AtomicU64`).
#[derive(Debug)]
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn new(v: f64) -> Self {
        Self(AtomicU64::new(v.to_bits()))
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn update(&self, f: impl Fn(f64) -> Option<f64>) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                f(f64::from_bits(bits)).map(f64::to_bits)
            });
    }

    fn add(&self, v: f64) {
        self.update(|cur| Some(cur + v));
    }

    fn min(&self, v: f64) {
        self.update(|cur| if v < cur { Some(v) } else { None });
    }

    fn max(&self, v: f64) {
        self.update(|cur| if v > cur { Some(v) } else { None });
    }
}

/// A fixed-bucket histogram: `bounds` are the inclusive upper edges of
/// the first `bounds.len()` buckets, plus one overflow bucket.
#[derive(Debug)]
struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicF64,
    min: AtomicF64,
    max: AtomicF64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicF64::new(0.0),
            min: AtomicF64::new(f64::INFINITY),
            max: AtomicF64::new(f64::NEG_INFINITY),
        }
    }

    fn record(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.add(v);
        self.min.min(v);
        self.max.max(v);
    }

    /// Prometheus-style quantile estimate: the upper bound of the first
    /// bucket whose cumulative count reaches rank `q·count` (the
    /// observed maximum for the overflow bucket). `None` when empty.
    fn quantile(&self, q: f64) -> Option<f64> {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return None;
        }
        let rank = ((q * count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cum += bucket.load(Ordering::Relaxed);
            if cum >= rank {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max.get()
                });
            }
        }
        Some(self.max.get())
    }
}

/// A histogram handle; cloning shares the underlying buckets.
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<Histogram>);

impl HistogramHandle {
    /// Records one sample. Non-finite samples are ignored (they carry
    /// no latency/size information and would poison `sum`).
    pub fn record(&self, v: f64) {
        self.0.record(v);
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.0.sum.get()
    }

    /// Quantile estimate in `[0,1]` (see [`Histogram::quantile`]);
    /// `None` before the first sample.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.0.quantile(q)
    }
}

/// Exponential bucket upper bounds: `start`, `start·factor`, … (`n`
/// bounds). The standard shape for latency histograms.
#[must_use]
pub fn exponential_buckets(start: f64, factor: f64, n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut edge = start;
    for _ in 0..n {
        out.push(edge);
        edge *= factor;
    }
    out
}

/// The default latency bucket edges in milliseconds: 0.25 ms to ~4 s,
/// doubling each step.
#[must_use]
pub fn latency_buckets_ms() -> Vec<f64> {
    exponential_buckets(0.25, 2.0, 15)
}

/// Wall-time accumulator for one span path.
#[derive(Debug, Default)]
struct SpanStat {
    count: AtomicU64,
    total_ns: AtomicU64,
}

thread_local! {
    /// The open global-span names on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An open span against the [`global`] registry; records its wall time
/// at its hierarchical path on drop. A no-op when collection was
/// disabled at creation. Create with [`span`].
#[derive(Debug)]
pub struct Span {
    inner: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    path: String,
    start: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.inner.take() {
            let wall = active.start.elapsed();
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
            global().record_span(&active.path, wall.as_secs_f64());
        }
    }
}

/// Opens a span named `name` against the [`global`] registry. Its path
/// is the `/`-joined chain of spans currently open on this thread, so
/// nested phases read as `pipeline/train/nn/fit`. Bind the result
/// (`let _span = obs::span("…")`) — dropping it records the elapsed
/// wall time. No-op (and no allocation) when collection is disabled.
#[must_use]
pub fn span(name: &str) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = if stack.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", stack.join("/"), name)
        };
        stack.push(name.to_string());
        path
    });
    Span {
        inner: Some(ActiveSpan {
            path,
            start: Instant::now(),
        }),
    }
}

/// Adds `n` to the global counter `name` when collection is enabled.
pub fn counter_add(name: &str, n: u64) {
    if enabled() {
        global().counter(name).add(n);
    }
}

/// Records `v` into the global histogram `name` (created with `bounds`
/// on first use) when collection is enabled.
pub fn observe(name: &str, bounds: &[f64], v: f64) {
    if enabled() {
        global().histogram(name, bounds).record(v);
    }
}

/// A thread-safe collection of counters, histograms, and span stats.
///
/// The process-wide instance is [`global`]; components needing isolated
/// metrics (one per service instance, say) own their own.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    spans: RwLock<BTreeMap<String, Arc<SpanStat>>>,
}

// Telemetry must never take the process down: the registry maps hold
// only monotonic counters with no cross-entry invariant, so if a
// panicking thread poisoned a lock we recover the guard and keep
// serving (robustness/unwrap-in-lib).
fn read_recover<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write_recover<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created at zero on first
    /// use. The returned handle is cheap to clone and cache.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        // Probe under the read lock and *drop the guard* before taking
        // the write lock — upgrading in place would self-deadlock.
        let existing = read_recover(&self.counters).get(name).map(Arc::clone);
        let cell = existing.unwrap_or_else(|| {
            let mut map = write_recover(&self.counters);
            Arc::clone(
                map.entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        });
        Counter(cell)
    }

    /// The histogram registered under `name`, created with `bounds` on
    /// first use (later calls keep the original bounds). The returned
    /// handle is cheap to clone and cache.
    #[must_use]
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> HistogramHandle {
        let existing = read_recover(&self.histograms).get(name).map(Arc::clone);
        let hist = existing.unwrap_or_else(|| {
            let mut map = write_recover(&self.histograms);
            Arc::clone(
                map.entry(name.to_string())
                    .or_insert_with(|| Arc::new(Histogram::new(bounds))),
            )
        });
        HistogramHandle(hist)
    }

    /// Accumulates `secs` of wall time (one invocation) at span `path`.
    pub fn record_span(&self, path: &str, secs: f64) {
        let existing = read_recover(&self.spans).get(path).map(Arc::clone);
        let stat = existing.unwrap_or_else(|| {
            let mut map = write_recover(&self.spans);
            Arc::clone(map.entry(path.to_string()).or_default())
        });
        stat.count.fetch_add(1, Ordering::Relaxed);
        let ns = if secs.is_finite() && secs > 0.0 {
            (secs * 1e9) as u64
        } else {
            0
        };
        stat.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Accumulated (count, wall seconds) for span `path`, if recorded.
    #[must_use]
    pub fn span_stats(&self, path: &str) -> Option<(u64, f64)> {
        let spans = read_recover(&self.spans);
        spans.get(path).map(|s| {
            (
                s.count.load(Ordering::Relaxed),
                s.total_ns.load(Ordering::Relaxed) as f64 / 1e9,
            )
        })
    }

    /// One compact JSON line with every counter, histogram, and span.
    /// Structure is deterministic: the three top-level keys always
    /// appear, maps are key-sorted, and each histogram/span object has
    /// a fixed field order. Values serialise through [`json_f64`] so a
    /// non-finite value becomes `null`, never an invalid token.
    #[must_use]
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        {
            let counters = read_recover(&self.counters);
            for (i, (name, cell)) in counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{}:{}",
                    json_escape(name),
                    cell.load(Ordering::Relaxed)
                );
            }
        }
        out.push_str("},\"histograms\":{");
        {
            let histograms = read_recover(&self.histograms);
            for (i, (name, hist)) in histograms.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let count = hist.count.load(Ordering::Relaxed);
                let _ = write!(
                    out,
                    "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                     \"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                    json_escape(name),
                    count,
                    json_f64(hist.sum.get()),
                    opt_json_f64((count > 0).then(|| hist.min.get())),
                    opt_json_f64((count > 0).then(|| hist.max.get())),
                    opt_json_f64(hist.quantile(0.50)),
                    opt_json_f64(hist.quantile(0.95)),
                    opt_json_f64(hist.quantile(0.99)),
                );
                for (j, bucket) in hist.buckets.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let bound = hist
                        .bounds
                        .get(j)
                        .copied()
                        .map_or_else(|| "null".to_string(), json_f64);
                    let _ = write!(out, "[{},{}]", bound, bucket.load(Ordering::Relaxed));
                }
                out.push_str("]}");
            }
        }
        out.push_str("},\"spans\":{");
        {
            let spans = read_recover(&self.spans);
            for (i, (path, stat)) in spans.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{}:{{\"count\":{},\"wall_ms\":{}}}",
                    json_escape(path),
                    stat.count.load(Ordering::Relaxed),
                    json_f64(stat.total_ns.load(Ordering::Relaxed) as f64 / 1e6),
                );
            }
        }
        out.push_str("}}");
        out
    }
}

/// Serialises an `f64` as a JSON token: shortest round-trip form for
/// finite values, `null` for NaN/infinities (JSON has no tokens for
/// them, and emitting `NaN` would corrupt the stream).
#[must_use]
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a dot; keep the token
        // unambiguously a number for readers that care.
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

fn opt_json_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), json_f64)
}

/// Escapes a string as a JSON string token (metric names are plain
/// ASCII paths, but the writer must never emit invalid JSON).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let reg = Registry::new();
        let a = reg.counter("x/calls");
        let b = reg.counter("x/calls");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
    }

    #[test]
    fn histogram_quantiles_and_stats() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[1.0, 2.0, 4.0, 8.0]);
        assert_eq!(h.quantile(0.5), None);
        for v in [0.5, 1.5, 1.6, 3.0, 100.0] {
            h.record(v);
        }
        h.record(f64::NAN); // ignored
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 106.6).abs() < 1e-9);
        // rank(0.5·5)=3 → cumulative hits 3 in the (1,2] bucket.
        assert_eq!(h.quantile(0.5), Some(2.0));
        // p99 rank 5 lands in the overflow bucket → observed max.
        assert_eq!(h.quantile(0.99), Some(100.0));
    }

    #[test]
    fn span_paths_nest_per_thread() {
        set_enabled(true);
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        set_enabled(false);
        let (count, secs) = global().span_stats("outer/inner").expect("nested path");
        assert!(count >= 1);
        assert!(secs >= 0.0);
        assert!(global().span_stats("outer").is_some());
    }

    #[test]
    fn disabled_span_records_nothing() {
        set_enabled(false);
        let before = global().span_stats("ghost").map(|(c, _)| c).unwrap_or(0);
        {
            let _g = span("ghost");
        }
        let after = global().span_stats("ghost").map(|(c, _)| c).unwrap_or(0);
        assert_eq!(before, after);
    }

    #[test]
    fn snapshot_is_valid_and_structurally_stable() {
        let reg = Registry::new();
        reg.counter("b/two").add(2);
        reg.counter("a/one").inc();
        reg.histogram("h", &[1.0, 10.0]).record(3.0);
        reg.record_span("x/y", 0.001);
        let snap = reg.snapshot_json();
        // Sorted keys, fixed field order, single line.
        assert!(snap.starts_with("{\"counters\":{\"a/one\":1,\"b/two\":2}"));
        assert!(snap.contains("\"h\":{\"count\":1,\"sum\":3.0,"));
        assert!(snap.contains("\"buckets\":[[1.0,0],[10.0,1],[null,0]]"));
        assert!(snap.contains("\"spans\":{\"x/y\":{\"count\":1,\"wall_ms\":1.0}}"));
        assert!(!snap.contains('\n'));
        // An empty registry still has all three sections.
        assert_eq!(
            Registry::new().snapshot_json(),
            "{\"counters\":{},\"histograms\":{},\"spans\":{}}"
        );
    }

    #[test]
    fn json_f64_never_emits_invalid_tokens() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY), "null");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(0.1), "0.1");
    }

    #[test]
    fn exponential_bucket_shape() {
        assert_eq!(exponential_buckets(1.0, 2.0, 4), vec![1.0, 2.0, 4.0, 8.0]);
        assert_eq!(latency_buckets_ms().len(), 15);
    }
}

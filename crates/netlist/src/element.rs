use crate::network::NodeId;
use crate::NetlistError;

/// A resistor (power-grid wire segment or via) between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Resistor {
    /// Element name as written in the deck (e.g. `R1234`).
    pub name: String,
    /// First terminal.
    pub a: NodeId,
    /// Second terminal.
    pub b: NodeId,
    /// Resistance in ohms. Zero is legal and denotes a short (via).
    pub ohms: f64,
}

impl Resistor {
    /// Creates a resistor after validating the value.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidElement`] if `ohms` is negative or
    /// non-finite, or if both terminals are the same node (a self-loop):
    /// a self-loop contributes nothing to the MNA system if non-zero and
    /// makes the short-merging pass degenerate if zero, so it is always
    /// a netlist defect.
    pub fn new(name: impl Into<String>, a: NodeId, b: NodeId, ohms: f64) -> crate::Result<Self> {
        let name = name.into();
        if !(ohms.is_finite() && ohms >= 0.0) {
            return Err(NetlistError::InvalidElement {
                name,
                detail: format!("resistance {ohms} must be finite and non-negative"),
            });
        }
        if a == b {
            return Err(NetlistError::InvalidElement {
                name,
                detail: format!("self-loop resistor: both terminals are node {a}"),
            });
        }
        Ok(Self { name, a, b, ohms })
    }

    /// Whether this resistor is a short (zero ohms), i.e. a via that the
    /// extractor collapsed. Shorted nodes are merged before analysis.
    #[must_use]
    pub fn is_short(&self) -> bool {
        self.ohms == 0.0
    }

    /// Conductance in siemens.
    ///
    /// # Panics
    ///
    /// Panics if the resistor is a short; callers must merge shorts
    /// first (see `PowerGridNetwork::merged_shorts`).
    #[must_use]
    pub fn conductance(&self) -> f64 {
        assert!(
            !self.is_short(),
            "conductance of a short '{}' is infinite; merge shorts first",
            self.name
        );
        1.0 / self.ohms
    }
}

/// An ideal voltage source pinning a node to the supply rail.
///
/// In the IBM decks every `V` card connects a grid node to ground with
/// the rail voltage (`1.8` for VDD nets, `0` for GND nets).
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageSource {
    /// Element name (e.g. `V12`).
    pub name: String,
    /// The node held at `volts`.
    pub node: NodeId,
    /// Source voltage (V).
    pub volts: f64,
}

impl VoltageSource {
    /// Creates a voltage source.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidElement`] if `volts` is non-finite.
    pub fn new(name: impl Into<String>, node: NodeId, volts: f64) -> crate::Result<Self> {
        let name = name.into();
        if !volts.is_finite() {
            return Err(NetlistError::InvalidElement {
                name,
                detail: format!("voltage {volts} must be finite"),
            });
        }
        Ok(Self { name, node, volts })
    }
}

/// A DC current load drawing current from a node to ground — the
/// benchmark's representation of a functional block's switching-current
/// demand (`Id`).
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentLoad {
    /// Element name (e.g. `i56`).
    pub name: String,
    /// The loaded node.
    pub node: NodeId,
    /// Current drawn (A); positive means current flows out of the grid
    /// node into ground.
    pub amps: f64,
}

impl CurrentLoad {
    /// Creates a current load.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidElement`] if `amps` is negative or
    /// non-finite (the benchmarks only contain draws, never injections).
    pub fn new(name: impl Into<String>, node: NodeId, amps: f64) -> crate::Result<Self> {
        let name = name.into();
        if !(amps.is_finite() && amps >= 0.0) {
            return Err(NetlistError::InvalidElement {
                name,
                detail: format!("load current {amps} must be finite and non-negative"),
            });
        }
        Ok(Self { name, node, amps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistor_validation() {
        assert!(Resistor::new("R1", NodeId(0), NodeId(1), 0.5).is_ok());
        assert!(Resistor::new("R1", NodeId(0), NodeId(1), 0.0).is_ok());
        assert!(Resistor::new("R1", NodeId(0), NodeId(1), -1.0).is_err());
        assert!(Resistor::new("R1", NodeId(0), NodeId(1), f64::NAN).is_err());
    }

    #[test]
    fn self_loop_resistors_rejected() {
        // The shrunk ppdl-netlist proptest regression: a zero-ohm
        // self-loop `(0, 0, 0.0)` must yield a typed error, not a
        // degenerate short or a singular MNA system.
        let err = Resistor::new("R1", NodeId(0), NodeId(0), 0.0).unwrap_err();
        assert!(matches!(err, NetlistError::InvalidElement { .. }));
        assert!(err.to_string().contains("self-loop"));
        // Non-zero self-loops are rejected too.
        assert!(Resistor::new("R1", NodeId(3), NodeId(3), 2.5).is_err());
    }

    #[test]
    fn short_detection_and_conductance() {
        let r = Resistor::new("R1", NodeId(0), NodeId(1), 2.0).unwrap();
        assert!(!r.is_short());
        assert_eq!(r.conductance(), 0.5);
        let via = Resistor::new("Rv", NodeId(0), NodeId(1), 0.0).unwrap();
        assert!(via.is_short());
    }

    #[test]
    #[should_panic(expected = "merge shorts")]
    fn conductance_of_short_panics() {
        let via = Resistor::new("Rv", NodeId(0), NodeId(1), 0.0).unwrap();
        let _ = via.conductance();
    }

    #[test]
    fn source_validation() {
        assert!(VoltageSource::new("V1", NodeId(0), 1.8).is_ok());
        assert!(VoltageSource::new("V1", NodeId(0), 0.0).is_ok());
        assert!(VoltageSource::new("V1", NodeId(0), f64::INFINITY).is_err());
    }

    #[test]
    fn load_validation() {
        assert!(CurrentLoad::new("i1", NodeId(0), 0.01).is_ok());
        assert!(CurrentLoad::new("i1", NodeId(0), 0.0).is_ok());
        assert!(CurrentLoad::new("i1", NodeId(0), -0.01).is_err());
    }
}

// ppdl-lint: allow(determinism/hashmap-iter) -- name->id lookup table below; see field comment
use std::collections::HashMap;
use std::fmt;

use crate::{CurrentLoad, NetlistError, NodeName, Resistor, UnionFind, VoltageSource};

/// Index of a node within a [`PowerGridNetwork`]'s node table.
///
/// The ground reference, when present, is an ordinary entry in the table
/// (analysis treats it specially).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The headline size statistics of a benchmark, matching the columns of
/// Table II of the paper: `#n` (non-ground nodes), `#r` (resistors),
/// `#v` (supply sources), `#i` (current loads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BenchmarkStats {
    /// Non-ground nodes in the network.
    pub nodes: usize,
    /// Resistor elements (including via shorts).
    pub resistors: usize,
    /// Voltage-source elements.
    pub sources: usize,
    /// Current-load elements.
    pub loads: usize,
}

/// An in-memory power-grid netlist: an interned node table plus the
/// resistor / voltage-source / current-load element lists.
///
/// # Example
///
/// ```
/// use ppdl_netlist::{NodeName, PowerGridNetwork};
///
/// let mut net = PowerGridNetwork::new();
/// let a = net.intern(NodeName::grid(1, 0, 0));
/// let b = net.intern(NodeName::grid(1, 0, 100));
/// net.add_resistor("R1", a, b, 0.5).unwrap();
/// net.add_voltage_source("V1", a, 1.8).unwrap();
/// net.add_current_load("i1", b, 0.01).unwrap();
/// let s = net.stats();
/// assert_eq!((s.nodes, s.resistors, s.sources, s.loads), (2, 1, 1, 1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PowerGridNetwork {
    names: Vec<NodeName>,
    // Lookup-only (`get`/`insert`, never iterated): iteration order
    // cannot leak into results, and O(1) interning is on the deck-parse
    // hot path, so HashMap stays.
    // ppdl-lint: allow(determinism/hashmap-iter) -- get/insert only, never iterated; O(1) interning on the parse hot path
    index: HashMap<NodeName, NodeId>,
    resistors: Vec<Resistor>,
    sources: Vec<VoltageSource>,
    loads: Vec<CurrentLoad>,
}

impl PowerGridNetwork {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a node name, returning its id (existing or fresh).
    pub fn intern(&mut self, name: NodeName) -> NodeId {
        if let Some(&id) = self.index.get(&name) {
            return id;
        }
        let id = NodeId(self.names.len());
        self.names.push(name.clone());
        self.index.insert(name, id);
        id
    }

    /// Looks up an existing node by name.
    #[must_use]
    pub fn node_id(&self, name: &NodeName) -> Option<NodeId> {
        self.index.get(name).copied()
    }

    /// The name of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node_name(&self, id: NodeId) -> &NodeName {
        &self.names[id.0]
    }

    /// Total entries in the node table (including ground if interned).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// All node names, indexable by `NodeId.0`.
    #[must_use]
    pub fn node_names(&self) -> &[NodeName] {
        &self.names
    }

    /// Adds a resistor between two interned nodes.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNode`] if either terminal is not
    /// in the node table, or [`NetlistError::InvalidElement`] for an
    /// invalid value.
    pub fn add_resistor(
        &mut self,
        name: impl Into<String>,
        a: NodeId,
        b: NodeId,
        ohms: f64,
    ) -> crate::Result<()> {
        self.check_node(a)?;
        self.check_node(b)?;
        self.resistors.push(Resistor::new(name, a, b, ohms)?);
        Ok(())
    }

    /// Adds a voltage source pinning `node` to `volts`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`add_resistor`](Self::add_resistor).
    pub fn add_voltage_source(
        &mut self,
        name: impl Into<String>,
        node: NodeId,
        volts: f64,
    ) -> crate::Result<()> {
        self.check_node(node)?;
        self.sources.push(VoltageSource::new(name, node, volts)?);
        Ok(())
    }

    /// Adds a current load drawing `amps` from `node`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`add_resistor`](Self::add_resistor).
    pub fn add_current_load(
        &mut self,
        name: impl Into<String>,
        node: NodeId,
        amps: f64,
    ) -> crate::Result<()> {
        self.check_node(node)?;
        self.loads.push(CurrentLoad::new(name, node, amps)?);
        Ok(())
    }

    fn check_node(&self, id: NodeId) -> crate::Result<()> {
        if id.0 >= self.names.len() {
            return Err(NetlistError::UnknownNode {
                index: id.0,
                nodes: self.names.len(),
            });
        }
        Ok(())
    }

    /// The resistor elements.
    #[must_use]
    pub fn resistors(&self) -> &[Resistor] {
        &self.resistors
    }

    /// Mutable access to one resistor's value — the hook the iterative
    /// sizing loop uses when it changes a strap width.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNode`] if `idx` is out of range
    /// (reusing the index-style error), or
    /// [`NetlistError::InvalidElement`] for an invalid value.
    pub fn set_resistance(&mut self, idx: usize, ohms: f64) -> crate::Result<()> {
        if idx >= self.resistors.len() {
            return Err(NetlistError::UnknownNode {
                index: idx,
                nodes: self.resistors.len(),
            });
        }
        if !(ohms.is_finite() && ohms >= 0.0) {
            return Err(NetlistError::InvalidElement {
                name: self.resistors[idx].name.clone(),
                detail: format!("resistance {ohms} must be finite and non-negative"),
            });
        }
        self.resistors[idx].ohms = ohms;
        Ok(())
    }

    /// The voltage sources.
    #[must_use]
    pub fn voltage_sources(&self) -> &[VoltageSource] {
        &self.sources
    }

    /// Mutable access to one voltage source's value (used by the
    /// perturbation engine for "perturbation in node voltages").
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNode`] if `idx` is out of range,
    /// or [`NetlistError::InvalidElement`] for a non-finite value.
    pub fn set_source_voltage(&mut self, idx: usize, volts: f64) -> crate::Result<()> {
        if idx >= self.sources.len() {
            return Err(NetlistError::UnknownNode {
                index: idx,
                nodes: self.sources.len(),
            });
        }
        if !volts.is_finite() {
            return Err(NetlistError::InvalidElement {
                name: self.sources[idx].name.clone(),
                detail: format!("voltage {volts} must be finite"),
            });
        }
        self.sources[idx].volts = volts;
        Ok(())
    }

    /// The current loads.
    #[must_use]
    pub fn current_loads(&self) -> &[CurrentLoad] {
        &self.loads
    }

    /// Mutable access to one load's current (used by the perturbation
    /// engine for "perturbation in current workloads").
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNode`] if `idx` is out of range,
    /// or [`NetlistError::InvalidElement`] for an invalid value.
    pub fn set_load_current(&mut self, idx: usize, amps: f64) -> crate::Result<()> {
        if idx >= self.loads.len() {
            return Err(NetlistError::UnknownNode {
                index: idx,
                nodes: self.loads.len(),
            });
        }
        if !(amps.is_finite() && amps >= 0.0) {
            return Err(NetlistError::InvalidElement {
                name: self.loads[idx].name.clone(),
                detail: format!("load current {amps} must be finite and non-negative"),
            });
        }
        self.loads[idx].amps = amps;
        Ok(())
    }

    /// Table II-style statistics (`#n` excludes the ground entry).
    #[must_use]
    pub fn stats(&self) -> BenchmarkStats {
        let ground = self.names.iter().filter(|n| n.is_ground()).count();
        BenchmarkStats {
            nodes: self.names.len() - ground,
            resistors: self.resistors.len(),
            sources: self.sources.len(),
            loads: self.loads.len(),
        }
    }

    /// Sum of all load currents (A).
    #[must_use]
    pub fn total_load_current(&self) -> f64 {
        self.loads.iter().map(|l| l.amps).sum()
    }

    /// The supply voltage: the maximum source voltage in the deck
    /// (`None` if there are no sources).
    #[must_use]
    pub fn supply_voltage(&self) -> Option<f64> {
        self.sources
            .iter()
            .map(|s| s.volts)
            .fold(None, |m, v| Some(m.map_or(v, |mv: f64| mv.max(v))))
    }

    /// Bounding box `((min_x, min_y), (max_x, max_y))` over all grid
    /// nodes, or `None` if the network has no grid-named nodes.
    #[must_use]
    pub fn bounding_box(&self) -> Option<((i64, i64), (i64, i64))> {
        let mut bb: Option<((i64, i64), (i64, i64))> = None;
        for n in &self.names {
            if let Some((x, y)) = n.coordinates() {
                bb = Some(match bb {
                    None => ((x, y), (x, y)),
                    Some(((x0, y0), (x1, y1))) => ((x0.min(x), y0.min(y)), (x1.max(x), y1.max(y))),
                });
            }
        }
        bb
    }

    /// Merges all zero-resistance shorts, producing a new network in
    /// which each shorted group is a single node, together with the map
    /// from old node index to new [`NodeId`].
    ///
    /// Element order is preserved; shorts themselves are dropped.
    /// Resistors whose two terminals land in the same merged node
    /// (parallel shorts) are also dropped. The merged node keeps the
    /// name of the lowest-indexed member of its group.
    #[must_use]
    pub fn merged_shorts(&self) -> (PowerGridNetwork, Vec<NodeId>) {
        let n = self.names.len();
        let mut uf = UnionFind::new(n);
        for r in &self.resistors {
            if r.is_short() {
                uf.union(r.a.0, r.b.0);
            }
        }
        let labels = uf.dense_labels();
        let mut merged = PowerGridNetwork::new();
        // Name each component after its first-seen member, which is also
        // the order dense_labels assigns.
        let mut named = vec![false; uf.component_count()];
        for (i, name) in self.names.iter().enumerate() {
            let c = labels[i];
            if !named[c] {
                named[c] = true;
                let id = merged.intern(name.clone());
                debug_assert_eq!(id.0, c);
            }
        }
        let map: Vec<NodeId> = labels.iter().map(|&c| NodeId(c)).collect();
        // The merged elements are rebuilt by struct literal rather than
        // through the validating constructors: values were validated at
        // insertion, and the guards above ensure no short or self-loop
        // survives, so re-validation could only manufacture a panic path.
        for r in &self.resistors {
            if r.is_short() {
                continue;
            }
            let (a, b) = (map[r.a.0], map[r.b.0]);
            if a == b {
                continue;
            }
            merged.resistors.push(Resistor {
                name: r.name.clone(),
                a,
                b,
                ohms: r.ohms,
            });
        }
        for s in &self.sources {
            merged.sources.push(VoltageSource {
                name: s.name.clone(),
                node: map[s.node.0],
                volts: s.volts,
            });
        }
        for l in &self.loads {
            merged.loads.push(CurrentLoad {
                name: l.name.clone(),
                node: map[l.node.0],
                amps: l.amps,
            });
        }
        (merged, map)
    }

    /// Serialises the network to the IBM PG SPICE subset. The output
    /// round-trips through [`parse_spice`](crate::parse_spice).
    #[must_use]
    pub fn to_spice(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "* synthetic IBM-PG-style power grid netlist");
        let _ = writeln!(
            out,
            "* nodes={} resistors={} sources={} loads={}",
            self.stats().nodes,
            self.resistors.len(),
            self.sources.len(),
            self.loads.len()
        );
        for r in &self.resistors {
            let _ = writeln!(
                out,
                "{} {} {} {}",
                r.name,
                self.names[r.a.0],
                self.names[r.b.0],
                crate::format_si(r.ohms)
            );
        }
        for s in &self.sources {
            let _ = writeln!(
                out,
                "{} {} 0 {}",
                s.name,
                self.names[s.node.0],
                crate::format_si(s.volts)
            );
        }
        for l in &self.loads {
            let _ = writeln!(
                out,
                "{} {} 0 {}",
                l.name,
                self.names[l.node.0],
                crate::format_si(l.amps)
            );
        }
        out.push_str(".op\n.end\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PowerGridNetwork {
        let mut net = PowerGridNetwork::new();
        let a = net.intern(NodeName::grid(1, 0, 0));
        let b = net.intern(NodeName::grid(1, 0, 100));
        let c = net.intern(NodeName::grid(2, 0, 100));
        net.add_resistor("R1", a, b, 1.0).unwrap();
        net.add_resistor("Rvia", b, c, 0.0).unwrap();
        net.add_voltage_source("V1", a, 1.8).unwrap();
        net.add_current_load("i1", c, 0.02).unwrap();
        net
    }

    #[test]
    fn interning_is_idempotent() {
        let mut net = PowerGridNetwork::new();
        let a = net.intern(NodeName::grid(1, 5, 5));
        let b = net.intern(NodeName::grid(1, 5, 5));
        assert_eq!(a, b);
        assert_eq!(net.node_count(), 1);
    }

    #[test]
    fn stats_exclude_ground() {
        let mut net = tiny();
        let g = net.intern(NodeName::Ground);
        net.add_resistor("Rg", NodeId(0), g, 1.0).unwrap();
        assert_eq!(net.stats().nodes, 3);
        assert_eq!(net.node_count(), 4);
    }

    #[test]
    fn self_loop_resistor_rejected_with_error() {
        // Regression: `resistors = [(0, 0, 0.0)]` (the shrunk proptest
        // case) used to slip through as a degenerate zero-ohm short.
        let mut net = PowerGridNetwork::new();
        let a = net.intern(NodeName::grid(1, 0, 0));
        let err = net.add_resistor("Rbad", a, a, 0.0).unwrap_err();
        assert!(matches!(err, NetlistError::InvalidElement { .. }));
        let err = net.add_resistor("Rbad2", a, a, 1.5).unwrap_err();
        assert!(matches!(err, NetlistError::InvalidElement { .. }));
        assert_eq!(net.stats().resistors, 0);
    }

    #[test]
    fn unknown_node_rejected() {
        let mut net = PowerGridNetwork::new();
        let err = net
            .add_resistor("R1", NodeId(0), NodeId(1), 1.0)
            .unwrap_err();
        assert!(matches!(err, NetlistError::UnknownNode { .. }));
    }

    #[test]
    fn totals() {
        let net = tiny();
        assert!((net.total_load_current() - 0.02).abs() < 1e-15);
        assert_eq!(net.supply_voltage(), Some(1.8));
        assert_eq!(PowerGridNetwork::new().supply_voltage(), None);
    }

    #[test]
    fn bounding_box_covers_grid_nodes() {
        let net = tiny();
        assert_eq!(net.bounding_box(), Some(((0, 0), (0, 100))));
        assert_eq!(PowerGridNetwork::new().bounding_box(), None);
    }

    #[test]
    fn merged_shorts_collapses_via() {
        let net = tiny();
        let (merged, map) = net.merged_shorts();
        assert_eq!(merged.node_count(), 2);
        assert_eq!(merged.resistors().len(), 1);
        // b and c collapse to the same node.
        assert_eq!(map[1], map[2]);
        assert_ne!(map[0], map[1]);
        // The load moved onto the merged node.
        assert_eq!(merged.current_loads()[0].node, map[2]);
        // No shorts remain.
        assert!(merged.resistors().iter().all(|r| !r.is_short()));
    }

    #[test]
    fn merged_shorts_drops_self_loops() {
        let mut net = PowerGridNetwork::new();
        let a = net.intern(NodeName::grid(1, 0, 0));
        let b = net.intern(NodeName::grid(1, 1, 0));
        net.add_resistor("Rshort", a, b, 0.0).unwrap();
        net.add_resistor("Rpar", a, b, 2.0).unwrap(); // parallel to the short
        let (merged, _) = net.merged_shorts();
        assert_eq!(merged.node_count(), 1);
        assert!(merged.resistors().is_empty());
    }

    #[test]
    fn merged_shorts_identity_when_no_shorts() {
        let mut net = PowerGridNetwork::new();
        let a = net.intern(NodeName::grid(1, 0, 0));
        let b = net.intern(NodeName::grid(1, 1, 0));
        net.add_resistor("R1", a, b, 1.0).unwrap();
        let (merged, map) = net.merged_shorts();
        assert_eq!(merged.node_count(), 2);
        assert_eq!(map, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn setters_validate() {
        let mut net = tiny();
        net.set_resistance(0, 2.0).unwrap();
        assert_eq!(net.resistors()[0].ohms, 2.0);
        assert!(net.set_resistance(99, 1.0).is_err());
        assert!(net.set_resistance(0, -1.0).is_err());
        net.set_source_voltage(0, 1.9).unwrap();
        assert!(net.set_source_voltage(0, f64::NAN).is_err());
        net.set_load_current(0, 0.03).unwrap();
        assert!(net.set_load_current(0, -0.1).is_err());
        assert!(net.set_load_current(7, 0.1).is_err());
    }

    #[test]
    fn spice_output_contains_all_elements() {
        let s = tiny().to_spice();
        assert!(s.contains("R1 n1_0_0 n1_0_100 1"));
        assert!(s.contains("V1 n1_0_0 0 1.8"));
        assert!(s.contains("i1 n2_0_100 0 0.02"));
        assert!(s.ends_with(".op\n.end\n"));
    }
}

//! IBM power-grid benchmark netlists: model, parser, writer, generator.
//!
//! The paper trains and validates on the IBM Power Grid benchmarks (paper ref. 14)
//! (`ibmpg1` … `ibmpg6`, `ibmpgnew1/2`) — SPICE decks of resistors (`R`),
//! supply sources (`V`) and current loads (`I`) extracted from IBM
//! processors. Those decks are proprietary and not available here, so
//! this crate provides both halves of a faithful substitute:
//!
//! * a complete parser/writer for the IBM PG SPICE subset
//!   ([`parse_spice`], [`PowerGridNetwork::to_spice`]), including the
//!   `n<layer>_<x>_<y>` node-name convention, engineering-notation
//!   values, comments, and `.op`/`.end` cards, plus zero-resistance via
//!   shorts handled by union-find node merging;
//! * a **synthetic benchmark generator** ([`SyntheticBenchmark`]) that
//!   builds multi-layer orthogonal strap grids over a floorplan, with
//!   per-benchmark presets ([`IbmPgPreset`]) scaled to the published
//!   node/resistor/source/load counts of Table II.
//!
//! # Example
//!
//! ```
//! use ppdl_netlist::{parse_spice, IbmPgPreset, SyntheticBenchmark};
//!
//! let bench = SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg1, 0.01, 1).unwrap();
//! let deck = bench.network().to_spice();
//! let reparsed = parse_spice(&deck).unwrap();
//! assert_eq!(reparsed.stats().nodes, bench.network().stats().nodes);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod element;
mod error;
mod generator;
mod network;
mod node;
mod presets;
mod spice;
mod unionfind;
mod units;

pub use element::{CurrentLoad, Resistor, VoltageSource};
pub use error::NetlistError;
pub use generator::{GridSpec, Orientation, SegmentInfo, StrapInfo, SyntheticBenchmark, ViaInfo};
pub use network::{BenchmarkStats, NodeId, PowerGridNetwork};
pub use node::NodeName;
pub use presets::IbmPgPreset;
pub use spice::{parse_spice, parse_spice_lines};
pub use unionfind::UnionFind;
pub use units::{format_si, parse_value};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, NetlistError>;

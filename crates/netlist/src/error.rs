use std::fmt;

/// Errors raised while parsing, building, or generating netlists.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A line of the SPICE deck could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// A numeric field could not be interpreted as a value with an
    /// optional engineering suffix.
    InvalidValue {
        /// The offending token.
        token: String,
    },
    /// An element value is outside its physical domain (negative
    /// resistance, non-finite current, …).
    InvalidElement {
        /// Element name.
        name: String,
        /// What is wrong with it.
        detail: String,
    },
    /// A node id was used that the network does not contain.
    UnknownNode {
        /// The offending node index.
        index: usize,
        /// Number of nodes in the network.
        nodes: usize,
    },
    /// The generator configuration cannot produce a valid grid.
    InfeasibleGrid {
        /// Human-readable description.
        detail: String,
    },
    /// A floorplan error surfaced while generating a benchmark.
    Floorplan(ppdl_floorplan::FloorplanError),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Parse { line, detail } => {
                write!(f, "parse error at line {line}: {detail}")
            }
            NetlistError::InvalidValue { token } => {
                write!(f, "cannot parse numeric value from '{token}'")
            }
            NetlistError::InvalidElement { name, detail } => {
                write!(f, "invalid element '{name}': {detail}")
            }
            NetlistError::UnknownNode { index, nodes } => {
                write!(f, "node index {index} out of range for {nodes} nodes")
            }
            NetlistError::InfeasibleGrid { detail } => {
                write!(f, "infeasible grid specification: {detail}")
            }
            NetlistError::Floorplan(e) => write!(f, "floorplan error: {e}"),
        }
    }
}

impl std::error::Error for NetlistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetlistError::Floorplan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ppdl_floorplan::FloorplanError> for NetlistError {
    fn from(e: ppdl_floorplan::FloorplanError) -> Self {
        NetlistError::Floorplan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_mentions_line() {
        let e = NetlistError::Parse {
            line: 42,
            detail: "bad card".into(),
        };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn floorplan_error_chains_source() {
        use std::error::Error;
        let inner = ppdl_floorplan::FloorplanError::InvalidDimension {
            what: "die".into(),
            value: -1.0,
        };
        let e = NetlistError::from(inner);
        assert!(e.source().is_some());
    }

    #[test]
    fn is_std_error() {
        fn check<T: std::error::Error + Send + Sync + 'static>() {}
        check::<NetlistError>();
    }
}

//! SPICE numeric values with engineering suffixes.

use crate::NetlistError;

/// Parses a SPICE numeric token: a float in ordinary or scientific
/// notation, optionally followed by an engineering suffix
/// (`f p n u m k meg g t`, case-insensitive; trailing unit letters such
/// as `kohm` or `mA` are ignored after the suffix, per SPICE custom).
///
/// # Errors
///
/// Returns [`NetlistError::InvalidValue`] if the token has no leading
/// numeric part or the result is non-finite.
///
/// # Example
///
/// ```
/// use ppdl_netlist::parse_value;
///
/// assert_eq!(parse_value("1.5k").unwrap(), 1500.0);
/// assert_eq!(parse_value("2meg").unwrap(), 2e6);
/// assert!((parse_value("10u").unwrap() - 1e-5).abs() < 1e-18);
/// assert_eq!(parse_value("3.3").unwrap(), 3.3);
/// assert_eq!(parse_value("-4e-3").unwrap(), -0.004);
/// ```
pub fn parse_value(token: &str) -> crate::Result<f64> {
    let t = token.trim();
    if t.is_empty() {
        return Err(NetlistError::InvalidValue {
            token: token.to_string(),
        });
    }
    // Split the leading float from the suffix. Scientific-notation 'e'
    // must be followed by a digit or sign to count as part of the number.
    let bytes = t.as_bytes();
    let mut end = 0;
    let mut seen_digit = false;
    while end < bytes.len() {
        let c = bytes[end] as char;
        match c {
            '0'..='9' => {
                seen_digit = true;
                end += 1;
            }
            '.' => end += 1,
            '+' | '-' if end == 0 => end += 1,
            'e' | 'E' if seen_digit => {
                let next = bytes.get(end + 1).map(|&b| b as char);
                match next {
                    Some('0'..='9') => end += 2,
                    Some('+') | Some('-')
                        if matches!(bytes.get(end + 2).map(|&b| b as char), Some('0'..='9')) =>
                    {
                        end += 3
                    }
                    _ => break,
                }
                // Consume remaining exponent digits.
                while end < bytes.len() && bytes[end].is_ascii_digit() {
                    end += 1;
                }
                break;
            }
            _ => break,
        }
    }
    if !seen_digit {
        return Err(NetlistError::InvalidValue {
            token: token.to_string(),
        });
    }
    let mantissa: f64 = t[..end].parse().map_err(|_| NetlistError::InvalidValue {
        token: token.to_string(),
    })?;
    let suffix = t[end..].to_ascii_lowercase();
    let mult = if suffix.starts_with("meg") {
        1e6
    } else {
        match suffix.chars().next() {
            None => 1.0,
            Some('f') => 1e-15,
            Some('p') => 1e-12,
            Some('n') => 1e-9,
            Some('u') => 1e-6,
            Some('m') => 1e-3,
            Some('k') => 1e3,
            Some('g') => 1e9,
            Some('t') => 1e12,
            // Unknown trailing letters (e.g. "ohm", "v", "a") are units.
            Some(_) => 1.0,
        }
    };
    let v = mantissa * mult;
    if !v.is_finite() {
        return Err(NetlistError::InvalidValue {
            token: token.to_string(),
        });
    }
    Ok(v)
}

/// Formats a value compactly for netlist output: plain decimal when it
/// round-trips, scientific otherwise. SPICE tools accept both; we never
/// emit suffixes to keep the writer trivially unambiguous.
#[must_use]
pub fn format_si(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let abs = v.abs();
    if (1e-4..1e9).contains(&abs) {
        // Rust's Display prints the shortest decimal that round-trips
        // exactly, which is precisely what a netlist writer wants.
        format!("{v}")
    } else {
        format!("{v:e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_numbers() {
        assert_eq!(parse_value("42").unwrap(), 42.0);
        assert_eq!(parse_value("-1.25").unwrap(), -1.25);
        assert_eq!(parse_value("+0.5").unwrap(), 0.5);
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(parse_value("1e3").unwrap(), 1000.0);
        assert_eq!(parse_value("2.5E-2").unwrap(), 0.025);
        assert_eq!(parse_value("1e+2").unwrap(), 100.0);
    }

    #[test]
    fn suffixes() {
        assert_eq!(parse_value("1k").unwrap(), 1e3);
        assert_eq!(parse_value("1K").unwrap(), 1e3);
        assert_eq!(parse_value("1m").unwrap(), 1e-3);
        assert_eq!(parse_value("1MEG").unwrap(), 1e6);
        assert_eq!(parse_value("1g").unwrap(), 1e9);
        assert_eq!(parse_value("1t").unwrap(), 1e12);
        assert_eq!(parse_value("1f").unwrap(), 1e-15);
        assert_eq!(parse_value("1p").unwrap(), 1e-12);
        assert_eq!(parse_value("1n").unwrap(), 1e-9);
        assert_eq!(parse_value("1u").unwrap(), 1e-6);
    }

    #[test]
    fn suffix_with_unit_letters() {
        assert_eq!(parse_value("2kohm").unwrap(), 2000.0);
        assert_eq!(parse_value("5mA").unwrap(), 0.005);
        assert_eq!(parse_value("1.8V").unwrap(), 1.8);
    }

    #[test]
    fn e_not_exponent_when_followed_by_letter() {
        // "1e" alone: 'e' cannot start an exponent, so it's a unit letter.
        assert_eq!(parse_value("1e").unwrap(), 1.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("").is_err());
        assert!(parse_value("ohm").is_err());
        assert!(parse_value("--3").is_err());
        assert!(parse_value(".").is_err());
    }

    #[test]
    fn format_round_trips_typical_values() {
        for v in [0.0, 1.8, 0.025, 1500.0, -3.3e-5, 2.5e9, 1e-12] {
            let s = format_si(v);
            let back = parse_value(&s).unwrap();
            assert!(
                (back - v).abs() <= 1e-12 * v.abs().max(1.0),
                "{v} -> {s} -> {back}"
            );
        }
    }

    #[test]
    fn format_compact() {
        assert_eq!(format_si(0.0), "0");
        assert_eq!(format_si(1.5), "1.5");
        assert_eq!(format_si(100.0), "100");
    }
}

//! Parser for the IBM power-grid benchmark SPICE subset.
//!
//! The decks consist of `R` (wire segments and vias, zero ohms allowed),
//! `V` (supply pins), and `I` (block current loads) cards, `*` comments,
//! and `.op`/`.end` control cards. Transient-analysis variants of the
//! decks also carry `L` and `C` elements; for the static analysis this
//! framework performs, inductors are DC shorts (kept as zero-ohm
//! resistors, merged before analysis) and capacitors are DC opens
//! (skipped).

use crate::{parse_value, NetlistError, NodeName, PowerGridNetwork};

/// Parses a complete SPICE deck from a string.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] (with a 1-based line number) for any
/// malformed card, and propagates element-validation errors.
///
/// # Example
///
/// ```
/// use ppdl_netlist::parse_spice;
///
/// let deck = "\
/// * a 2-node grid
/// R1 n1_0_0 n1_0_100 0.5
/// V1 n1_0_0 0 1.8
/// i1 n1_0_100 0 10m
/// .op
/// .end
/// ";
/// let net = parse_spice(deck).unwrap();
/// let s = net.stats();
/// assert_eq!((s.nodes, s.resistors, s.sources, s.loads), (2, 1, 1, 1));
/// assert!((net.current_loads()[0].amps - 0.01).abs() < 1e-15);
/// ```
pub fn parse_spice(input: &str) -> crate::Result<PowerGridNetwork> {
    parse_spice_lines(input.lines())
}

/// Parses a SPICE deck from an iterator of lines (for streaming large
/// decks without materialising the whole file as one string).
///
/// # Errors
///
/// Same conditions as [`parse_spice`].
pub fn parse_spice_lines<I, S>(lines: I) -> crate::Result<PowerGridNetwork>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut net = PowerGridNetwork::new();
    for (lineno, raw) in lines.into_iter().enumerate() {
        let lineno = lineno + 1;
        let line = raw.as_ref().trim();
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        if let Some(dot) = line.strip_prefix('.') {
            let card = dot.split_whitespace().next().unwrap_or("");
            match card.to_ascii_lowercase().as_str() {
                "end" => break,
                // Control cards that carry no network content.
                "op" | "option" | "options" | "tran" | "print" | "probe" => continue,
                other => {
                    return Err(NetlistError::Parse {
                        line: lineno,
                        detail: format!("unsupported control card '.{other}'"),
                    })
                }
            }
        }
        let mut fields = line.split_whitespace();
        // The line survived the blank-line filter above, so both are
        // always `Some`; keep the failure typed regardless
        // (robustness/unwrap-in-lib).
        let name = fields.next().ok_or_else(|| NetlistError::Parse {
            line: lineno,
            detail: "empty element line".into(),
        })?;
        let kind = name
            .chars()
            .next()
            .ok_or_else(|| NetlistError::Parse {
                line: lineno,
                detail: "empty element name".into(),
            })?
            .to_ascii_lowercase();
        let rest: Vec<&str> = fields.collect();
        match kind {
            'r' | 'l' | 'v' | 'i' | 'c' => {
                if rest.len() < 3 {
                    return Err(NetlistError::Parse {
                        line: lineno,
                        detail: format!(
                            "element '{name}' needs two nodes and a value, got {} fields",
                            rest.len()
                        ),
                    });
                }
                let value = parse_value(rest[2]).map_err(|_| NetlistError::Parse {
                    line: lineno,
                    detail: format!("bad value '{}' for element '{name}'", rest[2]),
                })?;
                // `NodeName: FromStr<Err = Infallible>` — the empty
                // match proves no panic path exists
                // (robustness/unwrap-in-lib).
                let node_a: NodeName = rest[0].parse().unwrap_or_else(|e| match e {});
                let node_b: NodeName = rest[1].parse().unwrap_or_else(|e| match e {});
                match kind {
                    'r' => {
                        let a = net.intern(node_a);
                        let b = net.intern(node_b);
                        net.add_resistor(name, a, b, value)
                            .map_err(|e| at(lineno, e))?;
                    }
                    'l' => {
                        // Inductor: DC short.
                        let a = net.intern(node_a);
                        let b = net.intern(node_b);
                        net.add_resistor(name, a, b, 0.0)
                            .map_err(|e| at(lineno, e))?;
                    }
                    'c' => {
                        // Capacitor: DC open; contributes nothing to the
                        // static solution.
                    }
                    'v' => {
                        let node = grounded_terminal(node_a, node_b, lineno, name)?;
                        let id = net.intern(node);
                        net.add_voltage_source(name, id, value)
                            .map_err(|e| at(lineno, e))?;
                    }
                    'i' => {
                        let node = grounded_terminal(node_a, node_b, lineno, name)?;
                        let id = net.intern(node);
                        net.add_current_load(name, id, value.abs())
                            .map_err(|e| at(lineno, e))?;
                    }
                    _ => unreachable!(),
                }
            }
            other => {
                return Err(NetlistError::Parse {
                    line: lineno,
                    detail: format!("unsupported element type '{other}' in '{name}'"),
                })
            }
        }
    }
    Ok(net)
}

/// Sources and loads in the benchmarks always reference ground on one
/// terminal; returns the non-ground one.
fn grounded_terminal(
    a: NodeName,
    b: NodeName,
    lineno: usize,
    name: &str,
) -> crate::Result<NodeName> {
    match (a.is_ground(), b.is_ground()) {
        (false, true) => Ok(a),
        (true, false) => Ok(b),
        (true, true) => Err(NetlistError::Parse {
            line: lineno,
            detail: format!("element '{name}' connects ground to ground"),
        }),
        (false, false) => Err(NetlistError::Parse {
            line: lineno,
            detail: format!("element '{name}' must have one terminal at ground"),
        }),
    }
}

fn at(line: usize, e: NetlistError) -> NetlistError {
    match e {
        NetlistError::InvalidElement { name, detail } => NetlistError::Parse {
            line,
            detail: format!("invalid element '{name}': {detail}"),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_blanks_and_case() {
        let deck =
            "\n* header\n\nr1 n1_0_0 n1_10_0 1.5\nV1 n1_0_0 0 1.8\nI1 0 n1_10_0 5m\n.OP\n.end\n";
        let net = parse_spice(deck).unwrap();
        let s = net.stats();
        assert_eq!((s.nodes, s.resistors, s.sources, s.loads), (2, 1, 1, 1));
    }

    #[test]
    fn ground_on_either_terminal() {
        let net = parse_spice("V1 0 n1_0_0 1.8\ni1 n1_0_0 0 1m\n").unwrap();
        assert_eq!(net.voltage_sources()[0].volts, 1.8);
        assert_eq!(
            net.node_name(net.voltage_sources()[0].node).to_string(),
            "n1_0_0"
        );
    }

    #[test]
    fn source_without_ground_rejected() {
        let err = parse_spice("V1 n1_0_0 n1_1_0 1.8\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 1, .. }));
    }

    #[test]
    fn self_loop_cards_rejected() {
        // Zero-ohm self-loop, the shrunk proptest regression shape.
        let err = parse_spice("R1 n1_0_0 n1_0_0 0\n.end\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 1, .. }));
        // Non-zero self-loop resistor.
        let err = parse_spice("R1 n1_5_5 n1_5_5 2.0\n.end\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 1, .. }));
        // Inductor (DC short) looping on one node.
        let err = parse_spice("L1 n1_0_0 n1_0_0 1n\n.end\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 1, .. }));
    }

    #[test]
    fn ground_to_ground_rejected() {
        let err = parse_spice("i1 0 0 1m\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }));
    }

    #[test]
    fn missing_fields_rejected_with_line_number() {
        let err = parse_spice("* ok\nR1 n1_0_0 1.0\n").unwrap_err();
        match err {
            NetlistError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bad_value_rejected() {
        let err = parse_spice("R1 n1_0_0 n1_1_0 abc\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }));
    }

    #[test]
    fn negative_resistance_rejected_at_line() {
        let err = parse_spice("R1 n1_0_0 n1_1_0 -5\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 1, .. }));
    }

    #[test]
    fn unknown_element_rejected() {
        let err = parse_spice("Q1 n1_0_0 n1_1_0 1.0\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }));
    }

    #[test]
    fn unknown_control_card_rejected() {
        let err = parse_spice(".measure foo\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }));
    }

    #[test]
    fn end_stops_parsing() {
        let net = parse_spice("R1 n1_0_0 n1_1_0 1.0\n.end\nR2 bogus line here oops\n");
        assert_eq!(net.unwrap().resistors().len(), 1);
    }

    #[test]
    fn inductor_becomes_short_capacitor_skipped() {
        let net =
            parse_spice("L1 n1_0_0 n2_0_0 1n\nC1 n1_0_0 0 2p\nR1 n1_0_0 n2_0_0 1.0\n").unwrap();
        assert_eq!(net.resistors().len(), 2);
        assert!(net.resistors()[0].is_short());
        let (merged, _) = net.merged_shorts();
        assert_eq!(merged.node_count(), 1);
    }

    #[test]
    fn load_sign_is_normalised() {
        // Some decks write loads with a negative value and swapped nodes;
        // magnitude is what matters for a draw to ground.
        let net = parse_spice("i1 n1_0_0 0 -3m\n").unwrap();
        assert!((net.current_loads()[0].amps - 0.003).abs() < 1e-15);
    }

    #[test]
    fn engineering_suffixes_in_all_positions() {
        let net =
            parse_spice("R1 n1_0_0 n1_1_0 1.5k\nV1 n1_0_0 0 1800m\ni1 n1_1_0 0 10u\n").unwrap();
        assert_eq!(net.resistors()[0].ohms, 1500.0);
        assert!((net.voltage_sources()[0].volts - 1.8).abs() < 1e-12);
        assert!((net.current_loads()[0].amps - 1e-5).abs() < 1e-18);
    }

    #[test]
    fn streaming_lines_matches_string_parse() {
        let deck = "R1 n1_0_0 n1_1_0 1.0\nV1 n1_0_0 0 1.8\ni1 n1_1_0 0 2m\n";
        let from_str = parse_spice(deck).unwrap();
        // Feed the same content as owned lines (e.g. from a BufReader).
        let lines: Vec<String> = deck.lines().map(str::to_string).collect();
        let from_lines = crate::parse_spice_lines(lines).unwrap();
        assert_eq!(from_lines.stats(), from_str.stats());
        assert_eq!(from_lines.resistors()[0].ohms, 1.0);
    }

    #[test]
    fn whitespace_variants_tolerated() {
        let net = parse_spice("  R1\tn1_0_0   n1_1_0\t 1.0  \n\n\tV1 n1_0_0 0 1.8\n").unwrap();
        assert_eq!(net.stats().resistors, 1);
        assert_eq!(net.stats().sources, 1);
    }

    #[test]
    fn writer_parser_round_trip() {
        let deck = "R1 n1_0_0 n1_0_200 0.25\nRv n1_0_200 n2_0_200 0\nV0 n2_0_200 0 1.8\ni0 n1_0_0 0 0.012\n";
        let net = parse_spice(deck).unwrap();
        let out = net.to_spice();
        let again = parse_spice(&out).unwrap();
        assert_eq!(again.stats(), net.stats());
        assert_eq!(again.resistors()[1].ohms, 0.0);
        assert!((again.current_loads()[0].amps - 0.012).abs() < 1e-15);
    }
}

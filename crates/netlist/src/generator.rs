//! Synthetic IBM-PG-style benchmark generator.
//!
//! Builds a two-layer orthogonal strap grid over a floorplan: the lower
//! layer runs vertical straps, the upper layer horizontal straps, with a
//! via at every crossing. Block switching currents are apportioned to
//! the lower-layer nodes they cover; supply pins attach to upper-layer
//! nodes (perimeter ring or area array, mirroring the wirebond vs
//! flip-chip structure of the real benchmarks).

use ppdl_floorplan::{Floorplan, FloorplanGenerator, PadPlacement};

use crate::{NetlistError, NodeName, PowerGridNetwork};

/// Direction a strap runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Strap runs parallel to the y axis (lower layer).
    Vertical,
    /// Strap runs parallel to the x axis (upper layer).
    Horizontal,
}

/// One power-grid strap: a full-length metal line on one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct StrapInfo {
    /// Metal layer the strap is drawn on.
    pub layer: u32,
    /// Direction the strap runs.
    pub orientation: Orientation,
    /// Index of the strap among its peers on the same layer.
    pub index: usize,
    /// Cross-position of the strap centreline (x for vertical straps,
    /// y for horizontal ones), in µm.
    pub position: f64,
    /// Current metal width in µm — the quantity the paper's model
    /// predicts and the sizing loop adjusts.
    pub width: f64,
}

/// One wire segment (a "PG interconnect" in the paper's terminology):
/// the piece of a strap between two adjacent crossings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentInfo {
    /// Index into [`PowerGridNetwork::resistors`] of the segment's
    /// resistor.
    pub resistor: usize,
    /// Index into [`SyntheticBenchmark::straps`] of the owning strap.
    pub strap: usize,
    /// Segment length in µm.
    pub length: f64,
    /// Midpoint x coordinate in µm (the `X` feature).
    pub x: f64,
    /// Midpoint y coordinate in µm (the `Y` feature).
    pub y: f64,
}

/// One via (array) connecting the two layers at a strap crossing.
///
/// Its resistance scales inversely with the lower strap's width: a
/// wider strap hosts a proportionally larger via array, so sizing a
/// strap also strengthens its layer connections — without this, via
/// resistance would put a floor under the achievable IR drop that no
/// amount of metal widening could pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViaInfo {
    /// Index into [`PowerGridNetwork::resistors`] of the via resistor.
    pub resistor: usize,
    /// Index of the lower-layer strap the via lands on.
    pub lower_strap: usize,
}

/// Geometric and electrical parameters of a synthetic grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Die width in µm.
    pub die_width: f64,
    /// Die height in µm.
    pub die_height: f64,
    /// Number of vertical (lower-layer) straps.
    pub v_straps: usize,
    /// Number of horizontal (upper-layer) straps.
    pub h_straps: usize,
    /// Metal layer number of the vertical straps.
    pub lower_layer: u32,
    /// Metal layer number of the horizontal straps.
    pub upper_layer: u32,
    /// Sheet resistance of the lower layer (Ω/□).
    pub sheet_res_lower: f64,
    /// Sheet resistance of the upper layer (Ω/□).
    pub sheet_res_upper: f64,
    /// Resistance of each via between the layers (Ω).
    pub via_resistance: f64,
    /// Initial width of lower-layer straps (µm).
    pub initial_width_lower: f64,
    /// Initial width of upper-layer straps (µm).
    pub initial_width_upper: f64,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Fraction of grid nodes carrying a supply pin (matches `#v / #n`
    /// of the target benchmark).
    pub source_fraction: f64,
    /// How supply pins are placed.
    pub pad_placement: PadPlacement,
}

impl Default for GridSpec {
    fn default() -> Self {
        Self {
            die_width: 1000.0,
            die_height: 1000.0,
            v_straps: 20,
            h_straps: 20,
            lower_layer: 1,
            upper_layer: 4,
            sheet_res_lower: 0.06,
            sheet_res_upper: 0.04,
            via_resistance: 0.01,
            initial_width_lower: 1.0,
            initial_width_upper: 1.2,
            vdd: 1.8,
            source_fraction: 0.02,
            pad_placement: PadPlacement::Perimeter,
        }
    }
}

impl GridSpec {
    /// Sheet resistance of the layer a strap with the given orientation
    /// sits on.
    #[must_use]
    pub fn sheet_resistance(&self, orientation: Orientation) -> f64 {
        match orientation {
            Orientation::Vertical => self.sheet_res_lower,
            Orientation::Horizontal => self.sheet_res_upper,
        }
    }

    fn validate(&self) -> crate::Result<()> {
        if self.v_straps < 2 || self.h_straps < 2 {
            return Err(NetlistError::InfeasibleGrid {
                detail: format!(
                    "need at least 2 straps per direction, got {}x{}",
                    self.v_straps, self.h_straps
                ),
            });
        }
        for (what, v) in [
            ("die width", self.die_width),
            ("die height", self.die_height),
            ("lower sheet resistance", self.sheet_res_lower),
            ("upper sheet resistance", self.sheet_res_upper),
            ("via resistance", self.via_resistance),
            ("lower initial width", self.initial_width_lower),
            ("upper initial width", self.initial_width_upper),
            ("vdd", self.vdd),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(NetlistError::InfeasibleGrid {
                    detail: format!("{what} must be positive, got {v}"),
                });
            }
        }
        if !(self.source_fraction > 0.0 && self.source_fraction <= 1.0) {
            return Err(NetlistError::InfeasibleGrid {
                detail: format!("source fraction {} outside (0, 1]", self.source_fraction),
            });
        }
        Ok(())
    }
}

/// A generated benchmark: the netlist plus all the geometry the
/// PowerPlanningDL flow needs (which the real decks encode in node names
/// and which the paper recovers as its X/Y features).
#[derive(Debug, Clone)]
pub struct SyntheticBenchmark {
    name: String,
    spec: GridSpec,
    floorplan: Floorplan,
    network: PowerGridNetwork,
    straps: Vec<StrapInfo>,
    segments: Vec<SegmentInfo>,
    vias: Vec<ViaInfo>,
}

impl SyntheticBenchmark {
    /// Generates a benchmark for an [`IbmPgPreset`](crate::IbmPgPreset)
    /// at the given `scale` (fraction of the published node count; `1.0`
    /// reproduces Table II sizes, smaller values keep tests fast), using
    /// `seed` for the floorplan randomness.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::InfeasibleGrid`] for degenerate scales
    /// (so small that fewer than 2 straps remain).
    pub fn from_preset(preset: crate::IbmPgPreset, scale: f64, seed: u64) -> crate::Result<Self> {
        let spec = preset.grid_spec(scale)?;
        let fp_config = preset.floorplan_config(scale);
        let floorplan = FloorplanGenerator::new(fp_config).generate(seed)?;
        Self::generate(preset.name(), spec, floorplan)
    }

    /// Builds the grid netlist for `spec` over `floorplan`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InfeasibleGrid`] if the spec is invalid
    /// or inconsistent with the floorplan dimensions.
    pub fn generate(
        name: impl Into<String>,
        spec: GridSpec,
        floorplan: Floorplan,
    ) -> crate::Result<Self> {
        spec.validate()?;
        if (floorplan.die_width() - spec.die_width).abs() > 1e-6
            || (floorplan.die_height() - spec.die_height).abs() > 1e-6
        {
            return Err(NetlistError::InfeasibleGrid {
                detail: format!(
                    "floorplan die {}x{} does not match spec die {}x{}",
                    floorplan.die_width(),
                    floorplan.die_height(),
                    spec.die_width,
                    spec.die_height
                ),
            });
        }

        let (nv, nh) = (spec.v_straps, spec.h_straps);
        let pitch_x = spec.die_width / nv as f64;
        let pitch_y = spec.die_height / nh as f64;
        // Node coordinates in integer nanometre-ish database units.
        let dbu = |um: f64| -> i64 { (um * 1000.0).round() as i64 };
        let xs: Vec<f64> = (0..nv).map(|i| (i as f64 + 0.5) * pitch_x).collect();
        let ys: Vec<f64> = (0..nh).map(|j| (j as f64 + 0.5) * pitch_y).collect();

        let mut network = PowerGridNetwork::new();
        // Intern all nodes up front: lower then upper, row-major.
        let mut lower = vec![vec![crate::NodeId(0); nh]; nv];
        let mut upper = vec![vec![crate::NodeId(0); nh]; nv];
        for (i, &x) in xs.iter().enumerate() {
            for (j, &y) in ys.iter().enumerate() {
                lower[i][j] = network.intern(NodeName::grid(spec.lower_layer, dbu(x), dbu(y)));
            }
        }
        for (i, &x) in xs.iter().enumerate() {
            for (j, &y) in ys.iter().enumerate() {
                upper[i][j] = network.intern(NodeName::grid(spec.upper_layer, dbu(x), dbu(y)));
            }
        }

        let mut straps = Vec::with_capacity(nv + nh);
        let mut segments = Vec::new();

        // Vertical (lower-layer) straps and their segments.
        for (i, &x) in xs.iter().enumerate() {
            let strap_id = straps.len();
            straps.push(StrapInfo {
                layer: spec.lower_layer,
                orientation: Orientation::Vertical,
                index: i,
                position: x,
                width: spec.initial_width_lower,
            });
            for j in 0..nh - 1 {
                let length = ys[j + 1] - ys[j];
                let ohms = spec.sheet_res_lower * length / spec.initial_width_lower;
                let ridx = network.resistors().len();
                network.add_resistor(format!("Rv{i}_{j}"), lower[i][j], lower[i][j + 1], ohms)?;
                segments.push(SegmentInfo {
                    resistor: ridx,
                    strap: strap_id,
                    length,
                    x,
                    y: (ys[j] + ys[j + 1]) / 2.0,
                });
            }
        }

        // Horizontal (upper-layer) straps.
        for (j, &y) in ys.iter().enumerate() {
            let strap_id = straps.len();
            straps.push(StrapInfo {
                layer: spec.upper_layer,
                orientation: Orientation::Horizontal,
                index: j,
                position: y,
                width: spec.initial_width_upper,
            });
            for i in 0..nv - 1 {
                let length = xs[i + 1] - xs[i];
                let ohms = spec.sheet_res_upper * length / spec.initial_width_upper;
                let ridx = network.resistors().len();
                network.add_resistor(format!("Rh{j}_{i}"), upper[i][j], upper[i + 1][j], ohms)?;
                segments.push(SegmentInfo {
                    resistor: ridx,
                    strap: strap_id,
                    length,
                    x: (xs[i] + xs[i + 1]) / 2.0,
                    y,
                });
            }
        }

        // Vias at every crossing (one array per crossing, landing on
        // the vertical lower-layer strap).
        let mut vias = Vec::with_capacity(nv * nh);
        for i in 0..nv {
            for j in 0..nh {
                let ridx = network.resistors().len();
                network.add_resistor(
                    format!("Rx{i}_{j}"),
                    lower[i][j],
                    upper[i][j],
                    spec.via_resistance,
                )?;
                vias.push(ViaInfo {
                    resistor: ridx,
                    lower_strap: i,
                });
            }
        }

        // Current loads: each lower node takes the covering block's
        // demand over one pitch tile.
        let tile_area = pitch_x * pitch_y;
        for (i, &x) in xs.iter().enumerate() {
            for (j, &y) in ys.iter().enumerate() {
                let amps = floorplan.current_demand_at(x, y, tile_area);
                if amps > 0.0 {
                    network.add_current_load(format!("iL{i}_{j}"), lower[i][j], amps)?;
                }
            }
        }

        // Supply pins on upper-layer nodes.
        let total_nodes = 2 * nv * nh;
        let want_sources = ((spec.source_fraction * total_nodes as f64).round() as usize).max(1);
        match spec.pad_placement {
            PadPlacement::Perimeter => {
                // Wirebond: pins spread evenly over the boundary ring,
                // spilling to interior nodes only for unusually high pin
                // counts.
                let mut candidates: Vec<(usize, usize)> = Vec::with_capacity(nv * nh);
                for i in 0..nv {
                    for j in 0..nh {
                        if i == 0 || j == 0 || i == nv - 1 || j == nh - 1 {
                            candidates.push((i, j));
                        }
                    }
                }
                for i in 1..nv - 1 {
                    for j in 1..nh - 1 {
                        candidates.push((i, j));
                    }
                }
                let take = want_sources.min(candidates.len());
                for k in 0..take {
                    let idx = k * candidates.len() / take;
                    let (i, j) = candidates[idx];
                    network.add_voltage_source(format!("V{k}"), upper[i][j], spec.vdd)?;
                }
            }
            PadPlacement::AreaArray => {
                // Flip-chip: bumps on a regular modular lattice
                // ((i + 3j) mod m), so every strap sees pins at a
                // uniform pitch. Stride-sampling a row-major candidate
                // list would instead leave periodic stripes of
                // unsupplied crossings — artificial hot lines that
                // dominate the IR picture.
                let crossings = nv * nh;
                let m = ((crossings as f64 / want_sources as f64).round() as usize).max(1);
                let mut k = 0;
                for (i, row) in upper.iter().enumerate() {
                    for (j, &node) in row.iter().enumerate() {
                        if (i + 3 * j) % m == 0 {
                            network.add_voltage_source(format!("V{k}"), node, spec.vdd)?;
                            k += 1;
                        }
                    }
                }
            }
        }

        Ok(Self {
            name: name.into(),
            spec,
            floorplan,
            network,
            straps,
            segments,
            vias,
        })
    }

    /// Benchmark name (e.g. `ibmpg2`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The grid specification used.
    #[must_use]
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// The floorplan the grid was built over.
    #[must_use]
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// The generated netlist.
    #[must_use]
    pub fn network(&self) -> &PowerGridNetwork {
        &self.network
    }

    /// Mutable netlist access (the perturbation engine edits loads and
    /// source voltages in place).
    pub fn network_mut(&mut self) -> &mut PowerGridNetwork {
        &mut self.network
    }

    /// The straps of the grid.
    #[must_use]
    pub fn straps(&self) -> &[StrapInfo] {
        &self.straps
    }

    /// The wire segments ("PG interconnects").
    #[must_use]
    pub fn segments(&self) -> &[SegmentInfo] {
        &self.segments
    }

    /// The vias connecting the two layers, one per crossing.
    #[must_use]
    pub fn vias(&self) -> &[ViaInfo] {
        &self.vias
    }

    /// The via-array resistance a crossing would have if its lower
    /// strap were `width` µm wide (the array grows with the strap).
    #[must_use]
    pub fn via_resistance_for_width(&self, width: f64) -> f64 {
        self.spec.via_resistance * self.spec.initial_width_lower / width
    }

    /// The strap plan of one direction: the current widths with the
    /// spacings that satisfy the ring-width constraint of eq. 3,
    /// `Σ (sᵢ + wᵢ) = W_core`.
    ///
    /// # Errors
    ///
    /// Propagates [`FloorplanError::RingWidthViolation`]
    /// (as [`NetlistError::Floorplan`]) if the straps have been widened
    /// past the die — the design-rule check that catches runaway
    /// sizing.
    ///
    /// [`FloorplanError::RingWidthViolation`]: ppdl_floorplan::FloorplanError::RingWidthViolation
    pub fn strap_plan(&self, orientation: Orientation) -> crate::Result<ppdl_floorplan::StrapPlan> {
        let core_width = match orientation {
            Orientation::Vertical => self.spec.die_width,
            Orientation::Horizontal => self.spec.die_height,
        };
        let widths: Vec<f64> = self
            .straps
            .iter()
            .filter(|s| s.orientation == orientation)
            .map(|s| s.width)
            .collect();
        Ok(ppdl_floorplan::StrapPlan::from_widths(core_width, &widths)?)
    }

    /// Sets a strap's width and updates every segment resistance on it
    /// (`R = ρ · ℓ / w`).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InfeasibleGrid`] if `strap` is out of
    /// range or `width` is not strictly positive.
    pub fn set_strap_width(&mut self, strap: usize, width: f64) -> crate::Result<()> {
        if strap >= self.straps.len() {
            return Err(NetlistError::InfeasibleGrid {
                detail: format!(
                    "strap index {strap} out of range for {} straps",
                    self.straps.len()
                ),
            });
        }
        if !(width.is_finite() && width > 0.0) {
            return Err(NetlistError::InfeasibleGrid {
                detail: format!("strap width must be positive, got {width}"),
            });
        }
        let rho = self.spec.sheet_resistance(self.straps[strap].orientation);
        self.straps[strap].width = width;
        for seg in &self.segments {
            if seg.strap == strap {
                let ohms = rho * seg.length / width;
                // Segment indices are valid by construction; propagate
                // a typed error rather than aborting if that ever
                // breaks (robustness/unwrap-in-lib).
                self.network.set_resistance(seg.resistor, ohms)?;
            }
        }
        // A wider strap hosts a larger via array at each crossing.
        if self.straps[strap].orientation == Orientation::Vertical {
            let via_ohms = self.via_resistance_for_width(width);
            for via in &self.vias {
                if via.lower_strap == strap {
                    // Same as above: via indices are valid by
                    // construction (robustness/unwrap-in-lib).
                    self.network.set_resistance(via.resistor, via_ohms)?;
                }
            }
        }
        Ok(())
    }

    /// Convenience: the widths of all straps, indexed by strap id.
    #[must_use]
    pub fn strap_widths(&self) -> Vec<f64> {
        self.straps.iter().map(|s| s.width).collect()
    }

    /// Total metal area of the grid in µm² (Σ width × length over all
    /// segments) — the routing-area cost that over-designing inflates
    /// and Problem 1 trades against the reliability margins.
    #[must_use]
    pub fn total_metal_area(&self) -> f64 {
        self.segments
            .iter()
            .map(|seg| self.straps[seg.strap].width * seg.length)
            .sum()
    }

    /// Applies a full width vector (one entry per strap).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InfeasibleGrid`] on length mismatch or
    /// any invalid width.
    pub fn set_strap_widths(&mut self, widths: &[f64]) -> crate::Result<()> {
        if widths.len() != self.straps.len() {
            return Err(NetlistError::InfeasibleGrid {
                detail: format!(
                    "{} widths provided for {} straps",
                    widths.len(),
                    self.straps.len()
                ),
            });
        }
        for (i, &w) in widths.iter().enumerate() {
            self.set_strap_width(i, w)?;
        }
        Ok(())
    }

    /// Partitions the straps into `per_orientation` contiguous bands
    /// per direction for template-based synthesis (OpeNPDN-style: one
    /// width template per region rather than one free width per strap).
    ///
    /// Straps of each orientation are ordered by centreline position
    /// and split into bands of near-equal size; vertical bands come
    /// first, then horizontal, so region `i` always means the same
    /// physical stripe for a given grid. Every strap lands in exactly
    /// one region, and no region is empty (directions with fewer straps
    /// than `per_orientation` yield fewer, non-empty bands).
    #[must_use]
    pub fn strap_regions(&self, per_orientation: usize) -> Vec<Vec<usize>> {
        let per_orientation = per_orientation.max(1);
        let mut regions = Vec::new();
        for orientation in [Orientation::Vertical, Orientation::Horizontal] {
            let mut ids: Vec<usize> = (0..self.straps.len())
                .filter(|&i| self.straps[i].orientation == orientation)
                .collect();
            ids.sort_by(|&a, &b| {
                self.straps[a]
                    .position
                    .total_cmp(&self.straps[b].position)
                    .then(a.cmp(&b))
            });
            if ids.is_empty() {
                continue;
            }
            let bands = per_orientation.min(ids.len());
            // Spread the remainder over the leading bands so sizes
            // differ by at most one.
            let (base, extra) = (ids.len() / bands, ids.len() % bands);
            let mut start = 0;
            for b in 0..bands {
                let len = base + usize::from(b < extra);
                regions.push(ids[start..start + len].to_vec());
                start += len;
            }
        }
        regions
    }

    /// Applies one width per region (as produced by
    /// [`strap_regions`](Self::strap_regions)): every strap in region
    /// `i` is set to `widths[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InfeasibleGrid`] on a length mismatch
    /// between `regions` and `widths`, and propagates
    /// [`set_strap_width`](Self::set_strap_width) errors for invalid
    /// widths or stale strap indices.
    pub fn apply_region_widths(
        &mut self,
        regions: &[Vec<usize>],
        widths: &[f64],
    ) -> crate::Result<()> {
        if regions.len() != widths.len() {
            return Err(NetlistError::InfeasibleGrid {
                detail: format!(
                    "{} region widths provided for {} regions",
                    widths.len(),
                    regions.len()
                ),
            });
        }
        for (region, &width) in regions.iter().zip(widths) {
            for &strap in region {
                self.set_strap_width(strap, width)?;
            }
        }
        Ok(())
    }

    /// Applies a full load-current vector (one entry per current load,
    /// in [`PowerGridNetwork::current_loads`] order) — the bulk form of
    /// [`PowerGridNetwork::set_load_current`], used to restore cached
    /// calibration results.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InfeasibleGrid`] on length mismatch and
    /// propagates per-load errors for invalid values.
    pub fn set_load_currents(&mut self, amps: &[f64]) -> crate::Result<()> {
        if amps.len() != self.network.current_loads().len() {
            return Err(NetlistError::InfeasibleGrid {
                detail: format!(
                    "{} load currents provided for {} loads",
                    amps.len(),
                    self.network.current_loads().len()
                ),
            });
        }
        for (i, &a) in amps.iter().enumerate() {
            self.network.set_load_current(i, a)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdl_floorplan::PowerNet;

    fn small_spec() -> GridSpec {
        GridSpec {
            die_width: 100.0,
            die_height: 100.0,
            v_straps: 4,
            h_straps: 5,
            ..GridSpec::default()
        }
    }

    fn small_floorplan() -> Floorplan {
        let mut fp = Floorplan::new(100.0, 100.0).unwrap();
        fp.add_block(
            ppdl_floorplan::FunctionalBlock::new("b0", 10.0, 10.0, 60.0, 60.0, 0.3).unwrap(),
        )
        .unwrap();
        fp.add_pad(ppdl_floorplan::PowerPad::new("v", 0.0, 0.0, PowerNet::Vdd))
            .unwrap();
        fp
    }

    #[test]
    fn counts_match_formula() {
        let b = SyntheticBenchmark::generate("t", small_spec(), small_floorplan()).unwrap();
        let (nv, nh) = (4, 5);
        assert_eq!(b.network().node_count(), 2 * nv * nh);
        // v-straps segments + h-straps segments + vias
        let expect_r = nv * (nh - 1) + nh * (nv - 1) + nv * nh;
        assert_eq!(b.network().resistors().len(), expect_r);
        assert_eq!(b.straps().len(), nv + nh);
        assert_eq!(b.segments().len(), nv * (nh - 1) + nh * (nv - 1));
    }

    #[test]
    fn loads_cover_block_area_only() {
        let b = SyntheticBenchmark::generate("t", small_spec(), small_floorplan()).unwrap();
        // Block covers x,y in [10,70]: pitches 25/20, so nodes at
        // x in {12.5, 37.5, 62.5} and y in {10,30,50} qualify (y=70 is
        // outside the half-open block). 3 x values * 3 y values = 9.
        assert_eq!(b.network().current_loads().len(), 9);
        // Load total approximates block current (tile quantization).
        let total = b.network().total_load_current();
        assert!(total > 0.1 && total < 0.5, "total {total}");
    }

    #[test]
    fn sources_at_least_one_and_at_vdd() {
        let b = SyntheticBenchmark::generate("t", small_spec(), small_floorplan()).unwrap();
        assert!(!b.network().voltage_sources().is_empty());
        assert!(b.network().voltage_sources().iter().all(|s| s.volts == 1.8));
    }

    #[test]
    fn segment_resistance_follows_geometry() {
        let spec = small_spec();
        let b = SyntheticBenchmark::generate("t", spec.clone(), small_floorplan()).unwrap();
        let seg = &b.segments()[0];
        let strap = &b.straps()[seg.strap];
        let rho = spec.sheet_resistance(strap.orientation);
        let expect = rho * seg.length / strap.width;
        assert!((b.network().resistors()[seg.resistor].ohms - expect).abs() < 1e-12);
    }

    #[test]
    fn set_strap_width_rescales_all_segments() {
        let mut b = SyntheticBenchmark::generate("t", small_spec(), small_floorplan()).unwrap();
        let before = b.network().resistors()[b.segments()[0].resistor].ohms;
        b.set_strap_width(0, 2.0).unwrap();
        let after = b.network().resistors()[b.segments()[0].resistor].ohms;
        assert!((after - before / 2.0).abs() < 1e-12);
        assert_eq!(b.straps()[0].width, 2.0);
        // Other straps untouched.
        let other = b.segments().iter().find(|s| s.strap == 1).unwrap().resistor;
        assert!((b.network().resistors()[other].ohms - before).abs() < 1e-12);
    }

    #[test]
    fn set_strap_width_validates() {
        let mut b = SyntheticBenchmark::generate("t", small_spec(), small_floorplan()).unwrap();
        assert!(b.set_strap_width(999, 1.0).is_err());
        assert!(b.set_strap_width(0, 0.0).is_err());
        assert!(b.set_strap_width(0, f64::NAN).is_err());
    }

    #[test]
    fn set_strap_widths_roundtrip() {
        let mut b = SyntheticBenchmark::generate("t", small_spec(), small_floorplan()).unwrap();
        let mut w = b.strap_widths();
        for (i, wi) in w.iter_mut().enumerate() {
            *wi = 1.0 + 0.1 * i as f64;
        }
        b.set_strap_widths(&w).unwrap();
        assert_eq!(b.strap_widths(), w);
        assert!(b.set_strap_widths(&w[1..]).is_err());
    }

    #[test]
    fn metal_area_grows_with_widening() {
        let mut b = SyntheticBenchmark::generate("t", small_spec(), small_floorplan()).unwrap();
        let before = b.total_metal_area();
        assert!(before > 0.0);
        b.set_strap_width(0, 4.0).unwrap();
        let after = b.total_metal_area();
        assert!(after > before);
        // The increase equals (new - old width) x strap length.
        let strap_len: f64 = b
            .segments()
            .iter()
            .filter(|s| s.strap == 0)
            .map(|s| s.length)
            .sum();
        assert!((after - before - (4.0 - 1.0) * strap_len).abs() < 1e-9);
    }

    #[test]
    fn strap_plan_satisfies_eq3() {
        let mut b = SyntheticBenchmark::generate("t", small_spec(), small_floorplan()).unwrap();
        let plan = b.strap_plan(Orientation::Vertical).unwrap();
        assert_eq!(plan.strap_count(), 4);
        assert!(plan.satisfies_ring_constraint(1e-9));
        // Widen a strap: the plan reflects it and still satisfies eq. 3.
        b.set_strap_width(0, 5.0).unwrap();
        let plan = b.strap_plan(Orientation::Vertical).unwrap();
        assert_eq!(plan.segments()[0].width, 5.0);
        assert!(plan.satisfies_ring_constraint(1e-9));
        // Over-widening past the die is a design-rule violation.
        for s in 0..4 {
            b.set_strap_width(s, 30.0).unwrap();
        }
        assert!(b.strap_plan(Orientation::Vertical).is_err());
    }

    #[test]
    fn too_few_straps_rejected() {
        let spec = GridSpec {
            v_straps: 1,
            ..small_spec()
        };
        assert!(matches!(
            SyntheticBenchmark::generate("t", spec, small_floorplan()),
            Err(NetlistError::InfeasibleGrid { .. })
        ));
    }

    #[test]
    fn mismatched_floorplan_rejected() {
        let spec = GridSpec {
            die_width: 200.0,
            ..small_spec()
        };
        assert!(SyntheticBenchmark::generate("t", spec, small_floorplan()).is_err());
    }

    #[test]
    fn spice_round_trip_preserves_stats() {
        let b = SyntheticBenchmark::generate("t", small_spec(), small_floorplan()).unwrap();
        let deck = b.network().to_spice();
        let net = crate::parse_spice(&deck).unwrap();
        assert_eq!(net.stats(), b.network().stats());
    }

    #[test]
    fn area_array_spreads_sources() {
        let spec = GridSpec {
            pad_placement: PadPlacement::AreaArray,
            source_fraction: 0.25,
            ..small_spec()
        };
        let b = SyntheticBenchmark::generate("t", spec, small_floorplan()).unwrap();
        // 25% of 40 nodes = 10 sources.
        assert_eq!(b.network().voltage_sources().len(), 10);
    }

    #[test]
    fn strap_regions_partition_every_strap_once() {
        let b = SyntheticBenchmark::generate("t", small_spec(), small_floorplan()).unwrap();
        // 4 vertical + 5 horizontal straps, 2 bands each direction.
        let regions = b.strap_regions(2);
        assert_eq!(regions.len(), 4);
        let mut seen: Vec<usize> = regions.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..b.straps().len()).collect::<Vec<_>>());
        assert!(regions.iter().all(|r| !r.is_empty()));
        // Bands are contiguous in position and single-orientation.
        for region in &regions {
            let o = b.straps()[region[0]].orientation;
            assert!(region.iter().all(|&i| b.straps()[i].orientation == o));
            for pair in region.windows(2) {
                assert!(b.straps()[pair[0]].position <= b.straps()[pair[1]].position);
            }
        }
        // More bands than straps degrades to one strap per band, never
        // an empty band.
        let fine = b.strap_regions(100);
        assert_eq!(fine.len(), b.straps().len());
        assert!(fine.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn region_widths_apply_per_band_and_reject_mismatch() {
        let mut b = SyntheticBenchmark::generate("t", small_spec(), small_floorplan()).unwrap();
        let regions = b.strap_regions(2);
        let widths: Vec<f64> = (0..regions.len()).map(|i| 1.0 + i as f64).collect();
        b.apply_region_widths(&regions, &widths).unwrap();
        for (region, &w) in regions.iter().zip(&widths) {
            for &strap in region {
                assert_eq!(b.straps()[strap].width, w);
            }
        }
        assert!(b.apply_region_widths(&regions, &widths[1..]).is_err());
        assert!(b
            .apply_region_widths(&regions, &vec![-1.0; regions.len()])
            .is_err());
    }
}

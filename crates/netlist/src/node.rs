use std::fmt;

/// A structured power-grid node name in the IBM benchmark convention:
/// `n<layer>_<x>_<y>` (e.g. `n1_12400_300`), with the bare token `0`
/// denoting ground.
///
/// Coordinates are integers in the benchmark's database units. Names
/// that do not follow the convention (the decks contain a few, e.g.
/// internal via names) are preserved as [`NodeName::Opaque`].
///
/// # Example
///
/// ```
/// use ppdl_netlist::NodeName;
///
/// let n: NodeName = "n2_100_250".parse().unwrap();
/// assert_eq!(n, NodeName::Grid { layer: 2, x: 100, y: 250 });
/// assert_eq!(n.to_string(), "n2_100_250");
/// assert_eq!("0".parse::<NodeName>().unwrap(), NodeName::Ground);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeName {
    /// The global ground reference, written `0`.
    Ground,
    /// A grid node with a metal layer and integer coordinates.
    Grid {
        /// Metal layer number (1 = lowest).
        layer: u32,
        /// X coordinate in database units.
        x: i64,
        /// Y coordinate in database units.
        y: i64,
    },
    /// Any other name, preserved verbatim.
    Opaque(String),
}

impl NodeName {
    /// Builds a grid node name.
    #[must_use]
    pub fn grid(layer: u32, x: i64, y: i64) -> Self {
        NodeName::Grid { layer, x, y }
    }

    /// The `(x, y)` coordinates if this is a grid node.
    #[must_use]
    pub fn coordinates(&self) -> Option<(i64, i64)> {
        match self {
            NodeName::Grid { x, y, .. } => Some((*x, *y)),
            _ => None,
        }
    }

    /// The metal layer if this is a grid node.
    #[must_use]
    pub fn layer(&self) -> Option<u32> {
        match self {
            NodeName::Grid { layer, .. } => Some(*layer),
            _ => None,
        }
    }

    /// Whether this is the ground reference.
    #[must_use]
    pub fn is_ground(&self) -> bool {
        matches!(self, NodeName::Ground)
    }
}

impl fmt::Display for NodeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeName::Ground => write!(f, "0"),
            NodeName::Grid { layer, x, y } => write!(f, "n{layer}_{x}_{y}"),
            NodeName::Opaque(s) => write!(f, "{s}"),
        }
    }
}

impl std::str::FromStr for NodeName {
    type Err = std::convert::Infallible;

    /// Parsing never fails: names outside the convention become
    /// [`NodeName::Opaque`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "0" {
            return Ok(NodeName::Ground);
        }
        if let Some(rest) = s.strip_prefix('n') {
            let parts: Vec<&str> = rest.split('_').collect();
            if parts.len() == 3 {
                if let (Ok(layer), Ok(x), Ok(y)) = (
                    parts[0].parse::<u32>(),
                    parts[1].parse::<i64>(),
                    parts[2].parse::<i64>(),
                ) {
                    return Ok(NodeName::Grid { layer, x, y });
                }
            }
        }
        Ok(NodeName::Opaque(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_grid_names() {
        let n: NodeName = "n3_0_987654".parse().unwrap();
        assert_eq!(n.layer(), Some(3));
        assert_eq!(n.coordinates(), Some((0, 987654)));
    }

    #[test]
    fn parses_negative_coordinates() {
        let n: NodeName = "n1_-5_10".parse().unwrap();
        assert_eq!(n.coordinates(), Some((-5, 10)));
    }

    #[test]
    fn ground_token() {
        let n: NodeName = "0".parse().unwrap();
        assert!(n.is_ground());
        assert_eq!(n.to_string(), "0");
    }

    #[test]
    fn non_conventional_names_preserved() {
        for s in ["X17", "n1_2", "n_a_b", "vdd", "n1_2_3_4"] {
            let n: NodeName = s.parse().unwrap();
            assert_eq!(n, NodeName::Opaque(s.to_string()));
            assert_eq!(n.to_string(), s);
        }
    }

    #[test]
    fn display_round_trips() {
        for n in [
            NodeName::Ground,
            NodeName::grid(1, 42, 99),
            NodeName::Opaque("abc".into()),
        ] {
            let s = n.to_string();
            let back: NodeName = s.parse().unwrap();
            assert_eq!(back, n);
        }
    }

    #[test]
    fn opaque_has_no_geometry() {
        let n: NodeName = "foo".parse().unwrap();
        assert_eq!(n.coordinates(), None);
        assert_eq!(n.layer(), None);
    }
}

/// Disjoint-set (union-find) structure with path compression and union
/// by rank.
///
/// Used to merge nodes connected by zero-resistance vias before
/// analysis: the IBM decks model many vias as `R = 0` shorts, which a
/// nodal-analysis matrix cannot represent directly.
///
/// # Example
///
/// ```
/// use ppdl_netlist::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.same(0, 1));
/// assert!(!uf.same(1, 2));
/// assert_eq!(uf.component_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint components.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Finds the representative of `x`'s set, compressing paths.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: usize) -> usize {
        assert!(x < self.parent.len(), "union-find index out of range");
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`. Returns `true` if they
    /// were previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Produces a dense relabelling: a vector mapping each element to a
    /// component index in `0..component_count()`, with representatives
    /// numbered in first-seen order.
    pub fn dense_labels(&mut self) -> Vec<usize> {
        let n = self.parent.len();
        let mut label = vec![usize::MAX; n];
        let mut next = 0;
        let mut out = vec![0; n];
        for (i, slot) in out.iter_mut().enumerate() {
            let r = self.find(i);
            if label[r] == usize::MAX {
                label[r] = next;
                next += 1;
            }
            *slot = label[r];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.component_count(), 3);
        assert!(!uf.same(0, 2));
    }

    #[test]
    fn union_reduces_components() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already joined
        assert_eq!(uf.component_count(), 3);
        assert!(uf.same(0, 2));
    }

    #[test]
    fn transitive_chains() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.same(0, 99));
    }

    #[test]
    fn dense_labels_first_seen_order() {
        let mut uf = UnionFind::new(6);
        uf.union(3, 4);
        uf.union(0, 5);
        let labels = uf.dense_labels();
        // Components: {0,5}=0, {1}=1, {2}=2, {3,4}=3.
        assert_eq!(labels[0], labels[5]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 1);
        assert_eq!(labels[2], 2);
        assert_eq!(labels[3], 3);
        let max = *labels.iter().max().unwrap();
        assert_eq!(max + 1, uf.component_count());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn find_out_of_range_panics() {
        let mut uf = UnionFind::new(2);
        uf.find(2);
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }
}

//! Per-benchmark presets matching the IBM PG benchmark suite.
//!
//! Table II of the paper lists the size of each benchmark (`#n` nodes,
//! `#r` resistors, `#v` supply sources, `#i` current loads). The
//! presets here carry those published numbers and derive a generator
//! configuration whose *scaled* grid reproduces the same structure:
//! node count, source-to-node ratio (which distinguishes the wirebond
//! parts ibmpg1-4 from the flip-chip parts ibmpg5/6), and load density.

use ppdl_floorplan::{GeneratorConfig, PadPlacement};

use crate::{BenchmarkStats, GridSpec, NetlistError};

/// The eight IBM power-grid benchmarks of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IbmPgPreset {
    Ibmpg1,
    Ibmpg2,
    Ibmpg3,
    Ibmpg4,
    Ibmpg5,
    Ibmpg6,
    IbmpgNew1,
    IbmpgNew2,
}

impl IbmPgPreset {
    /// All presets in Table II order.
    pub const ALL: [IbmPgPreset; 8] = [
        IbmPgPreset::Ibmpg1,
        IbmPgPreset::Ibmpg2,
        IbmPgPreset::Ibmpg3,
        IbmPgPreset::Ibmpg4,
        IbmPgPreset::Ibmpg5,
        IbmPgPreset::Ibmpg6,
        IbmPgPreset::IbmpgNew1,
        IbmPgPreset::IbmpgNew2,
    ];

    /// The six benchmarks that Table III reports worst-case IR drop for.
    pub const TABLE3: [IbmPgPreset; 6] = [
        IbmPgPreset::Ibmpg1,
        IbmPgPreset::Ibmpg2,
        IbmPgPreset::Ibmpg3,
        IbmPgPreset::Ibmpg4,
        IbmPgPreset::Ibmpg5,
        IbmPgPreset::Ibmpg6,
    ];

    /// Canonical benchmark name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            IbmPgPreset::Ibmpg1 => "ibmpg1",
            IbmPgPreset::Ibmpg2 => "ibmpg2",
            IbmPgPreset::Ibmpg3 => "ibmpg3",
            IbmPgPreset::Ibmpg4 => "ibmpg4",
            IbmPgPreset::Ibmpg5 => "ibmpg5",
            IbmPgPreset::Ibmpg6 => "ibmpg6",
            IbmPgPreset::IbmpgNew1 => "ibmpgnew1",
            IbmPgPreset::IbmpgNew2 => "ibmpgnew2",
        }
    }

    /// The published full-size statistics (Table II).
    #[must_use]
    pub fn published_stats(self) -> BenchmarkStats {
        let (nodes, resistors, sources, loads) = match self {
            IbmPgPreset::Ibmpg1 => (30_638, 30_027, 14_308, 10_774),
            IbmPgPreset::Ibmpg2 => (127_238, 208_325, 330, 37_926),
            IbmPgPreset::Ibmpg3 => (851_584, 1_401_572, 955, 201_054),
            IbmPgPreset::Ibmpg4 => (953_583, 1_560_645, 962, 276_976),
            IbmPgPreset::Ibmpg5 => (1_079_310, 1_076_848, 539_087, 540_800),
            IbmPgPreset::Ibmpg6 => (1_670_494, 1_649_002, 836_239, 761_484),
            IbmPgPreset::IbmpgNew1 => (1_461_036, 2_352_355, 955, 357_930),
            IbmPgPreset::IbmpgNew2 => (1_461_039, 1_422_830, 930_216, 357_930),
        };
        BenchmarkStats {
            nodes,
            resistors,
            sources,
            loads,
        }
    }

    /// The worst-case IR drop Table III reports for the conventional
    /// flow, in millivolts; `None` for the two `new` benchmarks Table
    /// III omits. The calibration helper in `ppdl-core` scales load
    /// currents so the synthetic grid reproduces this value.
    #[must_use]
    pub fn table3_worst_ir_mv(self) -> Option<f64> {
        match self {
            IbmPgPreset::Ibmpg1 => Some(69.8),
            IbmPgPreset::Ibmpg2 => Some(36.3),
            IbmPgPreset::Ibmpg3 => Some(18.1),
            IbmPgPreset::Ibmpg4 => Some(4.0),
            IbmPgPreset::Ibmpg5 => Some(4.3),
            IbmPgPreset::Ibmpg6 => Some(13.1),
            IbmPgPreset::IbmpgNew1 | IbmPgPreset::IbmpgNew2 => None,
        }
    }

    /// Whether this part is flip-chip (area-array supply pins): true
    /// when a large fraction of nodes carry a source in Table II.
    #[must_use]
    pub fn is_flip_chip(self) -> bool {
        let s = self.published_stats();
        s.sources as f64 / s.nodes as f64 > 0.1
    }

    /// Builds the grid specification for this benchmark at `scale` ∈
    /// (0, 1]: strap counts are chosen so the scaled node count is
    /// approximately `scale × #n`, and the source fraction matches the
    /// published `#v / #n`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InfeasibleGrid`] if `scale` is not in
    /// `(0, 1]` or is so small that fewer than two straps remain per
    /// direction.
    pub fn grid_spec(self, scale: f64) -> crate::Result<GridSpec> {
        if !(scale > 0.0 && scale <= 1.0) {
            return Err(NetlistError::InfeasibleGrid {
                detail: format!("scale {scale} outside (0, 1]"),
            });
        }
        let stats = self.published_stats();
        // Two layers of straps: nodes = 2 * v * h with v = h.
        let straps = ((scale * stats.nodes as f64 / 2.0).sqrt().round() as usize).max(2);
        if straps < 2 {
            return Err(NetlistError::InfeasibleGrid {
                detail: format!("scale {scale} leaves fewer than 2 straps"),
            });
        }
        // 50 µm pitch keeps die size proportional to grid size.
        let pitch = 50.0;
        let die = straps as f64 * pitch;
        // The published #v counts the supply pins of BOTH nets (VDD and
        // GND); this generator models the VDD net alone, so its pin
        // density is half the published ratio.
        let source_fraction = (stats.sources as f64 / 2.0 / stats.nodes as f64).clamp(1e-4, 1.0);
        Ok(GridSpec {
            die_width: die,
            die_height: die,
            v_straps: straps,
            h_straps: straps,
            source_fraction,
            pad_placement: if self.is_flip_chip() {
                PadPlacement::AreaArray
            } else {
                PadPlacement::Perimeter
            },
            ..GridSpec::default()
        })
    }

    /// Builds the floorplan generator configuration for this benchmark
    /// at `scale`: die dimensions match [`grid_spec`](Self::grid_spec),
    /// the block-covered fraction of the die tracks the published load
    /// density `#i / #n`, and block count grows gently with size.
    #[must_use]
    pub fn floorplan_config(self, scale: f64) -> GeneratorConfig {
        let stats = self.published_stats();
        let straps = ((scale.max(1e-9) * stats.nodes as f64 / 2.0).sqrt().round() as usize).max(2);
        let die = straps as f64 * 50.0;
        // Loads sit on lower-layer nodes (half of all nodes), so the
        // covered fraction of the die should be 2 * #i / #n.
        let utilization = (2.0 * stats.loads as f64 / stats.nodes as f64).clamp(0.2, 0.85);
        let blocks = (((scale * stats.nodes as f64).sqrt() / 4.0).round() as usize).clamp(4, 64);
        GeneratorConfig {
            die_width: die,
            die_height: die,
            blocks,
            cell_utilization: utilization,
            mean_block_current: 0.02,
            pad_placement: if self.is_flip_chip() {
                PadPlacement::AreaArray
            } else {
                PadPlacement::Perimeter
            },
            pads_per_net: 8,
        }
    }
}

impl std::fmt::Display for IbmPgPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for IbmPgPreset {
    type Err = NetlistError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        IbmPgPreset::ALL
            .into_iter()
            .find(|p| p.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| NetlistError::InvalidValue {
                token: s.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticBenchmark;

    #[test]
    fn names_round_trip() {
        for p in IbmPgPreset::ALL {
            let back: IbmPgPreset = p.name().parse().unwrap();
            assert_eq!(back, p);
        }
        assert!("ibmpg9".parse::<IbmPgPreset>().is_err());
    }

    #[test]
    fn published_stats_match_table2() {
        let s = IbmPgPreset::Ibmpg5.published_stats();
        assert_eq!(s.nodes, 1_079_310);
        assert_eq!(s.sources, 539_087);
    }

    #[test]
    fn flip_chip_detection() {
        assert!(!IbmPgPreset::Ibmpg2.is_flip_chip());
        assert!(IbmPgPreset::Ibmpg5.is_flip_chip());
        assert!(IbmPgPreset::Ibmpg6.is_flip_chip());
        assert!(IbmPgPreset::IbmpgNew2.is_flip_chip());
        assert!(!IbmPgPreset::IbmpgNew1.is_flip_chip());
        // ibmpg1 is wirebond-era but has an unusually high #v.
        assert!(IbmPgPreset::Ibmpg1.is_flip_chip());
    }

    #[test]
    fn scaled_node_count_tracks_target() {
        for p in [IbmPgPreset::Ibmpg1, IbmPgPreset::Ibmpg2] {
            let scale = 0.01;
            let b = SyntheticBenchmark::from_preset(p, scale, 3).unwrap();
            let target = (scale * p.published_stats().nodes as f64) as usize;
            let got = b.network().stats().nodes;
            let ratio = got as f64 / target as f64;
            assert!(
                (0.7..1.4).contains(&ratio),
                "{}: got {got}, target {target}",
                p.name()
            );
        }
    }

    #[test]
    fn source_fraction_tracks_table2() {
        let scale = 0.005;
        let b5 = SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg5, scale, 1).unwrap();
        let s5 = b5.network().stats();
        let frac5 = s5.sources as f64 / s5.nodes as f64;
        // The generator models one of the two symmetric supply nets, so
        // it targets half the published #v/#n ratio.
        let published5_per_net = 539_087.0 / 2.0 / 1_079_310.0;
        assert!((frac5 - published5_per_net).abs() < 0.1, "frac {frac5}");

        let b2 = SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg2, scale, 1).unwrap();
        let s2 = b2.network().stats();
        assert!(s2.sources < s2.nodes / 50, "ibmpg2 is sparse-source");
    }

    #[test]
    fn invalid_scale_rejected() {
        assert!(IbmPgPreset::Ibmpg1.grid_spec(0.0).is_err());
        assert!(IbmPgPreset::Ibmpg1.grid_spec(1.5).is_err());
        assert!(IbmPgPreset::Ibmpg1.grid_spec(-0.1).is_err());
    }

    #[test]
    fn table3_values() {
        assert_eq!(IbmPgPreset::Ibmpg1.table3_worst_ir_mv(), Some(69.8));
        assert_eq!(IbmPgPreset::IbmpgNew1.table3_worst_ir_mv(), None);
        assert_eq!(IbmPgPreset::TABLE3.len(), 6);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(IbmPgPreset::IbmpgNew2.to_string(), "ibmpgnew2");
    }
}

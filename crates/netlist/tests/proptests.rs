//! Property-based tests for netlist parsing, writing, and generation.

use ppdl_netlist::{
    format_si, parse_spice, parse_value, GridSpec, NodeName, PowerGridNetwork, SyntheticBenchmark,
    UnionFind,
};
use proptest::prelude::*;

proptest! {
    /// format_si -> parse_value is the identity (to rounding) for any
    /// finite value in the physical range netlists use.
    #[test]
    fn value_format_round_trip(v in -1e12_f64..1e12) {
        let s = format_si(v);
        let back = parse_value(&s).unwrap();
        prop_assert!((back - v).abs() <= 1e-9 * v.abs().max(1e-12), "{} -> {} -> {}", v, s, back);
    }

    /// Node names in the grid convention round-trip through Display/FromStr.
    #[test]
    fn node_name_round_trip(layer in 1u32..9, x in -1_000_000i64..1_000_000, y in -1_000_000i64..1_000_000) {
        let n = NodeName::grid(layer, x, y);
        let back: NodeName = n.to_string().parse().unwrap();
        prop_assert_eq!(back, n);
    }

    /// A randomly built network round-trips through the SPICE writer and
    /// parser with identical statistics and element values.
    #[test]
    fn network_spice_round_trip(
        resistors in proptest::collection::vec((0usize..12, 0usize..12, 0.0_f64..100.0), 1..30),
        loads in proptest::collection::vec((0usize..12, 0.0_f64..1.0), 0..10),
        volts in 0.5_f64..5.0,
    ) {
        let mut net = PowerGridNetwork::new();
        let ids: Vec<_> = (0..12)
            .map(|i| net.intern(NodeName::grid(1, i as i64 * 10, 0)))
            .collect();
        for (k, (a, b, ohms)) in resistors.iter().enumerate() {
            if a != b {
                net.add_resistor(format!("R{k}"), ids[*a], ids[*b], *ohms).unwrap();
            }
        }
        net.add_voltage_source("V0", ids[0], volts).unwrap();
        for (k, (n, amps)) in loads.iter().enumerate() {
            net.add_current_load(format!("i{k}"), ids[*n], *amps).unwrap();
        }
        let deck = net.to_spice();
        let back = parse_spice(&deck).unwrap();
        // The writer emits only nodes referenced by elements, so compare
        // element counts plus the count of *referenced* nodes.
        let mut referenced: Vec<usize> = net
            .resistors()
            .iter()
            .flat_map(|r| [r.a.0, r.b.0])
            .chain(net.voltage_sources().iter().map(|s| s.node.0))
            .chain(net.current_loads().iter().map(|l| l.node.0))
            .collect();
        referenced.sort_unstable();
        referenced.dedup();
        prop_assert_eq!(back.stats().nodes, referenced.len());
        prop_assert_eq!(back.stats().resistors, net.stats().resistors);
        prop_assert_eq!(back.stats().sources, net.stats().sources);
        prop_assert_eq!(back.stats().loads, net.stats().loads);
        for (r1, r2) in back.resistors().iter().zip(net.resistors()) {
            prop_assert!((r1.ohms - r2.ohms).abs() <= 1e-9 * r2.ohms.max(1e-12));
        }
        for (l1, l2) in back.current_loads().iter().zip(net.current_loads()) {
            prop_assert!((l1.amps - l2.amps).abs() <= 1e-9 * l2.amps.max(1e-12));
        }
    }

    /// Merging shorts never changes the load/source element counts and
    /// never leaves a zero-ohm resistor behind.
    #[test]
    fn merged_shorts_invariants(
        edges in proptest::collection::vec((0usize..10, 0usize..10, prop_oneof![Just(0.0), 0.1_f64..10.0]), 1..40),
    ) {
        let mut net = PowerGridNetwork::new();
        let ids: Vec<_> = (0..10)
            .map(|i| net.intern(NodeName::grid(1, i as i64, 0)))
            .collect();
        for (k, (a, b, ohms)) in edges.iter().enumerate() {
            if a != b {
                net.add_resistor(format!("R{k}"), ids[*a], ids[*b], *ohms).unwrap();
            }
        }
        net.add_voltage_source("V0", ids[0], 1.8).unwrap();
        net.add_current_load("i0", ids[9], 0.1).unwrap();
        let (merged, map) = net.merged_shorts();
        prop_assert!(merged.resistors().iter().all(|r| !r.is_short()));
        prop_assert_eq!(merged.voltage_sources().len(), 1);
        prop_assert_eq!(merged.current_loads().len(), 1);
        prop_assert_eq!(map.len(), net.node_count());
        // Every mapped id is in range.
        for id in &map {
            prop_assert!(id.0 < merged.node_count());
        }
        // Endpoints of any short map to the same merged node.
        for r in net.resistors() {
            if r.is_short() {
                prop_assert_eq!(map[r.a.0], map[r.b.0]);
            }
        }
    }

    /// Union-find component count equals the number of distinct roots.
    #[test]
    fn union_find_component_count(
        unions in proptest::collection::vec((0usize..15, 0usize..15), 0..30),
    ) {
        let mut uf = UnionFind::new(15);
        for (a, b) in unions {
            uf.union(a, b);
        }
        let labels = uf.dense_labels();
        let distinct = {
            let mut l = labels.clone();
            l.sort_unstable();
            l.dedup();
            l.len()
        };
        prop_assert_eq!(distinct, uf.component_count());
    }

    /// Generated grids always have: every load on an existing node,
    /// sources at Vdd, stats consistent with the element lists, and
    /// segment resistances equal to rho * l / w.
    #[test]
    fn generated_grid_invariants(v in 2usize..8, h in 2usize..8, seed in 0u64..20) {
        let die_w = v as f64 * 50.0;
        let die_h = h as f64 * 50.0;
        let spec = GridSpec {
            die_width: die_w,
            die_height: die_h,
            v_straps: v,
            h_straps: h,
            ..GridSpec::default()
        };
        let fp = ppdl_floorplan::FloorplanGenerator::new(ppdl_floorplan::GeneratorConfig {
            die_width: die_w,
            die_height: die_h,
            blocks: 4,
            ..ppdl_floorplan::GeneratorConfig::default()
        })
        .generate(seed)
        .unwrap();
        let b = SyntheticBenchmark::generate("p", spec.clone(), fp).unwrap();
        let net = b.network();
        let s = net.stats();
        prop_assert_eq!(s.nodes, 2 * v * h);
        prop_assert_eq!(s.resistors, v * (h - 1) + h * (v - 1) + v * h);
        prop_assert!(net.voltage_sources().iter().all(|src| src.volts == spec.vdd));
        for seg in b.segments() {
            let strap = &b.straps()[seg.strap];
            let rho = spec.sheet_resistance(strap.orientation);
            let expect = rho * seg.length / strap.width;
            let got = net.resistors()[seg.resistor].ohms;
            prop_assert!((got - expect).abs() < 1e-9);
        }
    }
}

//! Physics-invariant tests for the static analysis engine: Kirchhoff's
//! current law must hold at every node of any solved grid, and the total
//! current delivered by the supplies must equal the total load current.

use ppdl_analysis::{AnalysisOptions, PreconditionerKind, StaticAnalysis};
use ppdl_floorplan::{Floorplan, FunctionalBlock};
use ppdl_netlist::{GridSpec, NodeId, SyntheticBenchmark};
use proptest::prelude::*;

fn build(v: usize, h: usize, current: f64, seed_blocks: usize) -> SyntheticBenchmark {
    let die_w = v as f64 * 50.0;
    let die_h = h as f64 * 50.0;
    let spec = GridSpec {
        die_width: die_w,
        die_height: die_h,
        v_straps: v,
        h_straps: h,
        ..GridSpec::default()
    };
    let mut fp = Floorplan::new(die_w, die_h).unwrap();
    // A few non-overlapping blocks in a diagonal arrangement.
    let n = seed_blocks.clamp(1, 3);
    for k in 0..n {
        let side = die_w.min(die_h) / (n as f64 + 1.0);
        let x = k as f64 * side;
        let y = k as f64 * side;
        fp.add_block(
            FunctionalBlock::new(format!("b{k}"), x, y, side * 0.9, side * 0.9, current).unwrap(),
        )
        .unwrap();
    }
    SyntheticBenchmark::generate("kcl", spec, fp).unwrap()
}

/// Net current flowing *out* of `node` through resistors.
fn kcl_residual(
    bench: &SyntheticBenchmark,
    report: &ppdl_analysis::IrDropReport,
    node: NodeId,
) -> f64 {
    let net = bench.network();
    let mut out = 0.0;
    for (idx, r) in net.resistors().iter().enumerate() {
        if r.is_short() {
            continue;
        }
        let i = report.branch_current(net, idx).unwrap();
        if r.a == node {
            out += i;
        } else if r.b == node {
            out -= i;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// KCL at every load node: current out through wires equals minus
    /// the load draw; at unloaded free nodes it is zero.
    #[test]
    fn kcl_holds_at_every_free_node(
        v in 3usize..7,
        h in 3usize..7,
        current in 0.01_f64..0.5,
        blocks in 1usize..4,
    ) {
        let bench = build(v, h, current, blocks);
        let report = StaticAnalysis::new(AnalysisOptions {
            tolerance: 1e-12,
            ..AnalysisOptions::default()
        })
        .solve(bench.network())
        .unwrap();
        let net = bench.network();
        let mut load_at = vec![0.0; net.node_count()];
        for l in net.current_loads() {
            load_at[l.node.0] += l.amps;
        }
        let mut fixed = vec![false; net.node_count()];
        for s in net.voltage_sources() {
            fixed[s.node.0] = true;
        }
        for i in 0..net.node_count() {
            if fixed[i] || net.node_names()[i].is_ground() {
                continue;
            }
            let residual = kcl_residual(&bench, &report, NodeId(i)) + load_at[i];
            prop_assert!(
                residual.abs() < 1e-6,
                "KCL violated at node {} by {:.3e}",
                i,
                residual
            );
        }
    }

    /// Global conservation: supplies deliver exactly the total load.
    #[test]
    fn supplies_deliver_total_load(
        v in 3usize..7,
        h in 3usize..7,
        current in 0.01_f64..0.5,
    ) {
        let bench = build(v, h, current, 2);
        let report = StaticAnalysis::new(AnalysisOptions {
            tolerance: 1e-12,
            ..AnalysisOptions::default()
        })
        .solve(bench.network())
        .unwrap();
        let net = bench.network();
        let mut fixed = vec![false; net.node_count()];
        for s in net.voltage_sources() {
            fixed[s.node.0] = true;
        }
        // Current out of all supply nodes through wires.
        let mut delivered = 0.0;
        for (idx, r) in net.resistors().iter().enumerate() {
            if r.is_short() {
                continue;
            }
            let i = report.branch_current(net, idx).unwrap();
            match (fixed[r.a.0], fixed[r.b.0]) {
                (true, false) => delivered += i,
                (false, true) => delivered -= i,
                _ => {}
            }
        }
        let total_load = net.total_load_current();
        prop_assert!(
            (delivered - total_load).abs() < 1e-6 * total_load.max(1.0),
            "delivered {delivered}, load {total_load}"
        );
    }

    /// Drop monotonicity: scaling every load current by a factor scales
    /// every node drop by the same factor (the system is linear).
    #[test]
    fn drop_is_linear_in_loads(
        v in 3usize..6,
        h in 3usize..6,
        factor in 1.5_f64..4.0,
    ) {
        let bench = build(v, h, 0.1, 2);
        let analysis = StaticAnalysis::new(AnalysisOptions {
            tolerance: 1e-12,
            preconditioner: PreconditionerKind::Ic0,
            max_iterations: 0,
        });
        let base = analysis.solve(bench.network()).unwrap();

        let mut scaled = bench.clone();
        let loads: Vec<f64> = scaled
            .network()
            .current_loads()
            .iter()
            .map(|l| l.amps * factor)
            .collect();
        for (i, amps) in loads.iter().enumerate() {
            scaled.network_mut().set_load_current(i, *amps).unwrap();
        }
        let rep2 = analysis.solve(scaled.network()).unwrap();
        let (node, d1) = base.worst_drop().unwrap();
        let d2 = rep2.drop_at(node);
        prop_assert!(
            (d2 - factor * d1).abs() < 1e-7 * d1.abs().max(1e-9) * factor,
            "drop {d1} scaled to {d2}, expected {}",
            factor * d1
        );
    }
}

//! Static power-grid analysis: IR drop and electromigration.
//!
//! This crate is the "conventional approach" engine of the paper: given
//! a power-grid netlist it assembles the modified-nodal-analysis (MNA)
//! conductance system, solves it with preconditioned conjugate
//! gradients, and reports per-node IR drop, per-branch currents,
//! electromigration current densities (eq. 4), and rasterised IR-drop
//! maps (the Fig. 8 plots).
//!
//! The flow is:
//!
//! 1. [`StaticAnalysis::solve`] merges via shorts, classifies nodes
//!    (ground / supply-fixed / free), stamps conductances, and solves
//!    `G v = i` for the free-node voltages.
//! 2. [`IrDropReport`] exposes voltages, drops, branch currents, and
//!    the worst-case drop (the Table III number).
//! 3. [`EmChecker`] computes per-segment current densities `I/w` and
//!    flags violations of `J_max`.
//! 4. [`IrDropMap`] rasterises drops onto a fixed grid for plotting.
//!
//! # Example
//!
//! ```
//! use ppdl_analysis::StaticAnalysis;
//! use ppdl_netlist::parse_spice;
//!
//! // A 3-node chain fed from one end, loaded at the other.
//! let net = parse_spice("\
//! R1 n1_0_0 n1_0_100 1.0
//! R2 n1_0_100 n1_0_200 1.0
//! V0 n1_0_0 0 1.8
//! i0 n1_0_200 0 0.01
//! ").unwrap();
//! let report = StaticAnalysis::default().solve(&net).unwrap();
//! let (_, worst) = report.worst_drop().unwrap();
//! assert!((worst - 0.02).abs() < 1e-8); // 10 mA through 2 ohms
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod em;
mod error;
mod irmap;
mod mna;
mod vectored;

pub use em::{EmChecker, EmReport, EmViolation};
pub use error::AnalysisError;
pub use irmap::IrDropMap;
pub use mna::{AnalysisOptions, IrDropReport, PreconditionerKind, StaticAnalysis};
pub use vectored::{CurrentTrace, VectoredAnalysis, VectoredReport};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, AnalysisError>;

use ppdl_netlist::{NodeId, PowerGridNetwork, UnionFind};
use ppdl_solver::{CgOptions, ConjugateGradient, PrecondKind, TripletMatrix};

use crate::AnalysisError;

/// Which preconditioner the CG solve uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreconditionerKind {
    /// No preconditioning (plain CG).
    None,
    /// Diagonal (Jacobi) preconditioner.
    Jacobi,
    /// Block-Jacobi with per-block dense Cholesky — between Jacobi and
    /// IC(0) in strength, embarrassingly local to apply.
    BlockJacobi,
    /// Zero-fill incomplete Cholesky — the default; fastest on grids.
    #[default]
    Ic0,
    /// No CG at all: a sparse direct Cholesky factorization. Exact,
    /// but fill-in limits it to small and medium grids.
    DirectCholesky,
}

impl PreconditionerKind {
    /// The solver-level [`PrecondKind`] this analysis choice maps to,
    /// or `None` for [`PreconditionerKind::DirectCholesky`], which
    /// bypasses CG entirely.
    #[must_use]
    pub fn cg_kind(self) -> Option<PrecondKind> {
        match self {
            Self::None => Some(PrecondKind::Identity),
            Self::Jacobi => Some(PrecondKind::Jacobi),
            Self::BlockJacobi => Some(PrecondKind::BlockJacobi),
            Self::Ic0 => Some(PrecondKind::Ic0),
            Self::DirectCholesky => None,
        }
    }

    /// The canonical CLI spelling, the inverse of [`parse`](Self::parse).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::None => "none",
            Self::Jacobi => "jacobi",
            Self::BlockJacobi => "block-jacobi",
            Self::Ic0 => "ic0",
            Self::DirectCholesky => "direct-cholesky",
        }
    }

    /// Parses a kind from its CLI spelling (the [`PrecondKind`] names
    /// plus `direct`/`direct-cholesky`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "direct" | "direct-cholesky" | "direct_cholesky" => Some(Self::DirectCholesky),
            _ => PrecondKind::parse(s).map(|k| match k {
                PrecondKind::Identity => Self::None,
                PrecondKind::Jacobi => Self::Jacobi,
                PrecondKind::BlockJacobi => Self::BlockJacobi,
                PrecondKind::Ic0 => Self::Ic0,
            }),
        }
    }
}

/// Options for a static IR-drop analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisOptions {
    /// Relative residual tolerance of the CG solve.
    pub tolerance: f64,
    /// Iteration cap (`0` = automatic).
    pub max_iterations: usize,
    /// Preconditioner choice.
    pub preconditioner: PreconditionerKind,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-8,
            max_iterations: 0,
            preconditioner: PreconditionerKind::Ic0,
        }
    }
}

/// Static (DC) power-grid analyzer.
///
/// Performs the "early vectorless / vectored power grid analysis" step
/// of the conventional flow (Fig. 1 of the paper): node classification,
/// conductance stamping with Dirichlet elimination of the supply nodes,
/// and a preconditioned CG solve.
#[derive(Debug, Clone, Default)]
pub struct StaticAnalysis {
    options: AnalysisOptions,
}

impl StaticAnalysis {
    /// Creates an analyzer with the given options.
    #[must_use]
    pub fn new(options: AnalysisOptions) -> Self {
        Self { options }
    }

    /// The options in use.
    #[must_use]
    pub fn options(&self) -> &AnalysisOptions {
        &self.options
    }

    /// Solves the grid and returns the IR-drop report.
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::NoSupply`] — no voltage source in the deck.
    /// * [`AnalysisError::FloatingNodes`] — nodes without a path to a
    ///   supply.
    /// * [`AnalysisError::Solver`] — the CG solve failed.
    pub fn solve(&self, network: &PowerGridNetwork) -> crate::Result<IrDropReport> {
        if network.voltage_sources().is_empty() {
            return Err(AnalysisError::NoSupply);
        }
        let (merged, node_map) = network.merged_shorts();
        let n = merged.node_count();

        // Classify merged nodes.
        const FREE: usize = usize::MAX;
        const GROUND: usize = usize::MAX - 1;
        // fixed_voltage[i] = Some(v) for supply-pinned nodes.
        let mut fixed: Vec<Option<f64>> = vec![None; n];
        for s in merged.voltage_sources() {
            fixed[s.node.0] = Some(s.volts);
        }
        for (i, name) in merged.node_names().iter().enumerate() {
            if name.is_ground() {
                fixed[i] = Some(0.0);
            }
        }

        // Check connectivity: every free node must reach a fixed node
        // through resistors.
        let mut uf = UnionFind::new(n);
        for r in merged.resistors() {
            uf.union(r.a.0, r.b.0);
        }
        let mut component_has_fixed = vec![false; n];
        for (i, fv) in fixed.iter().enumerate() {
            if fv.is_some() {
                let root = uf.find(i);
                component_has_fixed[root] = true;
            }
        }
        let mut floating = 0usize;
        let mut example = String::new();
        for i in 0..n {
            if fixed[i].is_none() && !component_has_fixed[uf.find(i)] {
                if floating == 0 {
                    example = merged.node_name(NodeId(i)).to_string();
                }
                floating += 1;
            }
        }
        if floating > 0 {
            return Err(AnalysisError::FloatingNodes {
                count: floating,
                example,
            });
        }

        // Index the free unknowns.
        let mut unknown_index = vec![FREE; n];
        let mut free_nodes = Vec::new();
        for (i, fv) in fixed.iter().enumerate() {
            if fv.is_none() {
                unknown_index[i] = free_nodes.len();
                free_nodes.push(i);
            } else {
                unknown_index[i] = GROUND; // marker: not an unknown
            }
        }
        let m = free_nodes.len();

        // Stamp.
        let mut g = TripletMatrix::with_capacity(m, m, 4 * merged.resistors().len());
        let mut rhs = vec![0.0; m];
        for r in merged.resistors() {
            let cond = r.conductance();
            let (a, b) = (r.a.0, r.b.0);
            match (fixed[a], fixed[b]) {
                (None, None) => {
                    g.stamp_conductance(unknown_index[a], unknown_index[b], cond);
                }
                (None, Some(vb)) => {
                    let ia = unknown_index[a];
                    g.stamp_grounded_conductance(ia, cond);
                    rhs[ia] += cond * vb;
                }
                (Some(va), None) => {
                    let ib = unknown_index[b];
                    g.stamp_grounded_conductance(ib, cond);
                    rhs[ib] += cond * va;
                }
                (Some(_), Some(_)) => {}
            }
        }
        for l in merged.current_loads() {
            if fixed[l.node.0].is_none() {
                rhs[unknown_index[l.node.0]] -= l.amps;
            }
        }

        let matrix = g.to_csr();
        let (solution, iterations) = if m == 0 {
            (None, 0)
        } else {
            match self.options.preconditioner.cg_kind() {
                Some(kind) => {
                    let cg = ConjugateGradient::new(
                        CgOptions::builder()
                            .tolerance(self.options.tolerance)
                            .max_iterations(self.options.max_iterations)
                            .precond(kind)
                            .build(),
                    );
                    let s = cg.solve(&matrix, &rhs)?;
                    let it = s.iterations;
                    (Some(s.x), it)
                }
                None => {
                    let x = ppdl_solver::SparseCholesky::factor(&matrix)?.solve(&rhs)?;
                    (Some(x), 0)
                }
            }
        };

        // Scatter back to merged-node voltages, then to original nodes.
        let mut merged_v = vec![0.0; n];
        for (i, fv) in fixed.iter().enumerate() {
            if let Some(v) = fv {
                merged_v[i] = *v;
            }
        }
        if let Some(x) = solution {
            for (k, &node) in free_nodes.iter().enumerate() {
                merged_v[node] = x[k];
            }
        }
        let voltages: Vec<f64> = node_map.iter().map(|&mid| merged_v[mid.0]).collect();
        // Re-checked rather than expect()ed: `solve` is on the serve
        // hot path, where a malformed deck must become a typed wire
        // error, never a process abort (robustness/unwrap-in-lib).
        let vdd = network.supply_voltage().ok_or(AnalysisError::NoSupply)?;
        let is_ground: Vec<bool> = network
            .node_names()
            .iter()
            .map(ppdl_netlist::NodeName::is_ground)
            .collect();

        Ok(IrDropReport {
            vdd,
            voltages,
            is_ground,
            unknowns: m,
            iterations,
        })
    }
}

/// The result of a static IR-drop analysis, indexed by the *original*
/// network's node ids.
#[derive(Debug, Clone)]
pub struct IrDropReport {
    vdd: f64,
    voltages: Vec<f64>,
    is_ground: Vec<bool>,
    unknowns: usize,
    iterations: usize,
}

impl IrDropReport {
    /// Reassembles a report from its parts — the artifact-cache decode
    /// path, where a previously computed solve is restored from disk.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Undefined`] when the voltage and
    /// ground-mask vectors disagree in length.
    pub fn from_parts(
        vdd: f64,
        voltages: Vec<f64>,
        is_ground: Vec<bool>,
        unknowns: usize,
        iterations: usize,
    ) -> crate::Result<Self> {
        if voltages.len() != is_ground.len() {
            return Err(AnalysisError::Undefined {
                detail: format!(
                    "report with {} voltages but {} ground flags",
                    voltages.len(),
                    is_ground.len()
                ),
            });
        }
        Ok(Self {
            vdd,
            voltages,
            is_ground,
            unknowns,
            iterations,
        })
    }

    /// The supply voltage used as the drop reference.
    #[must_use]
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Which nodes belong to the return (ground) net, indexed like
    /// [`voltages`](Self::voltages).
    #[must_use]
    pub fn ground_mask(&self) -> &[bool] {
        &self.is_ground
    }

    /// Number of free unknowns the solver handled.
    #[must_use]
    pub fn unknowns(&self) -> usize {
        self.unknowns
    }

    /// CG iterations taken.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Voltage at an original node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.voltages[node.0]
    }

    /// All node voltages, indexed by `NodeId.0`.
    #[must_use]
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// IR drop at a node: `Vdd − v`. Ground nodes return `0.0` (they
    /// belong to the return net, not the supply net under analysis).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn drop_at(&self, node: NodeId) -> f64 {
        if self.is_ground[node.0] {
            0.0
        } else {
            self.vdd - self.voltages[node.0]
        }
    }

    /// The worst-case IR drop and the node where it occurs — the
    /// Table III quantity. `None` if the network has no non-ground node.
    #[must_use]
    pub fn worst_drop(&self) -> Option<(NodeId, f64)> {
        let mut best: Option<(NodeId, f64)> = None;
        for i in 0..self.voltages.len() {
            if self.is_ground[i] {
                continue;
            }
            let d = self.vdd - self.voltages[i];
            if best.map_or(true, |(_, bd)| d > bd) {
                best = Some((NodeId(i), d));
            }
        }
        best
    }

    /// The `q`-quantile of the drop distribution over non-ground nodes
    /// (`q = 0.5` is the median, `q = 0.99` the p99 hot tail). Returns
    /// `None` for an empty report or `q` outside `[0, 1]`.
    #[must_use]
    pub fn drop_quantile(&self, q: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&q) {
            return None;
        }
        let mut drops: Vec<f64> = (0..self.voltages.len())
            .filter(|&i| !self.is_ground[i])
            .map(|i| self.vdd - self.voltages[i])
            .collect();
        if drops.is_empty() {
            return None;
        }
        // total_cmp: a NaN from a degenerate solve sorts last instead
        // of panicking the caller (robustness/unwrap-in-lib).
        drops.sort_by(f64::total_cmp);
        let idx = ((drops.len() - 1) as f64 * q).round() as usize;
        Some(drops[idx])
    }

    /// Mean IR drop over non-ground nodes (`0.0` for an empty report).
    #[must_use]
    pub fn mean_drop(&self) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for i in 0..self.voltages.len() {
            if !self.is_ground[i] {
                sum += self.vdd - self.voltages[i];
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Current through a resistor of the original network, flowing from
    /// terminal `a` to terminal `b` (signed).
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Undefined`] for zero-ohm shorts, whose
    /// individual branch current is not recoverable after merging.
    pub fn branch_current(
        &self,
        network: &PowerGridNetwork,
        resistor: usize,
    ) -> crate::Result<f64> {
        let r = network
            .resistors()
            .get(resistor)
            .ok_or_else(|| AnalysisError::Undefined {
                detail: format!("resistor index {resistor} out of range"),
            })?;
        if r.is_short() {
            return Err(AnalysisError::Undefined {
                detail: format!("branch current of zero-ohm short '{}'", r.name),
            });
        }
        Ok((self.voltages[r.a.0] - self.voltages[r.b.0]) / r.ohms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdl_netlist::parse_spice;

    #[test]
    fn chain_voltages_exact() {
        // Vdd - 1 ohm - n1 - 1 ohm - n2, 10 mA load at n2.
        let net = parse_spice(
            "R1 n1_0_0 n1_0_1 1.0\nR2 n1_0_1 n1_0_2 1.0\nV0 n1_0_0 0 1.8\ni0 n1_0_2 0 0.01\n",
        )
        .unwrap();
        let rep = StaticAnalysis::default().solve(&net).unwrap();
        let a = net.node_id(&"n1_0_0".parse().unwrap()).unwrap();
        let b = net.node_id(&"n1_0_1".parse().unwrap()).unwrap();
        let c = net.node_id(&"n1_0_2".parse().unwrap()).unwrap();
        assert!((rep.voltage(a) - 1.8).abs() < 1e-12);
        assert!((rep.voltage(b) - 1.79).abs() < 1e-8);
        assert!((rep.voltage(c) - 1.78).abs() < 1e-8);
        assert!((rep.drop_at(c) - 0.02).abs() < 1e-8);
        let (worst_node, worst) = rep.worst_drop().unwrap();
        assert_eq!(worst_node, c);
        assert!((worst - 0.02).abs() < 1e-8);
    }

    #[test]
    fn branch_current_direction() {
        let net = parse_spice("R1 n1_0_0 n1_0_1 2.0\nV0 n1_0_0 0 1.8\ni0 n1_0_1 0 0.05\n").unwrap();
        let rep = StaticAnalysis::default().solve(&net).unwrap();
        // Current flows from the supply (a) toward the load (b): positive.
        let i = rep.branch_current(&net, 0).unwrap();
        assert!((i - 0.05).abs() < 1e-9);
    }

    #[test]
    fn short_merging_transparent() {
        // Same chain but with a zero-ohm via in the middle.
        let net = parse_spice(
            "R1 n1_0_0 n1_0_1 1.0\nRv n1_0_1 n2_0_1 0\nR2 n2_0_1 n2_0_2 1.0\nV0 n1_0_0 0 1.8\ni0 n2_0_2 0 0.01\n",
        )
        .unwrap();
        let rep = StaticAnalysis::default().solve(&net).unwrap();
        let mid_lower = net.node_id(&"n1_0_1".parse().unwrap()).unwrap();
        let mid_upper = net.node_id(&"n2_0_1".parse().unwrap()).unwrap();
        assert_eq!(rep.voltage(mid_lower), rep.voltage(mid_upper));
        assert!(rep.branch_current(&net, 1).is_err()); // the short
        assert!((rep.worst_drop().unwrap().1 - 0.02).abs() < 1e-8);
    }

    #[test]
    fn no_supply_rejected() {
        let net = parse_spice("R1 n1_0_0 n1_0_1 1.0\ni0 n1_0_1 0 0.01\n").unwrap();
        assert!(matches!(
            StaticAnalysis::default().solve(&net),
            Err(AnalysisError::NoSupply)
        ));
    }

    #[test]
    fn floating_nodes_detected() {
        let net =
            parse_spice("R1 n1_0_0 n1_0_1 1.0\nR2 n1_5_5 n1_5_6 1.0\nV0 n1_0_0 0 1.8\n").unwrap();
        match StaticAnalysis::default().solve(&net) {
            Err(AnalysisError::FloatingNodes { count, .. }) => assert_eq!(count, 2),
            other => panic!("expected floating nodes, got {other:?}"),
        }
    }

    #[test]
    fn load_on_supply_node_is_absorbed() {
        let net = parse_spice("R1 n1_0_0 n1_0_1 1.0\nV0 n1_0_0 0 1.8\ni0 n1_0_0 0 0.5\n").unwrap();
        let rep = StaticAnalysis::default().solve(&net).unwrap();
        // The load sits on the pinned node; the free node sees no current.
        let b = net.node_id(&"n1_0_1".parse().unwrap()).unwrap();
        assert!((rep.voltage(b) - 1.8).abs() < 1e-10);
    }

    #[test]
    fn preconditioners_agree_on_grid() {
        use ppdl_netlist::{GridSpec, SyntheticBenchmark};
        let spec = GridSpec {
            die_width: 300.0,
            die_height: 300.0,
            v_straps: 6,
            h_straps: 6,
            ..GridSpec::default()
        };
        let fp = ppdl_floorplan_fixture(300.0);
        let b = SyntheticBenchmark::generate("t", spec, fp).unwrap();
        let mut results = Vec::new();
        for pk in [
            PreconditionerKind::None,
            PreconditionerKind::Jacobi,
            PreconditionerKind::BlockJacobi,
            PreconditionerKind::Ic0,
            PreconditionerKind::DirectCholesky,
        ] {
            let rep = StaticAnalysis::new(AnalysisOptions {
                preconditioner: pk,
                tolerance: 1e-11,
                max_iterations: 0,
            })
            .solve(b.network())
            .unwrap();
            results.push(rep.worst_drop().unwrap().1);
        }
        for (i, r) in results.iter().enumerate().skip(1) {
            assert!((results[0] - r).abs() < 1e-9, "kind {i}");
        }
    }

    #[test]
    fn preconditioner_kind_parses_cli_spellings() {
        assert_eq!(
            PreconditionerKind::parse("none"),
            Some(PreconditionerKind::None)
        );
        assert_eq!(
            PreconditionerKind::parse("jacobi"),
            Some(PreconditionerKind::Jacobi)
        );
        assert_eq!(
            PreconditionerKind::parse("block-jacobi"),
            Some(PreconditionerKind::BlockJacobi)
        );
        assert_eq!(
            PreconditionerKind::parse("IC0"),
            Some(PreconditionerKind::Ic0)
        );
        assert_eq!(
            PreconditionerKind::parse("direct"),
            Some(PreconditionerKind::DirectCholesky)
        );
        assert_eq!(PreconditionerKind::parse("amg"), None);
        assert_eq!(PreconditionerKind::DirectCholesky.cg_kind(), None);
        assert_eq!(
            PreconditionerKind::BlockJacobi.cg_kind(),
            Some(ppdl_solver::PrecondKind::BlockJacobi)
        );
    }

    #[test]
    fn all_nodes_fixed_is_fine() {
        let net = parse_spice("R1 n1_0_0 n1_0_1 1.0\nV0 n1_0_0 0 1.8\nV1 n1_0_1 0 1.8\n").unwrap();
        let rep = StaticAnalysis::default().solve(&net).unwrap();
        assert_eq!(rep.unknowns(), 0);
        assert!((rep.worst_drop().unwrap().1).abs() < 1e-12);
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let net = parse_spice(
            "R1 n1_0_0 n1_0_1 1.0\nR2 n1_0_1 n1_0_2 1.0\nV0 n1_0_0 0 1.8\ni0 n1_0_2 0 0.01\n",
        )
        .unwrap();
        let rep = StaticAnalysis::default().solve(&net).unwrap();
        let p0 = rep.drop_quantile(0.0).unwrap();
        let p50 = rep.drop_quantile(0.5).unwrap();
        let p100 = rep.drop_quantile(1.0).unwrap();
        assert!(p0 <= p50 && p50 <= p100);
        assert!((p100 - rep.worst_drop().unwrap().1).abs() < 1e-15);
        assert!((p0 - 0.0).abs() < 1e-12); // the pinned node itself
        assert!(rep.drop_quantile(-0.1).is_none());
        assert!(rep.drop_quantile(1.1).is_none());
    }

    #[test]
    fn mean_drop_between_zero_and_worst() {
        let net = parse_spice(
            "R1 n1_0_0 n1_0_1 1.0\nR2 n1_0_1 n1_0_2 1.0\nV0 n1_0_0 0 1.8\ni0 n1_0_2 0 0.01\n",
        )
        .unwrap();
        let rep = StaticAnalysis::default().solve(&net).unwrap();
        let worst = rep.worst_drop().unwrap().1;
        assert!(rep.mean_drop() > 0.0);
        assert!(rep.mean_drop() <= worst);
    }

    /// A plain uniform floorplan for grid tests.
    fn ppdl_floorplan_fixture(die: f64) -> ppdl_floorplan::Floorplan {
        let mut fp = ppdl_floorplan::Floorplan::new(die, die).unwrap();
        fp.add_block(
            ppdl_floorplan::FunctionalBlock::new(
                "b",
                die * 0.1,
                die * 0.1,
                die * 0.8,
                die * 0.8,
                0.2,
            )
            .unwrap(),
        )
        .unwrap();
        fp
    }
}

//! Vectored power-grid analysis (the second analysis box of Fig. 1).
//!
//! After placement and routing, the conventional flow re-verifies the
//! grid against *true current traces*: a sequence of per-load current
//! vectors captured from simulation. Each step is an independent static
//! solve (same conductance matrix, different right-hand side), so the
//! steps run in parallel across the thread pool configured through
//! [`ppdl_solver::parallel`]. Every step solves cold from the same
//! initial state regardless of how the steps are scheduled, which keeps
//! the report bitwise identical at any thread count.

use ppdl_netlist::{NodeId, PowerGridNetwork};

use crate::{AnalysisError, AnalysisOptions, IrDropReport, StaticAnalysis};

/// A sequence of load scalings — trace step `t` multiplies load `i` by
/// `steps[t][i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentTrace {
    steps: Vec<Vec<f64>>,
}

impl CurrentTrace {
    /// Builds a trace, validating that every step covers every load
    /// with a finite non-negative factor.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Undefined`] if the trace is empty,
    /// ragged, or contains an invalid factor.
    pub fn new(steps: Vec<Vec<f64>>, load_count: usize) -> crate::Result<Self> {
        if steps.is_empty() {
            return Err(AnalysisError::Undefined {
                detail: "a current trace needs at least one step".into(),
            });
        }
        for (t, step) in steps.iter().enumerate() {
            if step.len() != load_count {
                return Err(AnalysisError::Undefined {
                    detail: format!(
                        "trace step {t} has {} factors for {load_count} loads",
                        step.len()
                    ),
                });
            }
            if let Some(f) = step.iter().find(|f| !(f.is_finite() && **f >= 0.0)) {
                return Err(AnalysisError::Undefined {
                    detail: format!("trace step {t} has invalid factor {f}"),
                });
            }
        }
        Ok(Self { steps })
    }

    /// A constant-activity trace (every factor `1.0`) of `len` steps.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Undefined`] if `len` is zero.
    pub fn constant(len: usize, load_count: usize) -> crate::Result<Self> {
        Self::new(vec![vec![1.0; load_count]; len], load_count)
    }

    /// Number of steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the trace has no steps (never true once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The factors of one step.
    #[must_use]
    pub fn step(&self, t: usize) -> &[f64] {
        &self.steps[t]
    }
}

/// Result of a vectored analysis: per-step worst drops and the overall
/// worst case across the trace.
#[derive(Debug, Clone)]
pub struct VectoredReport {
    /// Worst drop of each trace step (volts).
    pub step_worst: Vec<f64>,
    /// The trace step at which the overall worst drop occurred.
    pub worst_step: usize,
    /// The node at which it occurred.
    pub worst_node: NodeId,
    /// The overall worst drop (volts).
    pub worst: f64,
    /// The full report of the worst step.
    pub worst_report: IrDropReport,
}

/// Trace-driven analysis with warm-started solves.
///
/// # Example
///
/// ```
/// use ppdl_analysis::{CurrentTrace, VectoredAnalysis};
/// use ppdl_netlist::parse_spice;
///
/// let net = parse_spice("\
/// R1 n1_0_0 n1_0_100 1.0
/// V0 n1_0_0 0 1.8
/// i0 n1_0_100 0 0.01
/// ").unwrap();
/// // Activity ramps 50% -> 100% -> 150%.
/// let trace = CurrentTrace::new(vec![vec![0.5], vec![1.0], vec![1.5]], 1).unwrap();
/// let report = VectoredAnalysis::default().run(&net, &trace).unwrap();
/// assert_eq!(report.worst_step, 2);
/// assert!((report.worst - 0.015).abs() < 1e-8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VectoredAnalysis {
    options: AnalysisOptions,
}

impl VectoredAnalysis {
    /// Creates a vectored analyzer.
    #[must_use]
    pub fn new(options: AnalysisOptions) -> Self {
        Self { options }
    }

    /// Runs every trace step against the grid, returning the per-step
    /// and overall worst-case drops.
    ///
    /// # Errors
    ///
    /// Propagates static-analysis errors, and
    /// [`AnalysisError::Undefined`] for a trace/load mismatch.
    pub fn run(
        &self,
        network: &PowerGridNetwork,
        trace: &CurrentTrace,
    ) -> crate::Result<VectoredReport> {
        let load_count = network.current_loads().len();
        if trace.steps.first().map(Vec::len) != Some(load_count) {
            return Err(AnalysisError::Undefined {
                detail: format!(
                    "trace built for {} loads, network has {load_count}",
                    trace.steps.first().map_or(0, Vec::len)
                ),
            });
        }
        let analyzer = StaticAnalysis::new(self.options.clone());
        let base: Vec<f64> = network.current_loads().iter().map(|l| l.amps).collect();

        // Each step is an independent cold-start solve on a private copy
        // of the grid, so steps parallelize without changing any result.
        let steps: Vec<usize> = (0..trace.len()).collect();
        // ppdl-lint: allow(determinism/tainted-parallel) -- over-approximated edge: the untyped `.build()` in mna.rs resolves to MlpBuilder::build by name; StaticAnalysis::solve builds no network and the only RNG on that chain is seeded weight init
        let solved = ppdl_solver::parallel::par_map_vec(&steps, |_, &t| {
            let mut working = network.clone();
            for (i, (b, f)) in base.iter().zip(trace.step(t)).enumerate() {
                // Factors were validated in `CurrentTrace::new`, but a
                // typed error beats a worker-thread panic if that
                // invariant ever slips (robustness/unwrap-in-lib).
                working
                    .set_load_current(i, b * f)
                    .map_err(|e| AnalysisError::Undefined {
                        detail: format!("trace step {t} load {i}: {e}"),
                    })?;
            }
            let report = analyzer.solve(&working)?;
            let (node, worst) = report
                .worst_drop()
                .ok_or_else(|| AnalysisError::Undefined {
                    detail: "grid has no non-ground node".into(),
                })?;
            Ok::<_, AnalysisError>((node, worst, report))
        });

        // Reduce in step order: the first strictly-worst step wins, the
        // same tie-break the sequential loop applied.
        let mut step_worst = Vec::with_capacity(trace.len());
        let mut best: Option<(usize, NodeId, f64, IrDropReport)> = None;
        for (t, res) in solved.into_iter().enumerate() {
            let (node, worst, report) = res?;
            step_worst.push(worst);
            if best.as_ref().map_or(true, |(_, _, w, _)| worst > *w) {
                best = Some((t, node, worst, report));
            }
        }
        // `CurrentTrace::new` rejects empty traces, so `best` is always
        // populated; a typed error keeps the invariant checkable
        // without a panic path (robustness/unwrap-in-lib).
        let (worst_step, worst_node, worst, worst_report) =
            best.ok_or_else(|| AnalysisError::Undefined {
                detail: "current trace has no steps".into(),
            })?;
        Ok(VectoredReport {
            step_worst,
            worst_step,
            worst_node,
            worst,
            worst_report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdl_netlist::parse_spice;

    fn net() -> PowerGridNetwork {
        parse_spice(
            "R1 n1_0_0 n1_0_1 1.0\nR2 n1_0_1 n1_0_2 1.0\nV0 n1_0_0 0 1.8\ni0 n1_0_2 0 0.01\ni1 n1_0_1 0 0.02\n",
        )
        .unwrap()
    }

    #[test]
    fn trace_validation() {
        assert!(CurrentTrace::new(vec![], 2).is_err());
        assert!(CurrentTrace::new(vec![vec![1.0]], 2).is_err());
        assert!(CurrentTrace::new(vec![vec![1.0, -1.0]], 2).is_err());
        assert!(CurrentTrace::new(vec![vec![1.0, f64::NAN]], 2).is_err());
        let t = CurrentTrace::constant(3, 2).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.step(1), &[1.0, 1.0]);
    }

    #[test]
    fn constant_trace_matches_static() {
        let n = net();
        let trace = CurrentTrace::constant(4, 2).unwrap();
        let vectored = VectoredAnalysis::default().run(&n, &trace).unwrap();
        let static_worst = StaticAnalysis::default()
            .solve(&n)
            .unwrap()
            .worst_drop()
            .unwrap()
            .1;
        for w in &vectored.step_worst {
            assert!((w - static_worst).abs() < 1e-10);
        }
    }

    #[test]
    fn peak_step_identified() {
        let n = net();
        let trace =
            CurrentTrace::new(vec![vec![0.1, 0.1], vec![2.0, 2.0], vec![1.0, 1.0]], 2).unwrap();
        let rep = VectoredAnalysis::default().run(&n, &trace).unwrap();
        assert_eq!(rep.worst_step, 1);
        assert!(rep.step_worst[1] > rep.step_worst[0]);
        assert!(rep.step_worst[1] > rep.step_worst[2]);
        assert!((rep.worst - rep.step_worst[1]).abs() < 1e-15);
    }

    #[test]
    fn original_network_not_mutated() {
        let n = net();
        let before: Vec<f64> = n.current_loads().iter().map(|l| l.amps).collect();
        let trace = CurrentTrace::new(vec![vec![3.0, 3.0]], 2).unwrap();
        let _ = VectoredAnalysis::default().run(&n, &trace).unwrap();
        let after: Vec<f64> = n.current_loads().iter().map(|l| l.amps).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn mismatched_trace_rejected() {
        let n = net();
        let trace = CurrentTrace::new(vec![vec![1.0]], 1).unwrap();
        assert!(VectoredAnalysis::default().run(&n, &trace).is_err());
    }
}

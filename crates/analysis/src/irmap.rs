use ppdl_netlist::{NodeId, PowerGridNetwork};

use crate::IrDropReport;

/// A rasterised IR-drop map: the Fig. 8 plots of the paper.
///
/// Grid-node drops are binned onto a fixed `resolution × resolution`
/// raster over the die bounding box; empty cells are filled by
/// iterative neighbour averaging so the map is dense (the paper's maps
/// are interpolated the same way by matplotlib).
///
/// # Example
///
/// ```
/// use ppdl_analysis::{IrDropMap, StaticAnalysis};
/// use ppdl_netlist::{IbmPgPreset, SyntheticBenchmark};
///
/// let bench = SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg2, 0.002, 1).unwrap();
/// let report = StaticAnalysis::default().solve(bench.network()).unwrap();
/// let map = IrDropMap::from_report(bench.network(), &report, 20).unwrap();
/// assert_eq!(map.resolution(), 20);
/// assert!(map.max_mv() >= map.min_mv());
/// ```
#[derive(Debug, Clone)]
pub struct IrDropMap {
    resolution: usize,
    /// Drop values in millivolts, row-major, `cells[y * res + x]`.
    cells: Vec<f64>,
}

impl IrDropMap {
    /// Rasterises `report` over the die. Returns `None`-like error if
    /// the network has no coordinate-bearing nodes to place.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Undefined`](crate::AnalysisError) if no
    /// node carries grid coordinates or `resolution` is zero.
    pub fn from_report(
        network: &PowerGridNetwork,
        report: &IrDropReport,
        resolution: usize,
    ) -> crate::Result<Self> {
        let drops: Vec<f64> = (0..network.node_count())
            .map(|i| report.drop_at(NodeId(i)))
            .collect();
        Self::from_node_drops(network, &drops, resolution)
    }

    /// Rasterises arbitrary per-node drop values (in volts, indexed by
    /// `NodeId.0`; `NaN` entries are skipped). This is the constructor
    /// the DL flow uses for its *predicted* maps, where only a subset
    /// of nodes carries an estimate.
    ///
    /// # Errors
    ///
    /// Same conditions as [`from_report`](Self::from_report), plus a
    /// length check on `drops`.
    pub fn from_node_drops(
        network: &PowerGridNetwork,
        drops: &[f64],
        resolution: usize,
    ) -> crate::Result<Self> {
        if resolution == 0 {
            return Err(crate::AnalysisError::Undefined {
                detail: "map resolution must be at least 1".into(),
            });
        }
        if drops.len() != network.node_count() {
            return Err(crate::AnalysisError::Undefined {
                detail: format!(
                    "{} drop values for {} nodes",
                    drops.len(),
                    network.node_count()
                ),
            });
        }
        let ((min_x, min_y), (max_x, max_y)) =
            network
                .bounding_box()
                .ok_or_else(|| crate::AnalysisError::Undefined {
                    detail: "network has no coordinate-bearing nodes to map".into(),
                })?;
        let w = (max_x - min_x).max(1) as f64;
        let h = (max_y - min_y).max(1) as f64;
        let mut sums = vec![0.0; resolution * resolution];
        let mut counts = vec![0usize; resolution * resolution];
        for (i, name) in network.node_names().iter().enumerate() {
            if drops[i].is_nan() {
                continue;
            }
            let Some((x, y)) = name.coordinates() else {
                continue;
            };
            let cx = (((x - min_x) as f64 / w) * resolution as f64).min(resolution as f64 - 1.0)
                as usize;
            let cy = (((y - min_y) as f64 / h) * resolution as f64).min(resolution as f64 - 1.0)
                as usize;
            sums[cy * resolution + cx] += drops[i] * 1000.0;
            counts[cy * resolution + cx] += 1;
        }
        let mut cells = vec![f64::NAN; resolution * resolution];
        for i in 0..cells.len() {
            if counts[i] > 0 {
                cells[i] = sums[i] / counts[i] as f64;
            }
        }
        fill_holes(&mut cells, resolution);
        Ok(Self { resolution, cells })
    }

    /// Map resolution (cells per side).
    #[must_use]
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Drop in millivolts at raster cell `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    #[must_use]
    pub fn get_mv(&self, x: usize, y: usize) -> f64 {
        assert!(
            x < self.resolution && y < self.resolution,
            "cell out of range"
        );
        self.cells[y * self.resolution + x]
    }

    /// All cells, row-major, in millivolts.
    #[must_use]
    pub fn cells_mv(&self) -> &[f64] {
        &self.cells
    }

    /// Largest drop on the map (mV).
    #[must_use]
    pub fn max_mv(&self) -> f64 {
        self.cells.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest drop on the map (mV).
    #[must_use]
    pub fn min_mv(&self) -> f64 {
        self.cells.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Mean drop over the map (mV).
    #[must_use]
    pub fn mean_mv(&self) -> f64 {
        self.cells.iter().sum::<f64>() / self.cells.len() as f64
    }

    /// Serialises the map as CSV (one row per raster row, `y` increasing
    /// downward), ready for external plotting.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for y in 0..self.resolution {
            let row: Vec<String> = (0..self.resolution)
                .map(|x| format!("{:.4}", self.get_mv(x, y)))
                .collect();
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Structural-similarity-style comparison: the mean absolute
    /// difference between two maps in millivolts. Used to compare the
    /// conventional map with the DL-predicted one (Fig. 8a vs 8b).
    ///
    /// # Panics
    ///
    /// Panics if the resolutions differ.
    #[must_use]
    pub fn mean_abs_diff_mv(&self, other: &IrDropMap) -> f64 {
        assert_eq!(
            self.resolution, other.resolution,
            "map resolutions must match"
        );
        self.cells
            .iter()
            .zip(&other.cells)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / self.cells.len() as f64
    }
}

/// Fills NaN holes by repeatedly averaging defined 4-neighbours until
/// every cell is defined (the raster is connected, so this terminates).
fn fill_holes(cells: &mut [f64], res: usize) {
    loop {
        let mut changed = false;
        let mut any_nan = false;
        let snapshot = cells.to_vec();
        for y in 0..res {
            for x in 0..res {
                let i = y * res + x;
                if !snapshot[i].is_nan() {
                    continue;
                }
                any_nan = true;
                let mut sum = 0.0;
                let mut n = 0;
                let mut push = |v: f64| {
                    if !v.is_nan() {
                        sum += v;
                        n += 1;
                    }
                };
                if x > 0 {
                    push(snapshot[i - 1]);
                }
                if x + 1 < res {
                    push(snapshot[i + 1]);
                }
                if y > 0 {
                    push(snapshot[i - res]);
                }
                if y + 1 < res {
                    push(snapshot[i + res]);
                }
                if n > 0 {
                    cells[i] = sum / f64::from(n);
                    changed = true;
                }
            }
        }
        if !any_nan {
            break;
        }
        if !changed {
            // Entirely empty map (no nodes at all): define as zero.
            for c in cells.iter_mut() {
                if c.is_nan() {
                    *c = 0.0;
                }
            }
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StaticAnalysis;
    use ppdl_netlist::parse_spice;

    fn report_and_net() -> (PowerGridNetwork, IrDropReport) {
        let net = parse_spice(
            "R1 n1_0_0 n1_0_1000 1.0\nR2 n1_0_1000 n1_0_2000 1.0\nV0 n1_0_0 0 1.8\ni0 n1_0_2000 0 0.01\n",
        )
        .unwrap();
        let rep = StaticAnalysis::default().solve(&net).unwrap();
        (net, rep)
    }

    #[test]
    fn map_is_dense_after_fill() {
        let (net, rep) = report_and_net();
        let map = IrDropMap::from_report(&net, &rep, 8).unwrap();
        assert!(map.cells_mv().iter().all(|c| c.is_finite()));
        assert_eq!(map.cells_mv().len(), 64);
    }

    #[test]
    fn extremes_bracket_mean() {
        let (net, rep) = report_and_net();
        let map = IrDropMap::from_report(&net, &rep, 10).unwrap();
        assert!(map.min_mv() <= map.mean_mv());
        assert!(map.mean_mv() <= map.max_mv());
        // Worst node drop is 20 mV; map max cannot exceed it.
        assert!(map.max_mv() <= 20.0 + 1e-9);
        assert!(map.max_mv() > 10.0);
    }

    #[test]
    fn zero_resolution_rejected() {
        let (net, rep) = report_and_net();
        assert!(IrDropMap::from_report(&net, &rep, 0).is_err());
    }

    #[test]
    fn csv_has_res_rows() {
        let (net, rep) = report_and_net();
        let map = IrDropMap::from_report(&net, &rep, 5).unwrap();
        let csv = map.to_csv();
        assert_eq!(csv.lines().count(), 5);
        assert_eq!(csv.lines().next().unwrap().split(',').count(), 5);
    }

    #[test]
    fn self_difference_is_zero() {
        let (net, rep) = report_and_net();
        let map = IrDropMap::from_report(&net, &rep, 6).unwrap();
        assert_eq!(map.mean_abs_diff_mv(&map), 0.0);
    }

    #[test]
    fn map_without_coordinates_rejected() {
        let net = parse_spice("R1 a b 1.0\nV0 a 0 1.8\ni0 b 0 0.01\n").unwrap();
        let rep = StaticAnalysis::default().solve(&net).unwrap();
        assert!(IrDropMap::from_report(&net, &rep, 4).is_err());
    }

    #[test]
    fn from_node_drops_skips_nan_entries() {
        let (net, _) = report_and_net();
        // Only the far node carries an estimate; the rest are NaN.
        let mut drops = vec![f64::NAN; net.node_count()];
        let far = net.node_id(&"n1_0_2000".parse().unwrap()).unwrap();
        drops[far.0] = 0.02;
        let map = IrDropMap::from_node_drops(&net, &drops, 4).unwrap();
        // Hole filling spreads the single value everywhere.
        assert!(map.cells_mv().iter().all(|c| (c - 20.0).abs() < 1e-9));
    }

    #[test]
    fn from_node_drops_length_checked() {
        let (net, _) = report_and_net();
        assert!(IrDropMap::from_node_drops(&net, &[0.0], 4).is_err());
    }

    #[test]
    fn all_nan_drops_give_zero_map() {
        let (net, _) = report_and_net();
        let drops = vec![f64::NAN; net.node_count()];
        let map = IrDropMap::from_node_drops(&net, &drops, 3).unwrap();
        assert!(map.cells_mv().iter().all(|c| *c == 0.0));
    }
}

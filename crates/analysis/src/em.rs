use ppdl_netlist::SyntheticBenchmark;

use crate::IrDropReport;

/// One electromigration violation: a segment whose current density
/// exceeds the allowed maximum (eq. 4: `Iᵢ / wᵢ ≤ J_max`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmViolation {
    /// Index into the benchmark's segment list.
    pub segment: usize,
    /// Index of the strap the segment belongs to.
    pub strap: usize,
    /// The segment's current density (A/µm).
    pub density: f64,
}

/// Electromigration report over all segments of a benchmark.
#[derive(Debug, Clone)]
pub struct EmReport {
    jmax: f64,
    densities: Vec<f64>,
    violations: Vec<EmViolation>,
}

impl EmReport {
    /// The limit the check ran against (A/µm).
    #[must_use]
    pub fn jmax(&self) -> f64 {
        self.jmax
    }

    /// Per-segment current densities (A/µm), parallel to
    /// [`SyntheticBenchmark::segments`].
    #[must_use]
    pub fn densities(&self) -> &[f64] {
        &self.densities
    }

    /// The violating segments, in decreasing density order.
    #[must_use]
    pub fn violations(&self) -> &[EmViolation] {
        &self.violations
    }

    /// Highest current density in the grid (`0.0` for an empty grid).
    #[must_use]
    pub fn max_density(&self) -> f64 {
        self.densities.iter().fold(0.0_f64, |m, d| m.max(*d))
    }

    /// Whether the whole grid satisfies the EM constraint.
    #[must_use]
    pub fn passes(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Electromigration checker: evaluates eq. 4 per segment against the
/// solved branch currents.
///
/// # Example
///
/// ```
/// use ppdl_analysis::{EmChecker, StaticAnalysis};
/// use ppdl_netlist::{IbmPgPreset, SyntheticBenchmark};
///
/// let bench = SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg1, 0.005, 1).unwrap();
/// let report = StaticAnalysis::default().solve(bench.network()).unwrap();
/// let em = EmChecker::new(1.0).check(&bench, &report).unwrap();
/// assert!(em.max_density() >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EmChecker {
    jmax: f64,
}

impl EmChecker {
    /// Creates a checker with the current-density limit `jmax` in A/µm
    /// (current per unit metal width — the form eq. 4 uses; thickness
    /// is folded into the limit).
    #[must_use]
    pub fn new(jmax: f64) -> Self {
        Self { jmax }
    }

    /// The configured limit.
    #[must_use]
    pub fn jmax(&self) -> f64 {
        self.jmax
    }

    /// Evaluates the EM constraint on every segment of `bench` using
    /// the branch currents from `report`.
    ///
    /// # Errors
    ///
    /// Propagates [`AnalysisError::Undefined`](crate::AnalysisError)
    /// if a segment's resistor is somehow a short (cannot happen for
    /// generated benchmarks, whose segments always have positive
    /// resistance).
    pub fn check(
        &self,
        bench: &SyntheticBenchmark,
        report: &IrDropReport,
    ) -> crate::Result<EmReport> {
        let mut densities = Vec::with_capacity(bench.segments().len());
        let mut violations = Vec::new();
        for (idx, seg) in bench.segments().iter().enumerate() {
            let current = report.branch_current(bench.network(), seg.resistor)?.abs();
            let width = bench.straps()[seg.strap].width;
            let density = current / width;
            if density > self.jmax {
                violations.push(EmViolation {
                    segment: idx,
                    strap: seg.strap,
                    density,
                });
            }
            densities.push(density);
        }
        // total_cmp keeps the sort panic-free even if a degenerate
        // solve produced a NaN density (robustness/unwrap-in-lib).
        violations.sort_by(|a, b| b.density.total_cmp(&a.density));
        Ok(EmReport {
            jmax: self.jmax,
            densities,
            violations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StaticAnalysis;
    use ppdl_netlist::{GridSpec, SyntheticBenchmark};

    fn bench() -> SyntheticBenchmark {
        let spec = GridSpec {
            die_width: 200.0,
            die_height: 200.0,
            v_straps: 4,
            h_straps: 4,
            ..GridSpec::default()
        };
        let mut fp = ppdl_floorplan::Floorplan::new(200.0, 200.0).unwrap();
        fp.add_block(
            ppdl_floorplan::FunctionalBlock::new("b", 20.0, 20.0, 160.0, 160.0, 0.4).unwrap(),
        )
        .unwrap();
        SyntheticBenchmark::generate("t", spec, fp).unwrap()
    }

    #[test]
    fn densities_cover_every_segment() {
        let b = bench();
        let rep = StaticAnalysis::default().solve(b.network()).unwrap();
        let em = EmChecker::new(1.0).check(&b, &rep).unwrap();
        assert_eq!(em.densities().len(), b.segments().len());
        assert!(em.densities().iter().all(|d| d.is_finite() && *d >= 0.0));
    }

    #[test]
    fn tight_limit_produces_sorted_violations() {
        let b = bench();
        let rep = StaticAnalysis::default().solve(b.network()).unwrap();
        // Any positive flow violates a zero limit wherever current is nonzero.
        let em = EmChecker::new(1e-12).check(&b, &rep).unwrap();
        assert!(!em.passes());
        let v = em.violations();
        assert!(!v.is_empty());
        for w in v.windows(2) {
            assert!(w[0].density >= w[1].density);
        }
        assert!((v[0].density - em.max_density()).abs() < 1e-15);
    }

    #[test]
    fn generous_limit_passes() {
        let b = bench();
        let rep = StaticAnalysis::default().solve(b.network()).unwrap();
        let em = EmChecker::new(1e9).check(&b, &rep).unwrap();
        assert!(em.passes());
        assert!(em.violations().is_empty());
    }

    #[test]
    fn widening_straps_lowers_density() {
        let mut b = bench();
        let rep = StaticAnalysis::default().solve(b.network()).unwrap();
        let before = EmChecker::new(1.0).check(&b, &rep).unwrap().max_density();
        let widths: Vec<f64> = b.strap_widths().iter().map(|w| w * 4.0).collect();
        b.set_strap_widths(&widths).unwrap();
        let rep2 = StaticAnalysis::default().solve(b.network()).unwrap();
        let after = EmChecker::new(1.0).check(&b, &rep2).unwrap().max_density();
        assert!(
            after < before,
            "widening should cut density: {after} vs {before}"
        );
    }
}

use std::fmt;

/// Errors raised by the static analysis engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The netlist contains no voltage source, so node voltages are
    /// undefined.
    NoSupply,
    /// Some nodes have no resistive path to any supply: the conductance
    /// matrix would be singular.
    FloatingNodes {
        /// Number of floating (merged) nodes.
        count: usize,
        /// Name of one example floating node, for diagnostics.
        example: String,
    },
    /// The linear solver failed.
    Solver(ppdl_solver::SolverError),
    /// A netlist-level error surfaced during analysis.
    Netlist(ppdl_netlist::NetlistError),
    /// A requested quantity is undefined for this element (e.g. the
    /// branch current of a zero-ohm short).
    Undefined {
        /// What was requested and why it has no value.
        detail: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::NoSupply => {
                write!(
                    f,
                    "netlist has no voltage source; node voltages are undefined"
                )
            }
            AnalysisError::FloatingNodes { count, example } => write!(
                f,
                "{count} node(s) have no path to a supply (e.g. '{example}'); \
                 the MNA system is singular"
            ),
            AnalysisError::Solver(e) => write!(f, "linear solver failed: {e}"),
            AnalysisError::Netlist(e) => write!(f, "netlist error: {e}"),
            AnalysisError::Undefined { detail } => write!(f, "undefined quantity: {detail}"),
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Solver(e) => Some(e),
            AnalysisError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ppdl_solver::SolverError> for AnalysisError {
    fn from(e: ppdl_solver::SolverError) -> Self {
        AnalysisError::Solver(e)
    }
}

impl From<ppdl_netlist::NetlistError> for AnalysisError {
    fn from(e: ppdl_netlist::NetlistError) -> Self {
        AnalysisError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = AnalysisError::FloatingNodes {
            count: 3,
            example: "n1_5_5".into(),
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains("n1_5_5"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e = AnalysisError::from(ppdl_solver::SolverError::SingularMatrix { pivot: 0 });
        assert!(e.source().is_some());
        assert!(AnalysisError::NoSupply.source().is_none());
    }

    #[test]
    fn is_std_error() {
        fn check<T: std::error::Error + Send + Sync + 'static>() {}
        check::<AnalysisError>();
    }
}

//! Working with IBM-PG-format SPICE decks directly: parse, inspect,
//! analyze, and write back — the CAD-tool side of the crate stack.
//!
//! If you have a real IBM power-grid benchmark deck, pass its path:
//! `cargo run --release --example netlist_tools -- path/to/ibmpg1.spice`.
//! Without an argument the example generates an ibmpg1-style deck,
//! round-trips it through the writer/parser, and analyzes it.

use powerplanningdl::analysis::{IrDropMap, StaticAnalysis};
use powerplanningdl::netlist::{parse_spice, IbmPgPreset, SyntheticBenchmark};

fn main() {
    let deck = match std::env::args().nth(1) {
        Some(path) => {
            println!("reading {path}");
            std::fs::read_to_string(&path).expect("readable deck")
        }
        None => {
            println!("no deck given; generating an ibmpg1-style one");
            let bench =
                SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg1, 0.02, 3).expect("generation");
            bench.network().to_spice()
        }
    };

    // Parse.
    let network = parse_spice(&deck).expect("valid IBM-PG SPICE subset");
    let stats = network.stats();
    println!(
        "parsed: #n={} #r={} #v={} #i={}",
        stats.nodes, stats.resistors, stats.sources, stats.loads
    );
    println!(
        "supply: {:.2} V, total load {:.3} A",
        network.supply_voltage().unwrap_or(0.0),
        network.total_load_current()
    );
    if let Some(((x0, y0), (x1, y1))) = network.bounding_box() {
        println!(
            "die span: ({:.0}, {:.0}) .. ({:.0}, {:.0}) µm",
            x0 as f64 / 1000.0,
            y0 as f64 / 1000.0,
            x1 as f64 / 1000.0,
            y1 as f64 / 1000.0
        );
    }
    let shorts = network.resistors().iter().filter(|r| r.is_short()).count();
    if shorts > 0 {
        println!("{shorts} zero-ohm vias will be merged before analysis");
    }

    // Analyze.
    let report = StaticAnalysis::default()
        .solve(&network)
        .expect("static IR-drop analysis");
    let (node, worst) = report.worst_drop().expect("non-empty grid");
    println!(
        "\nstatic analysis: {} unknowns, {} CG iterations",
        report.unknowns(),
        report.iterations()
    );
    println!(
        "worst-case IR drop: {:.2} mV at {} (mean {:.2} mV)",
        worst * 1e3,
        network.node_name(node),
        report.mean_drop() * 1e3
    );

    // Map the drops.
    if let Ok(map) = IrDropMap::from_report(&network, &report, 8) {
        println!("\ncoarse IR map (mV):");
        for y in (0..map.resolution()).rev() {
            let row: Vec<String> = (0..map.resolution())
                .map(|x| format!("{:5.1}", map.get_mv(x, y)))
                .collect();
            println!("  {}", row.join(" "));
        }
    }

    // Round-trip check: writer output re-parses to the same stats.
    let rewritten = network.to_spice();
    let again = parse_spice(&rewritten).expect("round trip");
    assert_eq!(again.stats(), network.stats());
    println!("\nwriter round-trip: OK ({} bytes)", rewritten.len());
}

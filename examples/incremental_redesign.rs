//! Incremental power-grid redesign — the use case the paper's
//! conclusions recommend PowerPlanningDL for: "the incremental-based
//! power grid designs, where we need to generate the power grid for
//! little changes (or perturbations) in the design".
//!
//! A model is trained once on a signed-off design; then a sequence of
//! ECO-style workload changes arrives and the model re-generates the
//! grid for each in milliseconds, with the conventional flow run only
//! as a reference.
//!
//! Run with: `cargo run --release --example incremental_redesign`

use std::time::Instant;

use powerplanningdl::core::{
    experiment, ConventionalFlow, IrPredictor, Perturbation, PerturbationKind, WidthPredictor,
};
use powerplanningdl::netlist::IbmPgPreset;

fn main() {
    let scale = 0.01;
    let prepared = experiment::prepare(IbmPgPreset::Ibmpg2, scale, 11, 2.5).expect("benchmark");
    // One config source for both flows, via the builder.
    let config = experiment::flow_builder(&prepared, false).build();
    let conventional = ConventionalFlow::new(config.conventional.clone());

    // One-time investment: sign off the base design, train the model.
    let (sized, golden) = conventional.run(&prepared.bench).expect("base sizing");
    let t_train = Instant::now();
    let (predictor, _) =
        WidthPredictor::train(&sized, &golden.widths, config.predictor).expect("training");
    println!(
        "trained on the signed-off design ({} interconnects) in {:.2} s",
        sized.segments().len(),
        t_train.elapsed().as_secs_f64()
    );

    // A stream of ECO revisions: growing workload perturbations.
    println!(
        "\n gamma | DL widths+IR (ms) | conventional (ms) | speedup | DL worst IR | conv worst IR"
    );
    println!(
        " ------+-------------------+-------------------+---------+-------------+--------------"
    );
    for (i, gamma) in [0.05, 0.10, 0.15, 0.20].into_iter().enumerate() {
        let eco = Perturbation::new(gamma, PerturbationKind::CurrentWorkloads, 100 + i as u64)
            .expect("gamma")
            .apply(&prepared.bench)
            .expect("perturb");

        // PowerPlanningDL path: predict widths, predict IR drop.
        let t_dl = Instant::now();
        let widths = predictor
            .predict_strap_widths_sampled(&eco, 4)
            .expect("widths");
        let ir = IrPredictor::new().predict(&eco, &widths).expect("ir");
        let dl_ms = t_dl.elapsed().as_secs_f64() * 1e3;

        // Conventional reference: full re-sizing of the revision.
        let t_conv = Instant::now();
        let (_, conv) = conventional.run(&eco).expect("conventional re-sizing");
        let conv_ms = t_conv.elapsed().as_secs_f64() * 1e3;

        println!(
            " {:4.0}% | {dl_ms:17.2} | {conv_ms:17.2} | {:6.1}x | {:8.1} mV | {:9.1} mV",
            gamma * 100.0,
            conv_ms / dl_ms,
            ir.worst_mv(),
            conv.worst_ir * 1e3,
        );
    }
    println!(
        "\nthe one-time training cost is amortised across every revision;\n\
         each redesign costs only inference plus the Kirchhoff IR estimate."
    );
}

//! Power planning for a hand-built SoC floorplan — the workload the
//! paper's introduction motivates: a designer places functional blocks
//! with known switching currents and needs an initial power grid that
//! meets the IR-drop and EM margins.
//!
//! Run with: `cargo run --release --example soc_power_planning`

use powerplanningdl::analysis::{EmChecker, IrDropMap, StaticAnalysis};
use powerplanningdl::core::{ConventionalConfig, ConventionalFlow, DlFlowConfig, WidthPredictor};
use powerplanningdl::floorplan::{Floorplan, FunctionalBlock, PowerNet, PowerPad};
use powerplanningdl::netlist::{GridSpec, SyntheticBenchmark};

fn main() {
    // --- 1. The floorplan: a small SoC with CPU, GPU, caches, IO ----
    let die = 800.0; // µm
    let mut fp = Floorplan::new(die, die).expect("die");
    let blocks = [
        // name, x, y, w, h, switching current (A)
        ("cpu0", 40.0, 40.0, 280.0, 280.0, 0.45),
        ("cpu1", 40.0, 360.0, 280.0, 280.0, 0.42),
        ("gpu", 360.0, 40.0, 400.0, 300.0, 0.80),
        ("l2cache", 360.0, 380.0, 200.0, 180.0, 0.22),
        ("ddrphy", 580.0, 380.0, 180.0, 180.0, 0.30),
        ("io_ring", 360.0, 590.0, 400.0, 170.0, 0.15),
        ("pll", 40.0, 660.0, 120.0, 100.0, 0.05),
    ];
    for (name, x, y, w, h, id) in blocks {
        fp.add_block(FunctionalBlock::new(name, x, y, w, h, id).expect("block"))
            .expect("placement");
    }
    for i in 0..12 {
        let t = i as f64 / 12.0;
        let (x, y) = if t < 0.5 {
            (die * t * 2.0, 0.0)
        } else {
            (die * (t - 0.5) * 2.0, die)
        };
        fp.add_pad(PowerPad::new(format!("vdd{i}"), x, y, PowerNet::Vdd))
            .expect("pad");
    }
    println!(
        "floorplan: {} blocks drawing {:.2} A total, utilization {:.0}%",
        fp.blocks().len(),
        fp.total_switching_current(),
        100.0 * fp.utilization()
    );

    // --- 2. Draw the initial grid over it ---------------------------
    let spec = GridSpec {
        die_width: die,
        die_height: die,
        v_straps: 16,
        h_straps: 16,
        ..GridSpec::default()
    };
    let bench = SyntheticBenchmark::generate("soc", spec, fp).expect("grid");

    // --- 3. Conventional sizing: meet 5% IR margin and EM ------------
    let flow = DlFlowConfig::builder()
        .conventional(ConventionalConfig {
            ir_margin_fraction: 0.05,
            jmax: 0.05,
            ..ConventionalConfig::default()
        })
        .build();
    let config = flow.conventional.clone();
    let (sized, result) = ConventionalFlow::new(config.clone())
        .run(&bench)
        .expect("sizing");
    println!(
        "\nconventional flow: {} iterations, worst IR drop {:.1} mV (margin {:.1} mV)",
        result.iterations,
        result.worst_ir * 1e3,
        config.ir_margin_fraction * 1.8e3,
    );
    let total_metal: f64 = result.widths.iter().sum();
    println!(
        "strap widths: {:.2}..{:.2} µm ({:.1} µm of metal across the die)",
        result.widths.iter().cloned().fold(f64::INFINITY, f64::min),
        result.widths.iter().cloned().fold(0.0_f64, f64::max),
        total_metal
    );

    // EM sign-off on the sized grid.
    let em = EmChecker::new(config.jmax)
        .check(&sized, &result.report)
        .expect("EM check");
    println!(
        "EM check: max current density {:.4} A/µm against J_max {:.3} -> {}",
        em.max_density(),
        em.jmax(),
        if em.passes() { "PASS" } else { "FAIL" }
    );

    // --- 4. Train the DL model on this design ------------------------
    let (predictor, _) =
        WidthPredictor::train(&sized, &result.widths, flow.predictor).expect("training");
    let metrics = predictor.evaluate(&sized, &result.widths).expect("eval");
    println!(
        "\nDL width model: r2 = {:.3} on {} interconnects",
        metrics.r2,
        sized.segments().len()
    );

    // --- 5. Inspect the IR-drop map (ASCII rendering of Fig. 8) ------
    let map = IrDropMap::from_report(sized.network(), &result.report, 16).expect("map");
    println!(
        "\nIR-drop map ({}x{} cells, {:.1}..{:.1} mV):",
        map.resolution(),
        map.resolution(),
        map.min_mv(),
        map.max_mv()
    );
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    for y in (0..map.resolution()).rev() {
        let mut line = String::new();
        for x in 0..map.resolution() {
            let norm = (map.get_mv(x, y) - map.min_mv()) / (map.max_mv() - map.min_mv()).max(1e-9);
            let idx = ((norm * (shades.len() - 1) as f64).round() as usize).min(shades.len() - 1);
            line.push(shades[idx]);
            line.push(shades[idx]);
        }
        println!("  {line}");
    }
    println!("  (darker = deeper IR drop; supply pads sit on the die edge)");

    // --- 6. Render the sized floorplan as SVG (Fig. 4(a)) ------------
    use powerplanningdl::floorplan::SvgOptions;
    use powerplanningdl::netlist::Orientation;
    let svg = sized.floorplan().to_svg(
        sized.strap_plan(Orientation::Vertical).ok().as_ref(),
        sized.strap_plan(Orientation::Horizontal).ok().as_ref(),
        &SvgOptions::default(),
    );
    let out = std::env::temp_dir().join("ppdl_soc_floorplan.svg");
    std::fs::write(&out, svg).expect("write svg");
    println!(
        "\nwrote the sized floorplan (blocks + grid straps) to {}",
        out.display()
    );
    println!("total grid metal area: {:.0} µm²", sized.total_metal_area());

    // Sanity: the analysis engine agrees with itself on a re-solve.
    let recheck = StaticAnalysis::default()
        .solve(sized.network())
        .expect("re-solve");
    assert!(
        (recheck.worst_drop().unwrap().1 - result.worst_ir).abs() < 1e-9,
        "deterministic re-solve"
    );
}

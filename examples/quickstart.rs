//! Quickstart: the full PowerPlanningDL flow on an ibmpg2-style
//! benchmark, end to end.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! The flow mirrors Fig. 2 / Fig. 6 of the paper:
//! 1. generate a synthetic IBM-PG-style grid and calibrate its loads
//!    to the published worst-case IR drop;
//! 2. run the conventional iterative sizing once to obtain the golden
//!    widths;
//! 3. train the width-prediction MLP on `(X, Y, Id) → w` quadruples;
//! 4. perturb the design by 10 % (the paper's test-set recipe) and let
//!    the model predict the widths and the IR drop of the new design,
//!    timing both approaches.

use powerplanningdl::core::{experiment, PowerPlanningDl};
use powerplanningdl::netlist::IbmPgPreset;

fn main() {
    // Scale 0.01 keeps this example under a few seconds; raise it (up
    // to 1.0 = the published benchmark size) for a realistic run.
    let scale = 0.01;
    let prepared =
        experiment::prepare(IbmPgPreset::Ibmpg2, scale, 7, 2.5).expect("benchmark generation");
    let stats = prepared.bench.network().stats();
    println!(
        "generated {}-style grid: {} nodes, {} resistors, {} sources, {} loads",
        IbmPgPreset::Ibmpg2,
        stats.nodes,
        stats.resistors,
        stats.sources,
        stats.loads
    );

    let config = experiment::flow_config(&prepared, false);
    let outcome = PowerPlanningDl::new(config)
        .run(&prepared.bench)
        .expect("flow");

    println!(
        "\nconventional sizing: {} design iterations to meet a {:.1} mV margin",
        outcome.conventional_iterations,
        prepared.target_worst_ir * 1e3
    );
    println!(
        "width prediction:    r2 = {:.3}, MSE = {:.4}, correlation = {:.3}",
        outcome.width_metrics.r2,
        outcome.width_metrics.mse_scaled,
        outcome.width_metrics.correlation
    );
    println!(
        "worst-case IR drop:  conventional {:.1} mV vs PowerPlanningDL {:.1} mV",
        outcome.conventional_worst_ir_mv, outcome.predicted_worst_ir_mv
    );
    println!(
        "convergence time:    conventional {:.2} ms vs PowerPlanningDL {:.2} ms ({:.2}x speedup)",
        outcome.timing.conventional.as_secs_f64() * 1e3,
        outcome.timing.dl.as_secs_f64() * 1e3,
        outcome.timing.speedup
    );
}

//! `ppdl` — command-line front end for the PowerPlanningDL stack.
//!
//! ```text
//! ppdl generate --preset ibmpg2 --scale 0.01 --seed 7 --out grid.spice [--svg fp.svg]
//! ppdl analyze <deck.spice> [--map map.csv] [--resolution 100] [--precond ic0]
//! ppdl flow --preset ibmpg2 --scale 0.01 [--fast] [--gamma 0.1] [--model model.ppdl]
//!           [--precond jacobi|block-jacobi|ic0|none|direct]
//! ppdl train --preset ibmpg2 --scale 0.006 --out model.bundle [--fast] [--backend mlp|cnn|encdec]
//! ppdl synth --preset ibmpg2 [--scale 0.01] [--seed 7] [--fast] [--backend mlp|cnn|encdec]
//!            [--precond ic0] [--budget 1200] [--bundle model.bundle] [--out widths.csv]
//! ppdl serve --bundle model.bundle [--queue 256] [--batch 64] [--cache 1024] [--telemetry]
//! ppdl serve --listen 127.0.0.1:7433 --bundle a.bundle --bundle b.bundle [--bundle-dir models/]
//! ppdl serve --unix /run/ppdl.sock --bundle-dir models/
//! ```
//!
//! Every subcommand accepts `--threads <n>` to pin the worker pool —
//! applied before the first kernel runs, because the `PPDL_THREADS`
//! environment override is sampled exactly once at first use (see
//! `ppdl_solver::parallel::current_threads`).

use std::io::BufReader;
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use powerplanningdl::analysis::{AnalysisOptions, IrDropMap, PreconditionerKind, StaticAnalysis};
use powerplanningdl::core::{
    experiment, synthesize, PowerPlanningDl, SynthConfig, TrainedBundle, WidthPredictor,
};
use powerplanningdl::floorplan::SvgOptions;
use powerplanningdl::netlist::{parse_spice, IbmPgPreset, Orientation, SyntheticBenchmark};
use powerplanningdl::service::{
    serve_ndjson, serve_tcp, serve_unix, ModelRegistry, NetConfig, PredictionService, ServiceConfig,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("flow") => cmd_flow(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("synth") => cmd_synth(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
ppdl — reliability-aware power grid design using deep learning

USAGE:
  ppdl generate --preset <name> [--scale <f>] [--seed <n>] --out <deck.spice> [--svg <fp.svg>]
  ppdl analyze <deck.spice> [--map <map.csv>] [--resolution <n>] [--precond <kind>]
  ppdl flow --preset <name> [--scale <f>] [--seed <n>] [--fast] [--gamma <f>] [--model <out.ppdl>]
            [--precond <kind>]
  ppdl train --preset <name> [--scale <f>] [--seed <n>] [--fast]
             [--backend mlp|cnn|encdec] --out <model.bundle>
  ppdl synth --preset <name> [--scale <f>] [--seed <n>] [--fast] [--backend <kind>]
             [--precond <kind>] [--budget <n>] [--bundle <model.bundle>] [--out <widths.csv>]
  ppdl serve --bundle <model.bundle> [--queue <n>] [--batch <n>] [--cache <n>] [--telemetry]
  ppdl serve --listen <addr:port> | --unix <sock> (--bundle <f>)* [--bundle-dir <dir>]
             [--pending <n>] [--max-clients <n>]

Every subcommand also accepts --threads <n> (pin the worker pool before
the first kernel runs; overrides PPDL_THREADS). analyze and flow accept
--precond <none|jacobi|block-jacobi|ic0|direct> to pick the
preconditioner of the conventional IR-drop solves (default ic0).

synth runs predictor-in-the-loop synthesis: it trains (or loads, with
--bundle) a width model, anneals one width template per grid region
with the model as cost oracle, and verifies the result with real MNA
solves only at escalations and termination. --budget caps the oracle
calls; the run is bitwise deterministic for a fixed --seed at any
--threads count.

serve reads NDJSON requests from stdin and answers on stdout, e.g.
  {\"id\":\"q1\",\"gamma\":0.1,\"kind\":\"both\",\"seed\":5}
  {\"id\":\"q2\",\"loads\":[[0,0.0012]],\"stride\":2}
  {\"cmd\":\"flush\"} | {\"cmd\":\"stats\"} | {\"cmd\":\"stats\",\"spans\":true} | {\"cmd\":\"quit\"}
--telemetry additionally collects process-wide spans/counters (solver,
NN, pipeline) and dumps the snapshot to stderr on exit.

serve --listen (TCP) / --unix (domain socket) holds a *registry* of
bundles — each --bundle file and every *.bundle under --bundle-dir,
registered under its file stem — and serves concurrent connections.
Requests route with \"bundle\":\"<name>\"; {\"cmd\":\"load\",...} hot-swaps a
bundle, {\"cmd\":\"bundles\"} lists them, {\"cmd\":\"shutdown\"} stops the
listener. Saturated bundles answer typed service/overloaded errors
(--pending bounds per-bundle admission, --max-clients the connections).

PRESETS: ibmpg1..ibmpg6, ibmpgnew1, ibmpgnew2 (Table II of the paper)";

/// Tiny flag parser: `--key value` pairs plus positional arguments.
struct Flags {
    positional: Vec<String>,
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[String], switches: &[&str]) -> Result<Self, String> {
        let mut f = Flags {
            positional: Vec::new(),
            pairs: Vec::new(),
            switches: Vec::new(),
        };
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(name) = a.strip_prefix("--") {
                if switches.contains(&name) {
                    f.switches.push(name.to_string());
                } else {
                    i += 1;
                    let v = args
                        .get(i)
                        .ok_or_else(|| format!("--{name} needs a value"))?;
                    f.pairs.push((name.to_string(), v.clone()));
                }
            } else {
                f.positional.push(a.clone());
            }
            i += 1;
        }
        Ok(f)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value '{v}' for --{key}")),
        }
    }

    /// Every value given for a repeatable `--key` flag, in order.
    fn get_all(&self, key: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }
}

/// Applies `--threads <n>` through [`powerplanningdl::set_threads`].
/// Must run before the first kernel call of the subcommand: the
/// `PPDL_THREADS` environment fallback is sampled exactly once, at the
/// first `current_threads()` call.
fn apply_threads(flags: &Flags) -> Result<(), String> {
    if let Some(n) = flags.get("threads") {
        let n: usize = n
            .parse()
            .map_err(|_| format!("bad value '{n}' for --threads"))?;
        powerplanningdl::set_threads(n);
    }
    Ok(())
}

/// Parses `--precond <kind>`, or `None` when the flag is absent.
fn precond_from(flags: &Flags) -> Result<Option<PreconditionerKind>, String> {
    flags
        .get("precond")
        .map(|s| {
            PreconditionerKind::parse(s).ok_or_else(|| {
                format!("unknown preconditioner '{s}' (none|jacobi|block-jacobi|ic0|direct)")
            })
        })
        .transpose()
}

fn preset_from(flags: &Flags) -> Result<IbmPgPreset, String> {
    let name = flags.get("preset").ok_or("--preset is required")?;
    name.parse()
        .map_err(|_| format!("unknown preset '{name}' (expected ibmpg1..ibmpgnew2)"))
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    apply_threads(&flags)?;
    let preset = preset_from(&flags)?;
    let scale: f64 = flags.get_parse("scale", 0.01)?;
    let seed: u64 = flags.get_parse("seed", 7)?;
    let out = PathBuf::from(flags.get("out").ok_or("--out is required")?);

    let bench = SyntheticBenchmark::from_preset(preset, scale, seed).map_err(|e| e.to_string())?;
    let stats = bench.network().stats();
    std::fs::write(&out, bench.network().to_spice()).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} nodes, {} resistors, {} sources, {} loads)",
        out.display(),
        stats.nodes,
        stats.resistors,
        stats.sources,
        stats.loads
    );
    if let Some(svg_path) = flags.get("svg") {
        let svg = bench.floorplan().to_svg(
            bench.strap_plan(Orientation::Vertical).ok().as_ref(),
            bench.strap_plan(Orientation::Horizontal).ok().as_ref(),
            &SvgOptions::default(),
        );
        std::fs::write(svg_path, svg).map_err(|e| e.to_string())?;
        println!("wrote {svg_path}");
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &[])?;
    apply_threads(&flags)?;
    let deck_path = flags
        .positional
        .first()
        .ok_or("analyze needs a deck path")?;
    let resolution: usize = flags.get_parse("resolution", 100)?;

    let deck = std::fs::read_to_string(deck_path).map_err(|e| e.to_string())?;
    let network = parse_spice(&deck).map_err(|e| e.to_string())?;
    let stats = network.stats();
    println!(
        "{deck_path}: #n={} #r={} #v={} #i={}",
        stats.nodes, stats.resistors, stats.sources, stats.loads
    );
    let analyzer = match precond_from(&flags)? {
        Some(kind) => StaticAnalysis::new(AnalysisOptions {
            preconditioner: kind,
            ..AnalysisOptions::default()
        }),
        None => StaticAnalysis::default(),
    };
    let report = analyzer.solve(&network).map_err(|e| e.to_string())?;
    let (node, worst) = report.worst_drop().ok_or("grid has no non-ground node")?;
    println!(
        "worst-case IR drop: {:.3} mV at {} (mean {:.3} mV, {} unknowns, {} CG iterations)",
        worst * 1e3,
        network.node_name(node),
        report.mean_drop() * 1e3,
        report.unknowns(),
        report.iterations()
    );
    if let Some(map_path) = flags.get("map") {
        let map =
            IrDropMap::from_report(&network, &report, resolution).map_err(|e| e.to_string())?;
        std::fs::write(map_path, map.to_csv()).map_err(|e| e.to_string())?;
        println!(
            "wrote {map_path} ({resolution}x{resolution} cells, {:.1}..{:.1} mV)",
            map.min_mv(),
            map.max_mv()
        );
    }
    Ok(())
}

fn cmd_flow(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["fast"])?;
    apply_threads(&flags)?;
    let preset = preset_from(&flags)?;
    let scale: f64 = flags.get_parse("scale", 0.01)?;
    let seed: u64 = flags.get_parse("seed", 7)?;
    let gamma: f64 = flags.get_parse("gamma", 0.10)?;

    let prepared = experiment::prepare(preset, scale, seed, 2.5).map_err(|e| e.to_string())?;
    let mut builder =
        experiment::flow_builder(&prepared, flags.has("fast")).perturbation_gamma(gamma);
    if let Some(kind) = precond_from(&flags)? {
        builder = builder.preconditioner(kind);
    }
    let config = builder.try_build().map_err(|e| e.to_string())?;
    let outcome = PowerPlanningDl::new(config.clone())
        .run(&prepared.bench)
        .map_err(|e| e.to_string())?;

    println!("benchmark:        {preset} at scale {scale} (seed {seed})");
    println!(
        "conventional:     {} sizing iterations, worst IR {:.2} mV",
        outcome.conventional_iterations, outcome.conventional_worst_ir_mv
    );
    println!(
        "width model:      r2 {:.3}, MSE {:.4}, correlation {:.3}",
        outcome.width_metrics.r2,
        outcome.width_metrics.mse_scaled,
        outcome.width_metrics.correlation
    );
    println!(
        "predicted IR:     {:.2} mV ({:+.1}% vs conventional)",
        outcome.predicted_worst_ir_mv,
        100.0 * (outcome.predicted_worst_ir_mv - outcome.conventional_worst_ir_mv)
            / outcome.conventional_worst_ir_mv
    );
    println!(
        "convergence time: {:.2} ms conventional vs {:.2} ms DL ({:.2}x)",
        outcome.timing.conventional.as_secs_f64() * 1e3,
        outcome.timing.dl.as_secs_f64() * 1e3,
        outcome.timing.speedup
    );

    if let Some(model_path) = flags.get("model") {
        // Re-train on the sized design to obtain a persistable model
        // (the flow's internal model is consumed by the run).
        let (predictor, _) = WidthPredictor::train(
            &outcome.sized_bench,
            &outcome.golden_widths,
            config.predictor,
        )
        .map_err(|e| e.to_string())?;
        std::fs::write(model_path, predictor.to_text()).map_err(|e| e.to_string())?;
        println!("wrote trained model to {model_path}");
    }
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["fast"])?;
    apply_threads(&flags)?;
    let preset = preset_from(&flags)?;
    let scale: f64 = flags.get_parse("scale", 0.01)?;
    let seed: u64 = flags.get_parse("seed", 7)?;
    let out = PathBuf::from(flags.get("out").ok_or("--out is required")?);

    let mut builder = powerplanningdl::core::DlFlowConfig::builder().seed(seed);
    if flags.has("fast") {
        builder = builder.fast();
    }
    if let Some(tag) = flags.get("backend") {
        let kind = powerplanningdl::core::BackendKind::parse(tag).map_err(|e| e.to_string())?;
        builder = builder.backend(kind);
    }
    let config = builder.try_build().map_err(|e| e.to_string())?;
    let bundle =
        TrainedBundle::train(preset, scale, seed, config, None).map_err(|e| e.to_string())?;
    bundle.save(&out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} {} at scale {scale}, seed {seed}, {} golden widths, stride {})",
        out.display(),
        bundle.backend().tag(),
        preset.name(),
        bundle.golden_widths.len(),
        bundle.meta.inference_stride
    );
    Ok(())
}

fn cmd_synth(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["fast"])?;
    apply_threads(&flags)?;
    let scale: f64 = flags.get_parse("scale", 0.01)?;
    let seed: u64 = flags.get_parse("seed", 7)?;

    // The oracle: a persisted bundle when given, otherwise train one
    // in-process exactly like `ppdl train` would.
    let bundle = match flags.get("bundle") {
        Some(path) => {
            let bundle = TrainedBundle::load(path).map_err(|e| e.to_string())?;
            println!("loaded bundle {path} ({})", bundle.meta.label());
            bundle
        }
        None => {
            let preset = preset_from(&flags)?;
            let mut builder = powerplanningdl::core::DlFlowConfig::builder().seed(seed);
            if flags.has("fast") {
                builder = builder.fast();
            }
            if let Some(tag) = flags.get("backend") {
                let kind =
                    powerplanningdl::core::BackendKind::parse(tag).map_err(|e| e.to_string())?;
                builder = builder.backend(kind);
            }
            let config = builder.try_build().map_err(|e| e.to_string())?;
            TrainedBundle::train(preset, scale, seed, config, None).map_err(|e| e.to_string())?
        }
    };

    let mut config = if flags.has("fast") {
        SynthConfig::fast()
    } else {
        SynthConfig::default()
    };
    config.seed = seed;
    config.budget = flags.get_parse("budget", config.budget)?;
    if let Some(kind) = precond_from(&flags)? {
        config.precond = kind;
    }
    let result = synthesize(&bundle, &config, None).map_err(|e| e.to_string())?;

    println!(
        "template:         {} regions x {}-level ladder ({:.3}..{:.3} um)",
        result.regions,
        result.ladder.len(),
        result.ladder.first().copied().unwrap_or(0.0),
        result.ladder.last().copied().unwrap_or(0.0)
    );
    println!(
        "search:           {} proposed, {} accepted over {} rounds ({} oracle calls)",
        result.proposed, result.accepted, result.rounds, result.oracle_calls
    );
    println!(
        "verification:     {} full MNA solves, {} repair round(s)",
        result.full_solves, result.repair_rounds
    );
    println!(
        "worst IR:         {:.3} mV verified vs {:.3} mV target ({})",
        result.worst_ir_mv(),
        result.target_worst_ir * 1e3,
        if result.feasible {
            "feasible"
        } else {
            "INFEASIBLE"
        }
    );
    println!(
        "metal area:       {:.0} um^2 ({:+.1}% vs golden widths)",
        result.metal_area,
        100.0 * (result.metal_area - result.golden_metal_area) / result.golden_metal_area
    );

    if let Some(out) = flags.get("out") {
        let mut csv = String::from("strap,width_um\n");
        for (i, w) in result.widths.iter().enumerate() {
            csv.push_str(&format!("{i},{w}\n"));
        }
        std::fs::write(out, csv).map_err(|e| e.to_string())?;
        println!("wrote {out} ({} strap widths)", result.widths.len());
    }
    if !result.feasible {
        return Err(format!(
            "synthesis missed the IR margin: {:.3} mV > {:.3} mV after {} repair round(s)",
            result.worst_ir_mv(),
            result.target_worst_ir * 1e3,
            result.repair_rounds
        ));
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args, &["telemetry"])?;
    apply_threads(&flags)?;
    let telemetry = flags.has("telemetry");
    if telemetry {
        powerplanningdl::obs::set_enabled(true);
    }
    let defaults = ServiceConfig::default();
    let config = ServiceConfig {
        queue_capacity: flags.get_parse("queue", defaults.queue_capacity)?,
        max_batch: flags.get_parse("batch", defaults.max_batch)?,
        cache_capacity: flags.get_parse("cache", defaults.cache_capacity)?,
        max_pending: flags.get_parse("pending", defaults.max_pending)?,
    };
    if flags.get("listen").is_some() || flags.get("unix").is_some() {
        return serve_registry(&flags, config, telemetry);
    }

    let bundle_path = PathBuf::from(flags.get("bundle").ok_or("--bundle is required")?);
    let bundle = TrainedBundle::load(&bundle_path).map_err(|e| e.to_string())?;
    eprintln!(
        "serving {} ({} at scale {}, {} straps)",
        bundle_path.display(),
        bundle.meta.preset.name(),
        bundle.meta.scale,
        bundle.golden_widths.len()
    );
    let mut service = PredictionService::new(bundle, config).map_err(|e| e.to_string())?;
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    serve_ndjson(&mut service, BufReader::new(stdin.lock()), &mut stdout)
        .map_err(|e| e.to_string())?;
    eprintln!("{}", service.stats_json());
    if telemetry {
        eprintln!("{}", service.telemetry_json());
    }
    Ok(())
}

/// The networked registry mode: load every named bundle, then serve
/// concurrent NDJSON connections over TCP (`--listen`) or a Unix
/// domain socket (`--unix`) until `{"cmd":"shutdown"}`.
fn serve_registry(flags: &Flags, config: ServiceConfig, telemetry: bool) -> Result<(), String> {
    if flags.get("listen").is_some() && flags.get("unix").is_some() {
        return Err("--listen and --unix are mutually exclusive".to_string());
    }

    // Bundle set: every --bundle file, plus every *.bundle under
    // --bundle-dir (sorted for a deterministic registry), each named
    // by its file stem.
    let mut paths: Vec<PathBuf> = flags.get_all("bundle").iter().map(PathBuf::from).collect();
    if let Some(dir) = flags.get("bundle-dir") {
        let mut found = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(|e| format!("--bundle-dir {dir}: {e}"))? {
            let path = entry.map_err(|e| e.to_string())?.path();
            if path.extension().and_then(|e| e.to_str()) == Some("bundle") {
                found.push(path);
            }
        }
        found.sort();
        paths.extend(found);
    }
    if paths.is_empty() {
        return Err("registry mode needs at least one --bundle or a non-empty --bundle-dir".into());
    }

    let registry = Arc::new(ModelRegistry::new(config));
    for path in &paths {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| format!("cannot derive a bundle name from {}", path.display()))?;
        registry
            .install_path(name, path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let core = registry
            .get(name)
            .ok_or_else(|| format!("bundle '{name}' vanished after install"))?;
        eprintln!(
            "loaded bundle '{name}' from {} ({})",
            path.display(),
            core.bundle().meta.label()
        );
    }

    let net = NetConfig {
        max_clients: flags.get_parse("max-clients", NetConfig::default().max_clients)?,
        ..NetConfig::default()
    };
    if let Some(addr) = flags.get("listen") {
        let listener = TcpListener::bind(addr).map_err(|e| format!("--listen {addr}: {e}"))?;
        let local = listener.local_addr().map_err(|e| e.to_string())?;
        // Parsed by clients/tests that bind port 0.
        eprintln!("listening on {local}");
        serve_tcp(&registry, &listener, &net).map_err(|e| e.to_string())?;
    } else if let Some(sock) = flags.get("unix") {
        // A stale socket file from a dead process blocks bind.
        let _ = std::fs::remove_file(sock);
        let listener = UnixListener::bind(sock).map_err(|e| format!("--unix {sock}: {e}"))?;
        eprintln!("listening on {sock}");
        let result = serve_unix(&registry, &listener, &net);
        let _ = std::fs::remove_file(sock);
        result.map_err(|e| e.to_string())?;
    }
    eprintln!("{}", registry.stats_json());
    if telemetry {
        eprintln!("{}", registry.telemetry_json());
    }
    Ok(())
}

//! PowerPlanningDL — reliability-aware on-chip power grid design using
//! deep learning.
//!
//! This is the umbrella crate of a full Rust reproduction of
//! *PowerPlanningDL: Reliability-Aware Framework for On-Chip Power Grid
//! Design using Deep Learning* (Dey, Nandi, Trivedi — DATE 2020). It
//! re-exports the workspace crates under one roof:
//!
//! * [`netlist`] — IBM-PG-style SPICE netlists: parser, writer, network
//!   model, and a synthetic benchmark generator with per-benchmark
//!   presets.
//! * [`solver`] — sparse linear algebra (CSR, preconditioned CG,
//!   IC(0)/Jacobi preconditioners, dense factorizations).
//! * [`floorplan`] — functional blocks, power pads, strap plans, and a
//!   seeded floorplan generator.
//! * [`analysis`] — static IR-drop analysis (MNA assembly + solve),
//!   electromigration checks, and IR-drop maps.
//! * [`nn`] — a from-scratch dense neural-network library with the Adam
//!   optimizer, used for the paper's multi-target regression model.
//! * [`core`] — the PowerPlanningDL framework itself: feature
//!   extraction, width prediction (Problem 1), Kirchhoff-based IR-drop
//!   prediction (Problem 2), the perturbation engine, and the
//!   conventional iterative baseline.
//! * [`service`] — the batched prediction service: loads a persisted
//!   [`TrainedBundle`](core::TrainedBundle) once and answers streams of
//!   ECO width/IR queries over an NDJSON request/response protocol
//!   (`ppdl serve`).
//! * [`obs`] — the zero-dependency telemetry layer every crate above
//!   reports through: hierarchical spans, counters, and histograms with
//!   a deterministic JSON snapshot (`ppdl serve --telemetry`,
//!   `ppdl-bench run --telemetry`; see DESIGN.md §11).
//!
//! # Parallel execution
//!
//! Every hot path — sparse matrix–vector products, the CG vector
//! kernels, minibatch training, per-scenario vectored solves, and γ
//! perturbation sweeps — runs on the workspace-wide thread pool
//! configured through [`parallel`] (re-exported from the solver crate).
//! The thread count defaults to the machine's parallelism, can be
//! pinned with the `PPDL_THREADS` environment variable or
//! [`parallel::set_threads`], and results are **bitwise identical at
//! every thread count**: work decomposition depends only on problem
//! size, and reductions fold fixed-size chunks in a fixed order.
//!
//! # Quickstart
//!
//! ```
//! use powerplanningdl::core::{experiment, PowerPlanningDl};
//! use powerplanningdl::netlist::IbmPgPreset;
//!
//! // Build a small ibmpg2-like benchmark, calibrate it to the paper's
//! // worst-case IR drop, and run the full train-then-predict flow.
//! let prepared = experiment::prepare(IbmPgPreset::Ibmpg2, 0.006, 7, 2.5).unwrap();
//! let config = experiment::flow_config(&prepared, true);
//! let outcome = PowerPlanningDl::new(config).run(&prepared.bench).unwrap();
//! assert!(outcome.width_metrics.r2 > 0.4);
//! assert!(outcome.timing.speedup > 0.0);
//! ```

#![forbid(unsafe_code)]

pub use ppdl_analysis as analysis;
pub use ppdl_core as core;
pub use ppdl_floorplan as floorplan;
pub use ppdl_netlist as netlist;
pub use ppdl_nn as nn;
pub use ppdl_obs as obs;
pub use ppdl_service as service;
pub use ppdl_solver as solver;

pub use ppdl_solver::parallel;
pub use ppdl_solver::{parallel_config, set_par_threshold, set_threads, ParallelConfig};
